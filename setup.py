"""Setup shim for environments whose setuptools cannot build PEP 660
editable wheels (no `wheel` package available offline); allows
``python setup.py develop`` as the editable-install fallback."""

from setuptools import setup

setup()
