"""Run the database-viewpoint benchmark suite (paper refs [6, 7]).

The paper's section 4 promises CLARE will be evaluated with the Prolog
database benchmarks of Williams, Massey & Crammond; this example runs that
style of suite — selections, joins, closure, and naive reverse — through
the integrated machine and reports what the planner chose.

Run with::

    python examples/database_benchmarks.py
"""

from repro.engine import PrologMachine
from repro.workloads import standard_suite


def main() -> None:
    suite = standard_suite(rows=600, seed=1)
    header = (
        f"{'program':<14} {'answers':>8} {'retrievals':>10} "
        f"{'scanned':>8} {'filter ms':>10}  modes"
    )
    print(header)
    print("-" * len(header))
    for program in suite:
        kb = program.build()
        machine = PrologMachine(kb, unknown_predicates="fail", load_library=True)
        answers = sum(1 for _ in machine.solve(program.goal))
        stats = machine.stats
        modes = "+".join(sorted(m.value for m in stats.mode_uses))
        print(
            f"{program.name:<14} {answers:>8} {stats.retrievals:>10} "
            f"{stats.clauses_scanned:>8} {stats.filter_time_s * 1e3:>10.2f}  {modes}"
        )
        if program.expected_answers >= 0:
            assert answers == program.expected_answers, program.name
    print("\nall answer counts verified against independent ground truth")


if __name__ == "__main__":
    main()
