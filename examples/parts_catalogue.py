"""A disk-resident parts catalogue: mixed facts and rules at scale.

This is the kind of workload the PDBM project targets: a large predicate
holding ground facts *and* rules in one user-ordered relation (something
coupled Prolog/relational systems disallow), placed on disk, queried
through the planner-selected CLARE pipeline.

Run with::

    python examples/parts_catalogue.py
"""

import random

from repro.crs import SearchMode
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase, Residency
from repro.terms import term_to_string


def build_catalogue(parts: int = 1500, seed: int = 7) -> KnowledgeBase:
    rng = random.Random(seed)
    kb = KnowledgeBase()
    categories = ["fastener", "bearing", "gear", "housing", "shaft"]
    lines = []
    for number in range(parts):
        category = rng.choice(categories)
        weight = rng.randrange(1, 500)
        lines.append(
            f"part(p{number}, {category}, {weight})."
        )
    # Rules mixed into the same predicate: virtual parts.
    lines.insert(
        parts // 2,
        "part(Id, custom, W) :- custom_part(Id, W).",
    )
    lines.append("custom_part(cx1, 42). custom_part(cx2, 314).")
    # Assemblies: two-level bill of materials.
    for assembly in range(100):
        for _ in range(rng.randrange(2, 5)):
            component = rng.randrange(parts)
            lines.append(f"uses(a{assembly}, p{component}, {rng.randrange(1, 9)}).")
    lines.append(
        "needs(Assembly, Part) :- uses(Assembly, Part, _)."
    )
    lines.append(
        "total_weight(Assembly, Part, W) :- "
        "uses(Assembly, Part, N), part(Part, _, Unit), W is N * Unit."
    )
    kb.consult_text("\n".join(lines), module="catalogue")
    kb.module("catalogue").pin(Residency.DISK)
    kb.sync_to_disk()
    return kb


def main() -> None:
    kb = build_catalogue()
    machine = PrologMachine(kb)
    print(f"catalogue: {kb.clause_count()} clauses, {kb.size_bytes()} bytes compiled")
    print(f"part/3 residency: {kb.residency(('part', 3))}\n")

    print("exact part lookup (planner should use the SCW index):")
    for solution in machine.solve_text("part(p100, Cat, W)"):
        print(
            "  p100 is a", term_to_string(solution["Cat"]),
            "weighing", term_to_string(solution["W"]),
        )

    print("\nvirtual (rule-defined) parts answer the same query shape:")
    for solution in machine.solve_text("part(cx1, Cat, W)"):
        print(
            "  cx1 is a", term_to_string(solution["Cat"]),
            "weighing", term_to_string(solution["W"]),
        )

    print("\nassembly weights via arithmetic over joined predicates:")
    shown = 0
    for solution in machine.solve_text("total_weight(a3, Part, W)"):
        print(
            "  a3 uses", term_to_string(solution["Part"]),
            "contributing", term_to_string(solution["W"]),
        )
        shown += 1
        if shown >= 4:
            break

    print("\nretrieval accounting:")
    stats = machine.stats
    print(f"  retrievals        : {stats.retrievals}")
    print(f"  clauses scanned   : {stats.clauses_scanned}")
    print(f"  candidates passed : {stats.candidates}")
    print(f"  modelled filter s : {stats.filter_time_s:.4f}")
    for mode in SearchMode:
        if mode in stats.mode_uses:
            print(f"  mode {mode.value:<9}: {stats.mode_uses[mode]} uses")


if __name__ == "__main__":
    main()
