"""A knowledge base that lives in secondary storage, end to end.

Builds a KB, saves it as a directory of compiled clause files + index
files, reloads it in a "fresh session", runs queries through the CLARE
pipeline with the retrieval cache on, and prints the retrieval report.

Run with::

    python examples/persistent_kb.py
"""

import random
import tempfile

from repro.crs import ClauseRetrievalServer
from repro.engine import PrologMachine
from repro.report import format_query_report
from repro.storage import KnowledgeBase, Residency, load_kb, save_kb
from repro.terms import Atom, Clause, Int, Struct


def main() -> None:
    rng = random.Random(3)
    kb = KnowledgeBase()
    kb.consult_clauses(
        [
            Clause(
                Struct(
                    "reading",
                    (
                        Atom(f"sensor{i % 40}"),
                        Atom(f"t{i}"),
                        Int(rng.randrange(1000)),
                    ),
                )
            )
            for i in range(800)
        ],
        module="sensors",
    )
    kb.consult_text(
        "hot(Sensor) :- reading(Sensor, _, V), V > 900.",
        module="sensors",
    )
    kb.module("sensors").pin(Residency.DISK)

    with tempfile.TemporaryDirectory() as directory:
        files = save_kb(kb, directory)
        print(f"saved {kb.clause_count()} clauses as {len(files)} files:")
        for name in sorted(files)[:6]:
            print("  ", name)
        print("   ...")

        # --- a fresh session: nothing consulted from source ---
        restored = load_kb(directory)
        restored.sync_to_disk()
        print(
            f"\nreloaded: {restored.clause_count()} clauses, "
            f"{len(restored.predicates())} predicates, "
            f"reading/3 residency = {restored.residency(('reading', 3))}"
        )

        crs = ClauseRetrievalServer(restored, cache_size=64)
        machine = PrologMachine(restored, crs=crs, trace_retrievals=5)

        hot = machine.count_solutions("hot(S)")
        hot_again = machine.count_solutions("hot(S)")  # cache at work
        assert hot == hot_again
        print(f"\nhot sensors: {hot}")
        print(f"cache: {crs.cache_hits} hits, {crs.cache_misses} misses")

        print()
        print(format_query_report(machine, title="retrieval report"))


if __name__ == "__main__":
    main()
