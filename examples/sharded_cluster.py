"""Sharded multi-engine retrieval: N CLARE devices behind one front door.

Partitions one knowledge base across four complete engine instances,
compares the three routing policies on the same traffic, shows a
shared-variable goal broadcasting, and runs a goal batch on the thread
pool under the parallel-disk timing model (wall clock = busiest shard).

Run with::

    python examples/sharded_cluster.py
"""

from repro.cluster import BatchExecutor, ShardedRetrievalServer, ShardingPolicy
from repro.obs import Instrumentation
from repro.report import format_shard_report
from repro.storage import Residency
from repro.terms import read_term, term_to_string

PROGRAM = (
    " ".join(f"part(p{n}, bin{n % 7}, {n % 13})." for n in range(200))
    + " "
    + " ".join(f"supplier(s{n}, city{n % 5})." for n in range(60))
    + " married_couple(ann, ann). married_couple(bob, eve)."
    + " married_couple(Same, Same)."
)

GOALS = [
    "part(p17, Bin, Load)",
    "part(X, bin3, Load)",
    "supplier(S, city2)",
    "married_couple(W, W)",
]


def demo_policies() -> None:
    print("== clause placement per policy ==")
    for policy in ShardingPolicy:
        server = ShardedRetrievalServer(4, policy)
        server.consult_text(PROGRAM)
        balance = " ".join(
            f"s{k}={n}" for k, n in sorted(server.shard_clause_counts().items())
        )
        print(f"  {policy.value:<12} {balance}")
    print()


def demo_retrieval() -> None:
    obs = Instrumentation()
    server = ShardedRetrievalServer(
        4, ShardingPolicy.FIRST_ARG, cache_size=32, obs=obs
    )
    server.consult_text(PROGRAM)
    server.pin_module("user", Residency.DISK)

    print("== goals through the first_arg cluster ==")
    for text in GOALS:
        goal = read_term(text)
        result = server.retrieve(goal)
        stats = result.stats
        print(
            f"  {text:<28} mode={stats.mode.value:<8} "
            f"shards={stats.shards_queried} "
            f"{'broadcast' if stats.broadcast else 'routed   '} "
            f"candidates={len(result.candidates):<4} "
            f"wall={stats.filter_time_s * 1e3:7.3f}ms "
            f"device={stats.serial_filter_time_s * 1e3:7.3f}ms"
        )
    # The shared-variable goal must broadcast: the catch-all clause
    # married_couple(Same, Same) lives on one shard, ann/ann on another.
    matches = server.solutions(read_term("married_couple(W, W)"))
    answers = sorted(term_to_string(b.resolve(read_term("W"))) for _, b in matches)
    print(f"  married_couple(W, W) answers: {answers}")
    print()

    print("== the same goals as one batch (fresh, cold cluster) ==")
    cold = ShardedRetrievalServer(4, ShardingPolicy.FIRST_ARG, obs=obs)
    cold.consult_text(PROGRAM)
    cold.pin_module("user", Residency.DISK)
    batch = BatchExecutor(cold).run([read_term(t) for t in GOALS * 8])
    s = batch.stats
    print(
        f"  goals={s.goals} wall={s.wall_clock_s * 1e3:.3f}ms "
        f"serial={s.serial_time_s * 1e3:.3f}ms speedup={s.speedup:.2f}x"
    )
    print()
    print(format_shard_report(obs.registry))


def main() -> None:
    demo_policies()
    demo_retrieval()


if __name__ == "__main__":
    main()
