"""Quickstart: load a knowledge base and run queries through the PDBM stack.

Run with::

    python examples/quickstart.py
"""

from repro import KnowledgeBase, PrologMachine
from repro.terms import term_to_string

FAMILY = """
% Facts and rules live together, in the order you write them.
parent(tom, bob).    parent(tom, liz).
parent(bob, ann).    parent(bob, pat).
parent(pat, jim).

grand(X, Z) :- parent(X, Y), parent(Y, Z).

anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
"""


def main() -> None:
    kb = KnowledgeBase()
    kb.consult_text(FAMILY)
    machine = PrologMachine(kb)

    print("Who are tom's grandchildren?")
    for solution in machine.solve_text("grand(tom, Who)"):
        print("  Who =", term_to_string(solution["Who"]))

    print("\nWho are jim's ancestors?")
    for solution in machine.solve_text("anc(A, jim)"):
        print("  A =", term_to_string(solution["A"]))

    print("\nLists and arithmetic work too:")
    kb.consult_text(
        "sum_list([], 0). sum_list([H|T], S) :- sum_list(T, R), S is H + R."
    )
    for solution in machine.solve_text("sum_list([1, 2, 3, 4], S)"):
        print("  S =", term_to_string(solution["S"]))

    print("\nEvery clause was compiled to the PIF format behind the scenes:")
    store = kb.store(("anc", 2))
    record = store.clause_file.record(1)
    print(f"  anc/2 clause 2 -> {len(record.to_bytes())} bytes of PIF")
    print(f"  decoded back  -> {store.clause_file.decode_clause(1)}")


if __name__ == "__main__":
    main()
