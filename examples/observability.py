"""A tour of the observability layer: metrics, spans, NDJSON export.

One ``Instrumentation`` object threads through the whole pipeline —
knowledge base, disk model, CRS, FS1, FS2, host software — so a single
registry and a single span trace cover a run end to end.

Run with::

    python examples/observability.py
"""

import json
import tempfile

from repro import KnowledgeBase, PrologMachine
from repro.crs import ClauseRetrievalServer, SearchMode
from repro.obs import Instrumentation
from repro.report import format_metrics
from repro.storage import Residency


def build_machine(obs: Instrumentation) -> PrologMachine:
    kb = KnowledgeBase(obs=obs)
    kb.consult_text(
        " ".join(f"part(p{n}, bin{n % 7}, {n % 13}). " for n in range(400)),
        module="catalogue",
    )
    kb.module("catalogue").pin(Residency.DISK)
    kb.sync_to_disk()
    crs = ClauseRetrievalServer(kb, cache_size=32, obs=obs)
    return PrologMachine(kb, crs=crs, obs=obs)


def main() -> None:
    obs = Instrumentation()
    machine = build_machine(obs)

    # Exercise every CRS search mode over the disk-resident predicate.
    for mode in SearchMode:
        machine.mode = mode
        machine.succeeds("part(p123, Bin, Load)")
    machine.mode = None
    machine.succeeds("part(p123, Bin, Load)")  # planner picks; cache warm
    machine.succeeds("part(p123, Bin, Load)")  # ... and this one hits

    print(format_metrics(obs, title="one run, four modes"))

    # The span trace is the same run seen as a tree: engine.retrieve
    # wraps crs.retrieve, which wraps the stage spans.
    print("\nspan names recorded:", ", ".join(sorted(obs.recorder.span_names())))
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".ndjson", delete=False
    ) as handle:
        count = obs.recorder.write_ndjson(handle.name)
        print(f"wrote {count} spans to {handle.name}")
        first = json.loads(handle.read().splitlines()[0])
    print("first span:", first["name"], first["attrs"])

    hits = obs.registry.value("crs.cache.hits")
    waits = obs.registry.total("locks.waits")
    print(f"\ncache hits: {hits:g}, lock waits: {waits:g}")


if __name__ == "__main__":
    main()
