"""The paper's shared-variable scenario: ``married_couple(S, S)``.

Superimposed codeword indexing ignores variables, so the shared-variable
query retrieves the *entire* predicate from the knowledge base even though
"in reality the resolution set should be very small" (paper section 2.1).
The FS2 partial test unification stage is what rescues it.

Run with::

    python examples/married_couple.py
"""

from repro.crs import ClauseRetrievalServer, SearchMode
from repro.engine import PrologMachine
from repro.storage import KnowledgeBase, Residency
from repro.terms import read_term
from repro.workloads import generate_couples


def main() -> None:
    kb = KnowledgeBase()
    couples = generate_couples(count=2000, same_surname_fraction=0.05, seed=42)
    kb.consult_clauses(couples, module="registry")
    kb.module("registry").pin(Residency.DISK)
    kb.sync_to_disk()

    true_answers = sum(1 for c in couples if c.head.args[0] == c.head.args[1])
    print(f"knowledge base: {len(couples)} married_couple/2 facts")
    print(f"couples sharing a surname (the true answers): {true_answers}\n")

    crs = ClauseRetrievalServer(kb)
    query = read_term("married_couple(Same_surname, Same_surname)")

    header = f"{'mode':<10} {'candidates':>10} {'false drops':>11} {'filter ms':>10}"
    print(header)
    print("-" * len(header))
    for mode in SearchMode:
        result = crs.retrieve(query, mode=mode)
        stats = result.stats
        assert stats is not None
        false_drops = len(result.candidates) - true_answers
        print(
            f"{mode.value:<10} {len(result.candidates):>10} "
            f"{false_drops:>11} {stats.filter_time_s * 1e3:>10.2f}"
        )

    print(
        "\nFS1 alone returns every clause (the index cannot see the shared "
        "variable);\nany mode involving FS2 returns exactly the true answers."
    )

    machine = PrologMachine(kb)
    count = machine.count_solutions("married_couple(S, S)")
    print(f"\nfull resolution agrees: {count} solutions")
    modes = ", ".join(m.value for m in machine.stats.mode_uses)
    print(f"mode chosen by the planner: {modes}")


if __name__ == "__main__":
    main()
