"""Drive the FS2 hardware model at register level.

Follows the host protocol of paper section 3: select FS2 on the control
register, load the microprogram, set the query, run a search, read the
Result Memory — and prints the Table 1 timings recomputed from the
datapath routes along the way.

Run with::

    python examples/hardware_walkthrough.py
"""

from repro.fs2 import (
    OperationalMode,
    SecondStageFilter,
    assemble_search_program,
    table1,
    worst_case_rate_bytes_per_sec,
)
from repro.pif import ClauseFile, CompiledClause, PIFDecoder, SymbolTable
from repro.terms import clause_from_term, read_term


def main() -> None:
    print("=== Table 1: FS2 operation times from the datapath model ===")
    for figure, op_name, time_ns in table1():
        print(f"  figure {figure:>2}  {op_name:<24} {time_ns:>4} ns")
    rate = worst_case_rate_bytes_per_sec() / 1e6
    print(f"  worst-case filter rate: {rate:.2f} Mbytes/s (vs ~2 MB/s disk)\n")

    print("=== Host protocol ===")
    symbols = SymbolTable()
    clause_file = ClauseFile(("flight", 3), symbols)
    for text in [
        "flight(edi, lhr, ba1445)",
        "flight(edi, cdg, af1234)",
        "flight(X, X, shuttle)",
        "flight(gla, lhr, ba1478)",
    ]:
        clause_file.append(clause_from_term(read_term(text)))

    fs2 = SecondStageFilter(symbols)
    print(f"control register after reset: {fs2.control!r}")

    program = assemble_search_program()
    fs2.load_microprogram(program)
    print(
        f"microprogram loaded: {len(program)} words of "
        f"{64} bits (mode = {fs2.control.mode.name})"
    )

    query = read_term("flight(edi, Where, Flight)")
    fs2.set_query(query)
    print(f"query set: {query} (mode = {fs2.control.mode.name})")

    records = [clause_file.record(i).to_bytes() for i in range(len(clause_file))]
    stats = fs2.search(records)
    print(f"search done (mode = {fs2.control.mode.name})")
    print(f"  clauses examined : {stats.clauses_examined}")
    print(f"  satisfiers       : {stats.satisfiers}")
    print(f"  micro cycles     : {stats.micro_cycles}")
    print(f"  op counts        : "
          + ", ".join(f"{op.name}={n}" for op, n in sorted(stats.op_counts.items())))
    print(f"  TUE op time      : {stats.op_time_ns} ns")
    print(f"  match-found bit  : b7 = {int(fs2.control.match_found)}")

    assert fs2.control.mode != OperationalMode.READ_RESULT
    decoder = PIFDecoder(symbols)
    print("\nResult Memory contents (Read Result mode):")
    for record in fs2.read_results():
        compiled, _ = CompiledClause.from_bytes(record, ("flight", 3))
        print("  ", decoder.decode_head(compiled.head_encoded))


if __name__ == "__main__":
    main()
