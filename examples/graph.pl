% A small directed graph with its transitive closure — the demo
% program behind the `serve` / `client --solve` quickstart.

edge(a, b).
edge(b, c).
edge(c, d).
edge(a, e).
edge(e, d).

path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
