"""Multiple clients sharing the CRS: locks, conflicts, deadlock handling.

"The CRS will also support simultaneous access by multiple clients which
involves procedures for concurrency control and transaction handling"
(paper section 2.2).

Run with::

    python examples/multi_client.py
"""

from repro.crs import (
    ClauseRetrievalServer,
    CRSFrontEnd,
    DeadlockError,
    WouldBlock,
)
from repro.storage import KnowledgeBase
from repro.terms import read_term


def main() -> None:
    kb = KnowledgeBase()
    kb.consult_text(
        """
        stock(widget, 12).  stock(gadget, 3).
        price(widget, 250). price(gadget, 900).
        """
    )
    front_end = CRSFrontEnd(ClauseRetrievalServer(kb))

    print("-- concurrent readers share locks --")
    alice = front_end.connect()
    bob = front_end.connect()
    print("alice sees", len(alice.retrieve(read_term("stock(I, N)"))), "stock rows")
    print("bob sees  ", len(bob.retrieve(read_term("stock(I, N)"))), "stock rows")
    alice.commit()
    bob.commit()

    print("\n-- a writer excludes readers until it commits --")
    writer = front_end.connect()
    writer.assertz(read_term("stock(sprocket, 7)"))
    reader = front_end.connect()
    try:
        reader.retrieve(read_term("stock(I, N)"))
    except WouldBlock as exc:
        print("reader blocked:", exc)
    writer.commit()
    print(
        "after commit the reader sees",
        len(reader.retrieve(read_term("stock(I, N)"))),
        "rows",
    )
    reader.commit()

    print("\n-- deadlock detection aborts the victim --")
    one = front_end.connect()
    two = front_end.connect()
    one.assertz(read_term("stock(bolt, 1)"))  # one holds stock/2
    two.assertz(read_term("price(bolt, 5)"))  # two holds price/2
    try:
        one.assertz(read_term("price(nut, 2)"))  # one waits on two
    except WouldBlock:
        print("client one now waits for price/2")
    try:
        two.assertz(read_term("stock(nut, 9)"))  # would close the cycle
    except DeadlockError as exc:
        print("client two aborted:", exc)
    one.commit()
    print("client one committed after the victim released its locks")

    final = front_end.connect()
    rows = final.retrieve(read_term("stock(I, N)"))
    print("\nfinal stock table has", len(rows), "rows")


if __name__ == "__main__":
    main()
