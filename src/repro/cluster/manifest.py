"""The cluster manifest: who serves which shard, at which version.

A :class:`ClusterManifest` is the single source of truth for placement
in an elastic cluster: for every shard it lists the replica addresses
(``host:port`` of a :class:`~repro.net.RetrievalService` node) that hold
a complete copy of that shard's clause files.  The manifest is

* **versioned** — every placement change produces a *new* manifest with
  ``version + 1``; readers and writers carry the version they acted on,
  so a node that has moved on can reject a stale mutation with a
  ``STALE_MANIFEST`` frame instead of silently applying it to the wrong
  replica set;
* **immutable** — the ``with_*`` methods return fresh manifests; the
  only mutable cell in the system is the :class:`ManifestHolder`, whose
  :meth:`~ManifestHolder.flip` is an atomic compare-and-swap on the
  version (the migration coordinator's "flip the manifest" step);
* **JSON-serialisable** — it travels over ``REQ_MANIFEST`` frames and
  can be written next to a saved knowledge base, so a cold-started
  router can rediscover the fleet without consulting anything.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

__all__ = [
    "ManifestError",
    "ManifestVersionError",
    "ClusterManifest",
    "ManifestHolder",
]


class ManifestError(ValueError):
    """A malformed manifest (bad shard ids, duplicate replicas, ...)."""


class ManifestVersionError(ManifestError):
    """A compare-and-swap flip lost the race: the version moved."""


def _normalise(
    replicas: dict[int, tuple[str, ...]] | dict[int, list[str]]
) -> dict[int, tuple[str, ...]]:
    return {int(k): tuple(v) for k, v in replicas.items()}


@dataclass(frozen=True)
class ClusterManifest:
    """Versioned shard → replica-address placement for one cluster."""

    num_shards: int
    policy: str
    version: int = 0
    #: shard id → addresses ("host:port") holding a full replica.
    replicas: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ManifestError("a manifest needs at least one shard")
        if self.version < 0:
            raise ManifestError("manifest versions start at 0")
        object.__setattr__(self, "replicas", _normalise(self.replicas))
        for shard_id, addresses in self.replicas.items():
            if not 0 <= shard_id < self.num_shards:
                raise ManifestError(
                    f"shard {shard_id} outside 0..{self.num_shards - 1}"
                )
            if len(set(addresses)) != len(addresses):
                raise ManifestError(
                    f"shard {shard_id} lists a replica address twice"
                )

    # -- queries -------------------------------------------------------------

    def replicas_for(self, shard_id: int) -> tuple[str, ...]:
        """The replica addresses of one shard (empty if none placed)."""
        return self.replicas.get(shard_id, ())

    def addresses(self) -> tuple[str, ...]:
        """Every distinct address in the manifest, sorted."""
        seen: set[str] = set()
        for addresses in self.replicas.values():
            seen.update(addresses)
        return tuple(sorted(seen))

    def shards_at(self, address: str) -> tuple[int, ...]:
        """The shards an address holds a replica of."""
        return tuple(
            sorted(
                shard_id
                for shard_id, addresses in self.replicas.items()
                if address in addresses
            )
        )

    def replication_factor(self) -> int:
        """The smallest replica count over placed shards (0 if none)."""
        if not self.replicas:
            return 0
        return min(len(a) for a in self.replicas.values())

    # -- placement changes (each returns a version+1 manifest) ---------------

    def _evolve(self, replicas: dict[int, tuple[str, ...]]) -> "ClusterManifest":
        return ClusterManifest(
            num_shards=self.num_shards,
            policy=self.policy,
            version=self.version + 1,
            replicas=replicas,
        )

    def with_replica(self, shard_id: int, address: str) -> "ClusterManifest":
        """Add a replica of ``shard_id`` at ``address``."""
        current = self.replicas_for(shard_id)
        if address in current:
            raise ManifestError(
                f"shard {shard_id} already has a replica at {address}"
            )
        replicas = dict(self.replicas)
        replicas[shard_id] = current + (address,)
        return self._evolve(replicas)

    def without_replica(self, shard_id: int, address: str) -> "ClusterManifest":
        """Drop the replica of ``shard_id`` at ``address``."""
        current = self.replicas_for(shard_id)
        if address not in current:
            raise ManifestError(
                f"shard {shard_id} has no replica at {address}"
            )
        replicas = dict(self.replicas)
        replicas[shard_id] = tuple(a for a in current if a != address)
        return self._evolve(replicas)

    def moved_replica(
        self, shard_id: int, source: str, target: str
    ) -> "ClusterManifest":
        """One atomic placement step: ``source`` out, ``target`` in.

        This is the shape of a migration flip — the shard is never
        listed with neither node, and the whole move costs one version.
        """
        current = self.replicas_for(shard_id)
        if source not in current:
            raise ManifestError(f"shard {shard_id} has no replica at {source}")
        if target in current:
            raise ManifestError(
                f"shard {shard_id} already has a replica at {target}"
            )
        replicas = dict(self.replicas)
        replicas[shard_id] = tuple(
            target if a == source else a for a in current
        )
        return self._evolve(replicas)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "num_shards": self.num_shards,
            "policy": self.policy,
            "replicas": {
                str(shard_id): list(addresses)
                for shard_id, addresses in sorted(self.replicas.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterManifest":
        try:
            return cls(
                num_shards=int(data["num_shards"]),
                policy=str(data["policy"]),
                version=int(data["version"]),
                replicas={
                    int(shard_id): tuple(addresses)
                    for shard_id, addresses in data.get("replicas", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ManifestError):
                raise
            raise ManifestError(f"malformed manifest: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ClusterManifest":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ManifestError(f"manifest is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ManifestError("manifest JSON must be an object")
        return cls.from_dict(data)


class ManifestHolder:
    """The one mutable cell: the fleet's current manifest, CAS-flipped.

    Every placement change goes through :meth:`flip`, which succeeds
    only if the caller evolved the manifest it read — two concurrent
    coordinators cannot both win, and the loser sees
    :class:`ManifestVersionError` instead of silently clobbering the
    other's move.
    """

    def __init__(self, manifest: ClusterManifest):
        self._manifest = manifest
        self._lock = threading.Lock()

    @property
    def current(self) -> ClusterManifest:
        with self._lock:
            return self._manifest

    @property
    def version(self) -> int:
        with self._lock:
            return self._manifest.version

    def flip(self, new_manifest: ClusterManifest) -> ClusterManifest:
        """Install ``new_manifest`` iff it is the successor of the current one."""
        with self._lock:
            if new_manifest.version != self._manifest.version + 1:
                raise ManifestVersionError(
                    f"flip to version {new_manifest.version} rejected: "
                    f"current is {self._manifest.version}"
                )
            self._manifest = new_manifest
            return new_manifest
