"""Shard routing: which CLARE device holds which clauses.

One CLARE is a two-stage filter in front of one disk; a cluster is N of
them, each with its own clause files, SCW index, FS2 engine and disk.
The :class:`ShardRouter` decides (a) the home shard of every stored
clause and (b) the set of shards a goal must be sent to.  Three
partitioning policies are supported:

* ``predicate`` — all clauses of one ``functor/arity`` share a shard
  (hash of the indicator).  Every goal routes to exactly one shard.
* ``first_arg`` — clauses partition by the classic first-argument index
  key (B-Prolog style argument indexing: atomic values key on the value,
  compound terms on their principal functor).  Goals with an indexable
  first argument route to that key's shard *plus* any shards holding
  clauses whose first argument is a variable (those match anything);
  goals with an unbound first argument broadcast.
* ``round_robin`` — clauses spread evenly regardless of content; every
  goal broadcasts to the shards holding its predicate.

Routing is *sound by construction*: a goal is sent to every shard that
could hold a unifying clause (the differential suite checks the merged
candidate set equals a single engine's, policy by policy).  Soundness
w.r.t. unification is not the whole story, though — a raw FS1 scan
returns codeword false drops that first-argument pruning would skip, so
:meth:`ShardRouter.route_goal` takes ``prune=False`` for FS1-only
retrievals (see its docstring).  Hashes use
CRC-32 over the canonical key encoding — deterministic across processes
and ``PYTHONHASHSEED`` values, so a KB partitions identically on every
run and the routing of a goal can be replayed offline.
"""

from __future__ import annotations

import threading
import zlib
from enum import Enum

from ..crs.keys import canonical_goal_key, first_arg_index_key
from ..storage import UnknownPredicateError
from ..terms import Term, functor_indicator

__all__ = ["ShardingPolicy", "ShardRouter", "stable_shard_hash"]


class ShardingPolicy(str, Enum):
    """How clauses are partitioned across the cluster's engines."""

    PREDICATE = "predicate"
    FIRST_ARG = "first_arg"
    ROUND_ROBIN = "round_robin"


def stable_shard_hash(key: object) -> int:
    """A process-independent hash of a (nested-tuple) routing key.

    ``repr`` of the canonical key tuples is stable — they contain only
    strings, ints and canonicalised float reprs — and CRC-32 of that
    text is stable everywhere, unlike builtin ``hash`` under randomised
    ``PYTHONHASHSEED``.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class ShardRouter:
    """Clause placement and goal fan-out for an N-shard cluster."""

    def __init__(self, num_shards: int, policy: ShardingPolicy | str):
        if num_shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.num_shards = num_shards
        self.policy = ShardingPolicy(policy)
        self._lock = threading.Lock()
        self._rr_next = 0
        #: shards that hold at least one clause of each predicate.
        self._indicator_shards: dict[tuple[str, int], set[int]] = {}
        #: first_arg policy only: shards holding clauses of a predicate
        #: whose first argument is unindexable (a variable, or arity 0) —
        #: such clauses can unify with any goal, so these shards join
        #: every routed goal's target set.
        self._unindexed_shards: dict[tuple[str, int], set[int]] = {}

    # -- clause placement ---------------------------------------------------

    def route_clause(self, head: Term) -> int:
        """The home shard for a clause with this head (and record it)."""
        indicator = functor_indicator(head)
        with self._lock:
            if self.policy is ShardingPolicy.PREDICATE:
                shard = self._hash_shard(("pred", indicator))
            elif self.policy is ShardingPolicy.FIRST_ARG:
                key = first_arg_index_key(head)
                if key is None:
                    shard = self._hash_shard(("pred", indicator))
                    self._unindexed_shards.setdefault(indicator, set()).add(
                        shard
                    )
                else:
                    shard = self._hash_shard(("arg", indicator, key))
            else:  # ROUND_ROBIN
                shard = self._rr_next
                self._rr_next = (self._rr_next + 1) % self.num_shards
            self._indicator_shards.setdefault(indicator, set()).add(shard)
            return shard

    def observe(self, head: Term, shard_id: int) -> None:
        """Record that ``shard_id`` holds a clause with this head.

        Unlike :meth:`route_clause` this does not *choose* a placement —
        it registers one that already exists (a recovered snapshot, or a
        shard discovered by a cold client's broadcast probe).  Under
        round-robin the original placement was positional, so re-hashing
        would record a lie; under first-arg an observed clause joins the
        unindexed set when its key is unindexable, exactly as if it had
        been routed here originally.
        """
        indicator = functor_indicator(head)
        with self._lock:
            self._indicator_shards.setdefault(indicator, set()).add(shard_id)
            if (
                self.policy is ShardingPolicy.FIRST_ARG
                and first_arg_index_key(head) is None
            ):
                self._unindexed_shards.setdefault(indicator, set()).add(
                    shard_id
                )

    def observe_indicator(self, indicator: tuple[str, int], shard_id: int) -> None:
        """Record that ``shard_id`` answered for ``indicator`` (discovery).

        Used by cold clients that probed every shard: only the predicate
        is known, not the individual clause keys, so under ``first_arg``
        the shard is conservatively added to the unindexed set — future
        goals on the predicate broadcast to it, which is sound (the
        filter stages reject non-unifying clauses) just unpruned.
        """
        with self._lock:
            self._indicator_shards.setdefault(indicator, set()).add(shard_id)
            if self.policy is ShardingPolicy.FIRST_ARG:
                self._unindexed_shards.setdefault(indicator, set()).add(
                    shard_id
                )

    # -- goal fan-out -------------------------------------------------------

    def route_goal(self, goal: Term, *, prune: bool = True) -> tuple[int, ...]:
        """The shards this goal must query, in ascending shard order.

        Raises :class:`UnknownPredicateError` when no shard has ever
        stored the goal's predicate — matching the single-engine server.
        An empty tuple means the predicate exists but no shard can hold a
        unifying clause (e.g. a first-argument key nobody stored under).

        ``prune`` only affects the ``first_arg`` policy.  First-argument
        pruning skips exactly the shards whose clauses *cannot unify*
        with the goal, which is invisible to any retrieval whose final
        filter stage performs (at least) partial test unification —
        software, FS2-only and FS1+FS2 all reject those clauses anyway.
        A *raw FS1 scan* is weaker than that: its codeword false drops
        are not confined to the goal's key shard, so an FS1-only
        retrieval must pass ``prune=False`` to scan every shard of the
        predicate and reproduce the single device's candidate stream
        exactly (the differential suite checks this, mode by mode).
        """
        indicator = functor_indicator(goal)
        with self._lock:
            populated = self._indicator_shards.get(indicator)
            if not populated:
                name, arity = indicator
                raise UnknownPredicateError(
                    f"unknown predicate {name}/{arity}"
                )
            if self.policy is ShardingPolicy.FIRST_ARG:
                key = first_arg_index_key(goal)
                if key is None or not prune:
                    # Unbound (or shared-variable) first argument: any
                    # shard's clauses might unify — broadcast.
                    return tuple(sorted(populated))
                targets = {self._hash_shard(("arg", indicator, key))}
                targets |= self._unindexed_shards.get(indicator, set())
                return tuple(sorted(targets & populated))
            if self.policy is ShardingPolicy.PREDICATE:
                return tuple(
                    sorted({self._hash_shard(("pred", indicator))} & populated)
                )
            return tuple(sorted(populated))  # ROUND_ROBIN broadcasts

    def is_broadcast(self, goal: Term) -> bool:
        """Whether this goal fans out to more than one shard."""
        return len(self.route_goal(goal)) > 1

    # -- introspection -------------------------------------------------------

    def routing_key(self, goal: Term) -> tuple:
        """The canonical identity routing decisions are derived from.

        This is exactly the cache key's canonical encoding
        (:func:`repro.crs.keys.canonical_goal_key`): a ground goal's
        routing and caching can never disagree about goal identity.
        """
        return canonical_goal_key(goal)

    def known_indicators(self) -> list[tuple[str, int]]:
        with self._lock:
            return sorted(self._indicator_shards)

    def shards_for_indicator(self, indicator: tuple[str, int]) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._indicator_shards.get(indicator, ())))

    # -- internals ------------------------------------------------------------

    def _hash_shard(self, key: object) -> int:
        return stable_shard_hash(key) % self.num_shards
