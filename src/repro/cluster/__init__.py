"""Sharded multi-engine clause retrieval: N CLARE devices, one front door.

:mod:`repro.cluster.routing` places clauses and fans goals out;
:mod:`repro.cluster.server` runs N complete engine instances behind the
single-server ``retrieve``/``solutions`` contract; and
:mod:`repro.cluster.batch` executes goal batches on a thread pool under
the parallel-disk (max-over-shards) timing model.

Elasticity lives in three more modules: :mod:`repro.cluster.manifest`
(the versioned shard→replica→address placement and its CAS holder),
:mod:`repro.cluster.fleet` (replicated nodes behind real sockets, the
failover/replicated-write client, and the chaos fault verbs), and
:mod:`repro.cluster.migrate` (live shard migration and replica resync
via snapshot + mutation-log catch-up).
"""

from .batch import BatchExecutor, BatchResult, BatchStats
from .manifest import (
    ClusterManifest,
    ManifestError,
    ManifestHolder,
    ManifestVersionError,
)
from .routing import ShardingPolicy, ShardRouter, stable_shard_hash
from .server import (
    ClusterShard,
    MergedRetrievalStats,
    MutationLogOverflow,
    MutationRecord,
    ShardedRetrievalServer,
    WritesFrozen,
)

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "ClusterManifest",
    "ClusterNode",
    "ClusterShard",
    "Fleet",
    "FleetClient",
    "FleetWriteError",
    "ManifestError",
    "ManifestHolder",
    "ManifestVersionError",
    "MergedRetrievalStats",
    "MigrationError",
    "MutationLogOverflow",
    "MutationRecord",
    "ShardRouter",
    "ShardedRetrievalServer",
    "ShardingPolicy",
    "WritesFrozen",
    "migrate_shard",
    "resync_replica",
    "stable_shard_hash",
]

#: Fleet and migration live behind a lazy import: they pull in
#: :mod:`repro.net`, whose protocol module imports *this* package for
#: :class:`MergedRetrievalStats` — importing them eagerly here would
#: close that loop while both modules are half-initialised.
_LAZY = {
    "ClusterNode": "fleet",
    "Fleet": "fleet",
    "FleetClient": "fleet",
    "FleetWriteError": "fleet",
    "MigrationError": "migrate",
    "migrate_shard": "migrate",
    "resync_replica": "migrate",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
