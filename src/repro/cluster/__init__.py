"""Sharded multi-engine clause retrieval: N CLARE devices, one front door.

:mod:`repro.cluster.routing` places clauses and fans goals out;
:mod:`repro.cluster.server` runs N complete engine instances behind the
single-server ``retrieve``/``solutions`` contract; and
:mod:`repro.cluster.batch` executes goal batches on a thread pool under
the parallel-disk (max-over-shards) timing model.
"""

from .batch import BatchExecutor, BatchResult, BatchStats
from .routing import ShardingPolicy, ShardRouter, stable_shard_hash
from .server import ClusterShard, MergedRetrievalStats, ShardedRetrievalServer

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "ClusterShard",
    "MergedRetrievalStats",
    "ShardRouter",
    "ShardedRetrievalServer",
    "ShardingPolicy",
    "stable_shard_hash",
]
