"""Live shard migration and replica resync over real snapshots.

Moving a shard replica is a five-beat protocol, built entirely from
machinery that already exists elsewhere in the tree:

1. **Snapshot** — the source's clause files are written with
   :func:`~repro.storage.save_kb` while the shard lock pins a cut point
   ``seq`` (the engine's mutation-log sequence at exactly the snapshot's
   content), and loaded into a fresh node with
   :func:`~repro.storage.load_kb` + ``adopt_kb``.  The snapshot carries
   the engine's applied write-id memo in a sidecar, so idempotent
   dedupe survives the restore.
2. **Catch-up** — the writes that landed on the source after ``seq``
   stream over as mutation-log deltas
   (:meth:`~repro.cluster.ShardedRetrievalServer.mutations_since`),
   round after round, until the target has drawn level.  A delta that
   fell off the capped log (:class:`~repro.cluster.MutationLogOverflow`)
   forces a fresh snapshot instead of a silently incomplete replay.
3. **Freeze + final delta** — every live replica of the shard briefly
   refuses mutations (:class:`~repro.cluster.WritesFrozen`; clients
   back off and retry), a quiescence barrier guarantees in-flight
   writes are logged, and one last delta levels the target *while
   nothing can change*.  An overflow here retries from a fresh snapshot
   of the now-quiescent source — it cannot out-write the log again.
4. **Flip** — the manifest version advances atomically
   (:meth:`~repro.cluster.ManifestHolder.flip` of a ``moved_replica``
   manifest).  From this instant every versioned write stamped with the
   old placement is refused with ``STALE_MANIFEST`` — and because the
   final delta already landed, the target becomes readable *complete*:
   no acknowledged write is missing from it, ever.
5. **Thaw + drain** — the siblings accept writes again, the retiring
   source drains gracefully and is removed from the fleet.

No acknowledged write can be lost or doubled: a write is in the
snapshot (seq ≤ cut), in a catch-up delta, in the frozen final delta,
or refused (stale/frozen) and re-routed by the client — and the
client's per-write ``write_id`` makes a delta replay of a write the
client also re-routed to the target a no-op instead of a duplicate.
"""

from __future__ import annotations

import json
import pathlib

from ..obs import get_default as _default_obs
from ..storage import kb_fingerprint, load_kb, save_kb
from .fleet import ClusterNode, Fleet
from .server import MutationLogOverflow

__all__ = ["MigrationError", "migrate_shard", "resync_replica",
           "snapshot_node", "catch_up"]

#: How many catch-up rounds to chase a source under write load before
#: concluding it cannot be caught (each round replays everything new
#: since the previous one; under any finite write rate this converges).
_MAX_CATCH_UP_ROUNDS = 16

#: How many times a fallen-off-the-log delta may force a re-snapshot.
_MAX_SNAPSHOT_ATTEMPTS = 3


class MigrationError(RuntimeError):
    """A shard migration or replica resync could not complete."""


#: Sidecar file a snapshot directory carries next to the clause files:
#: the source engine's applied write-id memo at the cut.  A restored
#: replica needs it to dedupe a client re-route of a write that is
#: already *inside* the snapshot content.
WRITE_IDS_FILE = "write_ids.json"


def snapshot_node(node: ClusterNode, directory: str | pathlib.Path) -> int:
    """Save a node's KB under its shard lock; returns the cut ``seq``.

    Holding the lock while reading ``engine.version`` *and* writing the
    files is what makes the cut exact: every mutation bumps the version
    inside the same lock, so the snapshot's content corresponds to the
    returned sequence number precisely — the delta from ``seq`` neither
    misses a write the snapshot lacks nor doubles one it already holds.
    The applied write-id memo is captured under the same lock and saved
    alongside (:data:`WRITE_IDS_FILE`).
    """
    engine = node.engine
    shard = engine.shards[0]
    with shard.lock:
        seq = engine.version
        save_kb(shard.kb, directory)
        applied = engine.applied_write_ids()
    (pathlib.Path(directory) / WRITE_IDS_FILE).write_text(
        json.dumps(applied), encoding="utf-8"
    )
    return seq


def catch_up(source: ClusterNode, target: ClusterNode, seq: int) -> int:
    """Replay source mutations after ``seq`` onto the target.

    Runs in rounds (new writes may land while a round replays) until a
    round comes back empty; returns the sequence the target has now
    caught up to.  Raises :class:`~repro.cluster.MutationLogOverflow`
    (via ``mutations_since``) when the delta fell off the capped log,
    and :class:`MigrationError` when the source out-writes the chase.
    """
    for _ in range(_MAX_CATCH_UP_ROUNDS):
        records = source.engine.mutations_since(seq)
        if not records:
            return seq
        for record in records:
            target.engine.apply_mutation(record)
        seq = records[-1].seq
    raise MigrationError(
        f"source still producing writes after {_MAX_CATCH_UP_ROUNDS} "
        "catch-up rounds"
    )


def _snapshot_into(
    source: ClusterNode,
    target: ClusterNode,
    workdir: str | pathlib.Path,
) -> int:
    """Snapshot + load + initial catch-up, retrying on log overflow."""
    workdir = pathlib.Path(workdir)
    last_exc: Exception | None = None
    for attempt in range(_MAX_SNAPSHOT_ATTEMPTS):
        snapdir = workdir / f"snapshot-{attempt}"
        seq = snapshot_node(source, snapdir)
        target.engine.adopt_kb(load_kb(snapdir))
        sidecar = snapdir / WRITE_IDS_FILE
        if sidecar.exists():
            target.engine.adopt_write_ids(
                json.loads(sidecar.read_text(encoding="utf-8"))
            )
        try:
            return catch_up(source, target, seq)
        except MutationLogOverflow as exc:
            # The source's write rate evicted our delta (or a reload
            # intervened); the snapshot is stale — take a fresh one.
            last_exc = exc
    raise MigrationError(
        f"catch-up delta kept falling off the mutation log after "
        f"{_MAX_SNAPSHOT_ATTEMPTS} snapshots"
    ) from last_exc


def migrate_shard(
    fleet: Fleet,
    shard_id: int,
    source_address: str,
    workdir: str | pathlib.Path,
    *,
    verify: bool = False,
) -> str:
    """Move one replica of ``shard_id`` off ``source_address`` live.

    Returns the new replica's address.  The final delta lands *before*
    the manifest flip, under a brief shard-wide write freeze
    (:class:`~repro.cluster.WritesFrozen` refusals; clients back off and
    re-route), so the instant the target becomes readable it already
    holds every acknowledged write.  The flip itself is atomic and
    versioned: clients writing under the old placement are refused with
    ``STALE_MANIFEST`` and re-route; reads simply fail over.  With
    ``verify=True`` the retired source and the new target are compared
    clause-for-clause (:func:`~repro.storage.kb_fingerprint`) — only
    sound when no writes raced the flip, so it is opt-in for tests.
    """
    obs = fleet.obs
    source = fleet.node_at(source_address)
    if source.shard_id != shard_id:
        raise MigrationError(
            f"{source_address} serves shard {source.shard_id}, "
            f"not {shard_id}"
        )
    if not source.alive:
        raise MigrationError(f"{source_address} is not serving")
    if source_address not in fleet.manifest.replicas_for(shard_id):
        raise MigrationError(
            f"{source_address} is not in the manifest for shard {shard_id}"
        )
    with obs.span("cluster.migrate", shard=shard_id, source=source_address):
        target = fleet.new_node(shard_id)
        frozen: list[ClusterNode] = []
        flipped = False
        try:
            try:
                # Bulk copy while traffic flows freely.
                seq = _snapshot_into(source, target, workdir)
                # Freeze the whole replica group — not just the source:
                # a write acked by a sibling alone would otherwise be
                # missing from both the source's log and the target.
                # Each freeze ends with a quiescence barrier, so every
                # admitted write is logged before the final delta reads.
                for address in fleet.manifest.replicas_for(shard_id):
                    node = fleet.nodes.get(address)
                    if node is not None and node.alive:
                        node.engine.freeze_writes()
                        frozen.append(node)
                try:
                    catch_up(source, target, seq)
                except MutationLogOverflow:
                    # The source out-wrote the log between the last live
                    # round and the freeze.  It is quiescent now, so one
                    # fresh snapshot is guaranteed to level the target.
                    _snapshot_into(
                        source, target, pathlib.Path(workdir) / "frozen"
                    )
                # Atomic placement flip: one version step swaps source
                # for target.  The target is already complete, so it is
                # readable-consistent from its very first instant; the
                # source can no longer accept versioned writes at all.
                fleet.holder.flip(
                    fleet.manifest.moved_replica(
                        shard_id, source_address, target.address
                    )
                )
                flipped = True
            except BaseException:
                # Nothing was flipped: the old placement is still whole.
                # Roll the half-built target back out of the fleet.
                if not flipped:
                    target.crash()
                    fleet.nodes.pop(target.address, None)
                raise
        finally:
            # Thaw the survivors whichever way it went.  The retiring
            # source stays frozen through its drain on success — an
            # unversioned straggler write landing there would be lost.
            for node in frozen:
                if node is not source or not flipped:
                    node.engine.thaw_writes()
        source.drain()  # graceful: in-flight reads finish, then close
        source.engine.thaw_writes()
        if verify:
            source_print = kb_fingerprint(source.engine.shards[0].kb)
            target_print = kb_fingerprint(target.engine.shards[0].kb)
            if source_print != target_print:
                raise MigrationError(
                    "migrated replica diverges from its source: "
                    f"{sorted(set(source_print) ^ set(target_print)) or 'clause bodies differ'}"
                )
        fleet.nodes.pop(source_address, None)
        obs.counter("cluster.migrations").inc()
    return target.address


def resync_replica(
    peer: ClusterNode,
    stale: ClusterNode,
    workdir: str | pathlib.Path,
) -> None:
    """Rebuild a stale replica's state from a healthy peer of its shard.

    Used on restart-after-crash.  A durable node comes back holding its
    own recovered prefix of the shard's history, so resync first tries
    the cheap path: replay just the peer's delta past the stale node's
    version (``mutations_since`` serves it from the in-memory log or,
    past the deque, by WAL-shipping).  The replay is only trusted if the
    content fingerprints come out equal — replicas apply the same writes
    but their version counters are node-local, so a divergent history
    (e.g. a ``reload``) shows up as a mismatch and falls back to the
    authoritative snapshot copy.  The stale node must not be serving
    while this runs (its reads would be wrong mid-copy); the caller
    readmits it afterwards.
    """
    if stale.alive:
        raise MigrationError("resync target must be stopped while copying")
    if peer.shard_id != stale.shard_id:
        raise MigrationError(
            f"peer serves shard {peer.shard_id}, target expects "
            f"{stale.shard_id}"
        )
    if _catch_up_in_place(peer, stale):
        _default_obs().counter("cluster.resyncs.incremental").inc()
    else:
        _snapshot_into(peer, stale, workdir)
    _default_obs().counter("cluster.resyncs").inc()


def _catch_up_in_place(peer: ClusterNode, stale: ClusterNode) -> bool:
    """Try an incremental resync over the stale node's recovered state.

    Returns ``True`` only when the peer's delta replayed cleanly AND the
    resulting content matches the peer fingerprint-for-fingerprint.  Any
    failure — delta evicted below the peer's last compaction, divergent
    histories making a replayed retract miss, a racing write landing
    between the last round and the comparison — returns ``False`` and
    the caller takes a fresh snapshot, which wholesale replaces whatever
    this attempt left behind.
    """
    seq = stale.engine.version
    if seq == 0:
        return False
    try:
        catch_up(peer, stale, seq)
    except Exception:
        return False
    ours = [kb_fingerprint(shard.kb) for shard in stale.engine.shards]
    theirs = [kb_fingerprint(shard.kb) for shard in peer.engine.shards]
    return ours == theirs
