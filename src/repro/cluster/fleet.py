"""An elastic cluster: replicated shard nodes behind real sockets.

This module turns the single-process :class:`ShardedRetrievalServer`
into a *fleet*: every (shard, replica) pair is a :class:`ClusterNode` —
a complete one-shard engine behind its own
:class:`~repro.net.RetrievalService` socket — and a
:class:`ClusterManifest` (shared through one :class:`ManifestHolder`)
says which addresses hold which shard.  Three parties cooperate:

* :class:`Fleet` — the coordinator.  Partitions a program across
  shards, boots the nodes, and owns the fault/elasticity verbs the
  chaos harness drives: :meth:`Fleet.kill` (abrupt crash),
  :meth:`Fleet.restart` (resync from a healthy peer, then serve),
  :meth:`Fleet.slow` (latency injection), and — in
  :mod:`repro.cluster.migrate` — live shard migration.
* :class:`ClusterNode` — one replica's lifecycle (start/drain/crash).
* :class:`FleetClient` — the routing client.  Reads fan out over a
  shard's healthy replicas with true failover
  (:class:`~repro.net.FailoverClient`); writes apply to *every* active
  replica of the home shard, tagged with the manifest version they
  routed under, so a write racing a migration flip is rejected with
  ``STALE_MANIFEST`` and re-routed instead of landing on retired
  placement.

Write-acknowledgement contract (what "no lost acknowledged writes"
means in the chaos suite): a write is acknowledged iff at least one
active replica applied it, and every active replica that did *not*
acknowledge is marked stale — excluded from reads until the fleet
resyncs it.  Reads therefore never observe a replica that is missing an
acknowledged write, with one deliberate, *flagged* exception: when every
replica of a shard is stale-marked there is nothing consistent left to
prefer, so reads degrade to the full set and the merged stats carry
``degraded=True`` (plus a ``cluster.fleet.degraded_reads`` counter) so
callers can tell those answers apart.

Every logical write also carries a client-generated ``write_id``.  The
id is reused verbatim across stale-manifest re-routes, replica fan-out,
and both phases of a retract, and the engines memoise applied ids — so
a write that reaches the same node twice by different paths (directly
*and* via a migration's delta replay) lands exactly once.
"""

from __future__ import annotations

import pathlib
import threading
import time
import uuid
from dataclasses import dataclass, field

from ..crs import RetrievalResult, RetrievalStats, SearchMode
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..scw import CodewordScheme, DEFAULT_SCHEME
from ..storage import DurabilityOptions, UnknownPredicateError
from ..terms import Clause, Term, clause_from_term, functor_indicator, read_program
from .manifest import ClusterManifest, ManifestHolder
from .routing import ShardingPolicy, ShardRouter
from .server import (
    MergedRetrievalStats,
    ShardedRetrievalServer,
    WritesFrozen,
)

__all__ = ["ClusterNode", "Fleet", "FleetClient", "FleetWriteError"]


class FleetWriteError(RuntimeError):
    """No active replica acknowledged a write — it must not be counted."""


#: Re-route/retry budget for one replicated write: each round handles
#: one stale-manifest refresh or one frozen-write backoff.  A migration
#: freeze lasts one final delta replay (small: the log is capped), so
#: with escalating waits this budget comfortably outlives it.
_WRITE_ROUNDS = 8


def _as_clause(clause_or_term: Clause | Term) -> Clause:
    if isinstance(clause_or_term, Clause):
        return clause_or_term
    return clause_from_term(clause_or_term)


@dataclass
class ClusterNode:
    """One replica: a one-shard engine behind its own socket."""

    shard_id: int
    engine: ShardedRetrievalServer
    service: object = None  # RetrievalService, once built
    background: object = None  # BackgroundService, once started
    address: str = ""
    alive: bool = False
    service_opts: dict = field(default_factory=dict)

    def start(self, manifest_holder: ManifestHolder | None) -> str:
        """Serve (or resume serving) on this node's address."""
        from ..net.server import BackgroundService, RetrievalService

        host, port = "127.0.0.1", 0
        if self.address:
            # A restart must come back on the address the manifest
            # advertises — peers and clients know no other name for it.
            host, _, port_text = self.address.rpartition(":")
            port = int(port_text)
        self.service = RetrievalService(
            self.engine, host=host, port=port,
            manifest_holder=manifest_holder, **self.service_opts
        )
        self.background = BackgroundService(self.service)
        bound_host, bound_port = self.background.start()
        self.address = f"{bound_host}:{bound_port}"
        self.alive = True
        return self.address

    def drain(self) -> None:
        """Graceful stop: finish every admitted request, then close."""
        if self.background is not None:
            self.background.stop()
        self.alive = False

    def crash(self) -> None:
        """Abrupt stop: connections reset, in-flight work abandoned."""
        if self.background is not None:
            self.background.kill()
        self.alive = False


class Fleet:
    """Coordinator for a replicated, elastically placed cluster."""

    def __init__(
        self,
        program_text: str = "",
        *,
        num_shards: int = 2,
        replicas: int = 2,
        policy: ShardingPolicy | str = ShardingPolicy.PREDICATE,
        scheme: CodewordScheme = DEFAULT_SCHEME,
        module: str = "user",
        obs: Instrumentation | None = None,
        service_opts: dict | None = None,
        engine_opts: dict | None = None,
        durability_root: str | pathlib.Path | None = None,
        durability_opts: dict | None = None,
    ):
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica per shard")
        self.obs = obs if obs is not None else _default_obs()
        self.policy = ShardingPolicy(policy)
        self.num_shards = num_shards
        self.scheme = scheme
        self._service_opts = dict(service_opts or {})
        self._engine_opts = dict(engine_opts or {})
        #: with a durability root, every node gets its own WAL-backed
        #: store under ``<root>/shard<k>-node<n>`` — acked writes survive
        #: node process death, and replica resync/migration catch-up
        #: rides the durable log (WAL-shipping) instead of only the
        #: capped in-memory mutation deque.
        self._durability_root = (
            pathlib.Path(durability_root)
            if durability_root is not None else None
        )
        self._durability_opts = dict(durability_opts or {})
        self._node_counter = 0
        #: placement oracle: the same deterministic router the sharded
        #: server uses, populated while the program is partitioned.  A
        #: :class:`FleetClient` shares it to route goals to shard ids
        #: (production would serialise its state into the manifest).
        self.router = ShardRouter(num_shards, self.policy)
        self._partition: dict[int, list[tuple[Clause, str]]] = {
            shard_id: [] for shard_id in range(num_shards)
        }
        for term in read_program(program_text):
            clause = clause_from_term(term)
            home = self.router.route_clause(clause.head)
            self._partition[home].append((clause, module))
        #: address -> node, every replica ever started (dead ones stay
        #: until restarted or migrated away).
        self.nodes: dict[str, ClusterNode] = {}
        self.holder: ManifestHolder | None = None
        self._lock = threading.Lock()
        self._replicas = replicas

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> ClusterManifest:
        """Boot every (shard, replica) node and publish manifest v0."""
        placement: dict[int, tuple[str, ...]] = {}
        started: list[ClusterNode] = []
        for shard_id in range(self.num_shards):
            addresses: list[str] = []
            for _ in range(self._replicas):
                node = self._build_node(shard_id)
                node.start(None)
                started.append(node)
                self.nodes[node.address] = node
                addresses.append(node.address)
            placement[shard_id] = tuple(addresses)
        manifest = ClusterManifest(
            num_shards=self.num_shards,
            policy=self.policy.value,
            # manifest_version=0 on the wire means "unversioned, skip
            # the stale check"; publishing v1 keeps every fleet write
            # stale-checkable from the very first flip.
            version=1,
            replicas=placement,
        )
        self.holder = ManifestHolder(manifest)
        for node in started:
            node.service.manifest_holder = self.holder
        self.obs.counter("cluster.fleet.nodes_started").inc(len(started))
        return manifest

    def stop(self) -> None:
        for node in list(self.nodes.values()):
            if node.alive:
                node.drain()
        for node in list(self.nodes.values()):
            node.engine.close()

    def __enter__(self) -> "Fleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def manifest(self) -> ClusterManifest:
        assert self.holder is not None, "fleet not started"
        return self.holder.current

    def node_at(self, address: str) -> ClusterNode:
        return self.nodes[address]

    def live_addresses(self) -> tuple[str, ...]:
        return tuple(
            sorted(a for a, n in self.nodes.items() if n.alive)
        )

    # -- fault & elasticity verbs --------------------------------------------

    def kill(self, address: str) -> None:
        """Crash one replica abruptly (chaos ``kill`` fault)."""
        node = self.nodes[address]
        node.crash()
        self.obs.counter("cluster.fleet.kills").inc()

    def restart(self, address: str, workdir=None) -> None:
        """Bring a crashed replica back, resynced from a healthy peer.

        A node that was down missed writes; serving its stale engine
        would hand out wrong answers.  Restart therefore resyncs from a
        live replica of the same shard *before* the socket reopens —
        incrementally when the peer's delta replays cleanly over the
        node's own state (served from the peer's mutation log or, past
        the deque, by WAL-shipping), with a full snapshot copy as the
        fallback (see :func:`repro.cluster.migrate.resync_replica`).
        With no live peer the engine is served as-is — nothing fresher
        exists anywhere.
        """
        import tempfile

        from .migrate import resync_replica

        node = self.nodes[address]
        if node.alive:
            raise ValueError(f"{address} is already serving")
        peer = self._live_peer(node.shard_id, exclude=address)
        if peer is not None:
            if workdir is None:
                with tempfile.TemporaryDirectory(
                    prefix="clare-resync-"
                ) as tmp:
                    resync_replica(peer, node, tmp)
            else:
                resync_replica(peer, node, workdir)
        node.start(self.holder)
        self.obs.counter("cluster.fleet.restarts").inc()

    def slow(self, address: str, delay_s: float) -> None:
        """Inject latency: every retrieval on this node sleeps first.

        The slowdown applies engine-side (inside the service's worker
        pool), so a slowed replica behaves exactly like an overloaded
        one: requests convoy, admission control starts refusing, and
        clients fail over to its siblings.
        """
        node = self.nodes[address]
        node.engine = _SlowEngine(node.engine, delay_s)
        if node.service is not None:
            node.service.engine = node.engine
        self.obs.counter("cluster.fleet.slowdowns").inc()

    def _live_peer(
        self, shard_id: int, exclude: str
    ) -> ClusterNode | None:
        for address in self.manifest.replicas_for(shard_id):
            node = self.nodes.get(address)
            if node is not None and node.alive and address != exclude:
                return node
        return None

    # -- node construction ---------------------------------------------------

    def _node_engine_opts(self, shard_id: int) -> dict:
        """Per-node engine kwargs; a unique durable store dir per node."""
        opts = dict(self._engine_opts)
        if self._durability_root is not None:
            with self._lock:
                serial = self._node_counter
                self._node_counter += 1
            opts["durability"] = DurabilityOptions(
                directory=(
                    self._durability_root / f"shard{shard_id}-node{serial}"
                ),
                **self._durability_opts,
            )
        return opts

    def _build_node(self, shard_id: int) -> ClusterNode:
        """A one-shard engine seeded with the shard's clause partition."""
        engine = ShardedRetrievalServer(
            1,
            policy=self.policy,
            scheme=self.scheme,
            obs=self.obs.labelled(node_shard=str(shard_id)),
            **self._node_engine_opts(shard_id),
        )
        if engine.recovered is None or engine.recovered.empty:
            for clause, module in self._partition[shard_id]:
                engine.add_clause(clause, module=module)
        return ClusterNode(
            shard_id=shard_id,
            engine=engine,
            service_opts=dict(self._service_opts),
        )

    def new_node(self, shard_id: int) -> ClusterNode:
        """An *empty* started node for a migration target; the caller
        loads a snapshot into it (``engine.adopt_kb``) before it is
        added to the manifest."""
        engine = ShardedRetrievalServer(
            1,
            policy=self.policy,
            scheme=self.scheme,
            obs=self.obs.labelled(node_shard=str(shard_id)),
            **self._node_engine_opts(shard_id),
        )
        node = ClusterNode(
            shard_id=shard_id,
            engine=engine,
            service_opts=dict(self._service_opts),
        )
        node.start(self.holder)
        self.nodes[node.address] = node
        return node


class _SlowEngine:
    """An engine proxy that sleeps before every retrieval (chaos fault)."""

    def __init__(self, engine, delay_s: float):
        self._engine = engine
        self.delay_s = delay_s

    def retrieve(self, goal, mode=None, timeout=None):
        time.sleep(self.delay_s)
        return self._engine.retrieve(goal, mode=mode, timeout=timeout)

    def retrieve_batch(self, goals, mode=None, timeout=None):
        time.sleep(self.delay_s)
        return self._engine.retrieve_batch(goals, mode=mode, timeout=timeout)

    def __getattr__(self, name):
        return getattr(self._engine, name)


class FleetClient:
    """Route goals and writes across the fleet, surviving churn.

    Reads: the goal's shard set comes from the shared placement router;
    each shard's candidates come from *one* healthy replica, chosen by a
    per-shard :class:`~repro.net.FailoverClient` (busy/dead replicas are
    skipped per-address, never punishing their siblings).

    Writes: applied to **every** active replica of the home shard,
    tagged with the manifest version.  ``STALE_MANIFEST`` answers
    trigger a manifest refresh and a re-route that skips replicas which
    already acknowledged (no double apply).  Replicas that fail to
    acknowledge are marked stale and excluded from reads until the
    coordinator resyncs them (:meth:`clear_stale`).

    Retracts are two-phase: the first replica unifies the template and
    reports the exact clause it removed; the remaining replicas replay
    that clause with ``retract_exact`` — replaying the *template*
    everywhere could remove different clauses on different replicas.
    """

    def __init__(
        self,
        manifest: ClusterManifest,
        router: ShardRouter,
        *,
        obs: Instrumentation | None = None,
        read_deadline_s: float | None = 5.0,
        write_deadline_s: float | None = 5.0,
        failover_opts: dict | None = None,
        sleep=time.sleep,
        discover: bool = False,
    ):
        from ..net.client import FailoverClient

        self.obs = obs if obs is not None else _default_obs()
        self.router = router
        #: cold-bootstrap mode (:meth:`connect`): the router starts empty,
        #: so a goal on a predicate it has never seen broadcasts to every
        #: shard and the answering shards are recorded for next time.
        self._discover = discover
        self.read_deadline_s = read_deadline_s
        self.write_deadline_s = write_deadline_s
        self._failover_opts = dict(failover_opts or {})
        self._failover_cls = FailoverClient
        self._manifest = manifest
        self._stale: set[str] = set()
        self._shard_clients: dict[int, FailoverClient] = {}
        #: single-address clients for write fan-out to replicas outside
        #: the read set (stale-marked); owned here so :meth:`close`
        #: closes them and :meth:`adopt_manifest` prunes retired ones.
        self._extra_clients: dict[str, FailoverClient] = {}
        #: shards whose reads currently fall back to stale replicas.
        self._degraded_shards: set[int] = set()
        #: injectable for tests; frozen-write retries back off with it.
        self._sleep = sleep
        self._write_tag = uuid.uuid4().hex[:12]
        self._write_seq = 0
        self._lock = threading.Lock()
        self._rebuild_clients()

    # -- cold bootstrap --------------------------------------------------------

    @classmethod
    def connect(cls, address: str, **kwargs) -> "FleetClient":
        """Bootstrap a client from any live replica address.

        Fetches the cluster manifest over the wire (``REQ_MANIFEST``) —
        no out-of-band manifest or shared router needed — and starts
        with an *empty* placement router in discovery mode: the first
        goal on each predicate broadcasts to every shard, shards that
        know the predicate are recorded, and subsequent goals route
        normally.  ``kwargs`` pass through to the constructor.
        """
        from ..net.client import RetrievalClient

        host, _, port_text = address.rpartition(":")
        probe = RetrievalClient(host, int(port_text))
        try:
            manifest = probe.manifest()
        finally:
            probe.close()
        router = ShardRouter(manifest.num_shards, manifest.policy)
        kwargs.setdefault("discover", True)
        return cls(manifest, router, **kwargs)

    # -- manifest plumbing ----------------------------------------------------

    @property
    def manifest(self) -> ClusterManifest:
        return self._manifest

    def adopt_manifest(self, manifest: ClusterManifest) -> None:
        """Switch to a newer manifest; stale marks survive only for
        addresses the new placement still lists."""
        with self._lock:
            self._manifest = manifest
            listed = set(manifest.addresses())
            self._stale &= listed
            retired = [
                self._extra_clients.pop(address)
                for address in list(self._extra_clients)
                if address not in listed
            ]
        for client in retired:
            client.close()
        self._rebuild_clients()

    def refresh_manifest(self) -> ClusterManifest:
        """Fetch the current manifest from whichever replica answers."""
        last_exc: Exception | None = None
        for client in list(self._shard_clients.values()):
            try:
                fresh = client.manifest()
            except Exception as exc:  # every replica of this shard down
                last_exc = exc
                continue
            if fresh.version > self._manifest.version:
                self.adopt_manifest(fresh)
                self.obs.counter("cluster.fleet.manifest_refreshes").inc()
            return self._manifest
        raise last_exc if last_exc is not None else RuntimeError(
            "no replicas to fetch a manifest from"
        )

    def mark_stale(self, address: str) -> None:
        """Exclude a replica from reads (it missed an acknowledged write)."""
        with self._lock:
            self._stale.add(address)
        self._rebuild_clients()

    def clear_stale(self, address: str) -> None:
        """Readmit a replica the coordinator has resynced."""
        with self._lock:
            self._stale.discard(address)
        self._rebuild_clients()

    @property
    def stale_addresses(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._stale)

    def _readable_replicas(self, shard_id: int) -> list[str]:
        replicas = self._manifest.replicas_for(shard_id)
        readable = [a for a in replicas if a not in self._stale]
        # With every replica stale there is nothing consistent to
        # prefer; degrade to the full set rather than failing reads.
        return readable if readable else list(replicas)

    def _rebuild_clients(self) -> None:
        with self._lock:
            manifest = self._manifest
            existing = self._shard_clients
            fresh: dict[int, object] = {}
            degraded: set[int] = set()
            for shard_id in range(manifest.num_shards):
                replicas = self._readable_replicas(shard_id)
                if not replicas:
                    continue
                if all(a in self._stale for a in replicas):
                    degraded.add(shard_id)
                client = existing.pop(shard_id, None)
                if client is None:
                    client = self._failover_cls(
                        replicas, obs=self.obs, **self._failover_opts
                    )
                else:
                    client.set_addresses(replicas)
                fresh[shard_id] = client
            leftovers = list(existing.values())
            self._shard_clients = fresh
            self._degraded_shards = degraded
        for client in leftovers:
            client.close()

    def close(self) -> None:
        with self._lock:
            clients, self._shard_clients = dict(self._shard_clients), {}
            extras, self._extra_clients = dict(self._extra_clients), {}
        for client in clients.values():
            client.close()
        for client in extras.values():
            client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads ----------------------------------------------------------------

    def retrieve(
        self,
        goal: Term,
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> RetrievalResult:
        """Candidates for ``goal`` merged across its shards' replicas."""
        deadline_s = (
            deadline_s if deadline_s is not None else self.read_deadline_s
        )
        try:
            targets = self._route(goal, mode)
        except UnknownPredicateError:
            if not self._discover:
                raise
            return self._discover_retrieve(goal, mode, deadline_s)
        degraded = bool(self._degraded_shards.intersection(targets))
        shard_results: dict[int, RetrievalResult] = {}
        for shard_id in targets:
            client = self._shard_clients.get(shard_id)
            if client is None:
                raise UnknownPredicateError(
                    f"shard {shard_id} has no replicas in the manifest"
                )
            shard_results[shard_id] = client.retrieve(
                goal, mode=mode, deadline_s=deadline_s
            )
        self.obs.counter("cluster.fleet.reads").inc()
        result = self._merge(goal, shard_results)
        if degraded:
            # Some queried shard had every replica stale-marked: the
            # answer may be missing acknowledged writes.  Availability
            # over consistency, but never silently.
            result.stats.degraded = True
            self.obs.counter("cluster.fleet.degraded_reads").inc()
        return result

    def _discover_retrieve(
        self,
        goal: Term,
        mode: SearchMode | None,
        deadline_s: float | None,
    ) -> RetrievalResult:
        """Cold-start read: probe every shard, record who answered.

        A shard whose engine has never stored the predicate answers
        ``UNKNOWN_PREDICATE`` and contributes nothing; shards that know
        it (even with zero candidates) are observed into the router —
        conservatively, as broadcast targets (sound: the filter stages
        reject non-unifying clauses).  Raises only when *every* shard is
        ignorant, matching the warm router's contract.
        """
        indicator = functor_indicator(goal)
        shard_results: dict[int, RetrievalResult] = {}
        found = False
        for shard_id in range(self._manifest.num_shards):
            client = self._shard_clients.get(shard_id)
            if client is None:
                continue
            try:
                result = client.retrieve(goal, mode=mode, deadline_s=deadline_s)
            except UnknownPredicateError:
                continue
            found = True
            self.router.observe_indicator(indicator, shard_id)
            shard_results[shard_id] = result
        if not found:
            name, arity = indicator
            raise UnknownPredicateError(f"unknown predicate {name}/{arity}")
        self.obs.counter("cluster.fleet.discoveries").inc()
        self.obs.counter("cluster.fleet.reads").inc()
        return self._merge(goal, shard_results)

    def _route(
        self, goal: Term, mode: SearchMode | None
    ) -> tuple[int, ...]:
        # Mirrors ShardedRetrievalServer._route_and_plan: a raw FS1
        # scan's false drops are not confined to the key shard.
        if mode is SearchMode.FS1_ONLY:
            return self.router.route_goal(goal, prune=False)
        return self.router.route_goal(goal)

    def _merge(
        self, goal: Term, shard_results: dict[int, RetrievalResult]
    ) -> RetrievalResult:
        candidates: list[Clause] = []
        per_shard: dict[int, RetrievalStats] = {}
        mode = SearchMode.SOFTWARE
        residencies: set[str] = set()
        for shard_id in sorted(shard_results):
            result = shard_results[shard_id]
            candidates.extend(result.candidates)
            stats = result.stats
            if stats is None:
                continue
            mode = stats.mode
            residencies.add(stats.residency)
            if isinstance(stats, MergedRetrievalStats) and stats.per_shard:
                # A node is a one-shard cluster; unwrap its inner stats
                # so the fleet's per_shard is keyed by *cluster* shard.
                per_shard[shard_id] = next(iter(stats.per_shard.values()))
            elif not isinstance(stats, MergedRetrievalStats):
                per_shard[shard_id] = stats
        merged = MergedRetrievalStats(
            mode=mode,
            residency=(
                residencies.pop() if len(residencies) == 1
                else "mixed" if residencies else "memory"
            ),
            shards_queried=len(shard_results),
            broadcast=len(shard_results) > 1,
            per_shard=per_shard,
        )
        for stats in per_shard.values():
            merged.clauses_total += stats.clauses_total
            merged.final_candidates += stats.final_candidates
            merged.fs2_search_calls += stats.fs2_search_calls
            merged.bytes_from_disk += stats.bytes_from_disk
            merged.disk_time_s += stats.disk_time_s
            merged.fs1_time_s += stats.fs1_time_s
            merged.fs2_time_s += stats.fs2_time_s
            merged.software_time_s += stats.software_time_s
            if stats.fs1_candidates is not None:
                merged.fs1_candidates = (
                    merged.fs1_candidates or 0
                ) + stats.fs1_candidates
        return RetrievalResult(goal=goal, candidates=candidates, stats=merged)

    # -- writes ----------------------------------------------------------------

    def assertz(
        self, clause_or_term: Clause | Term, module: str = "user"
    ) -> None:
        clause = _as_clause(clause_or_term)
        shard_id = self.router.route_clause(clause.head)
        self._replicated_write("assertz", clause, module, shard_id)

    def asserta(
        self, clause_or_term: Clause | Term, module: str = "user"
    ) -> None:
        clause = _as_clause(clause_or_term)
        shard_id = self.router.route_clause(clause.head)
        self._replicated_write("asserta", clause, module, shard_id)

    def retract(self, clause_or_term: Clause | Term) -> Clause | None:
        """Two-phase replicated retract; returns the clause removed."""
        template = _as_clause(clause_or_term)
        try:
            targets = self.router.route_goal(template.head)
        except UnknownPredicateError:
            if not self._discover:
                return None
            # Cold client: the predicate may exist server-side even
            # though this router has never seen it — discover first.
            try:
                self._discover_retrieve(
                    template.head, None, self.read_deadline_s
                )
                targets = self.router.route_goal(template.head)
            except UnknownPredicateError:
                return None
        for shard_id in targets:
            removed = self._replicated_retract(template, shard_id)
            if removed is not None:
                return removed
        return None

    def _new_write_id(self) -> str:
        """One idempotency stamp per *logical* write.

        Reused verbatim across stale-manifest re-routes, replica
        fan-out, and both retract phases, so any node that sees the
        same write twice — directly and via a migration delta replay —
        applies it once (see ``ShardedRetrievalServer._applied_before``).
        """
        with self._lock:
            self._write_seq += 1
            return f"{self._write_tag}:{self._write_seq}"

    def _replicated_retract(
        self, template: Clause, shard_id: int
    ) -> Clause | None:
        """Phase 1: one replica picks the victim; phase 2: the rest
        replay it exactly."""
        from ..net.protocol import StaleManifest

        write_id = self._new_write_id()
        frozen_wait = 0.01
        for _ in range(_WRITE_ROUNDS):
            version = self._manifest.version
            replicas = self._readable_replicas(shard_id)
            removed: Clause | None = None
            chooser: str | None = None
            retry_round = False
            for address in replicas:
                try:
                    _, applied, removed = self._address_client(
                        shard_id, address
                    ).mutate(
                        "retract", template,
                        manifest_version=version,
                        deadline_s=self.write_deadline_s,
                        write_id=write_id,
                    )
                except StaleManifest:
                    self.refresh_manifest()
                    retry_round = True
                    break
                except WritesFrozen:
                    frozen_wait = self._frozen_backoff(frozen_wait)
                    retry_round = True
                    break
                except Exception:
                    self.mark_stale(address)
                    continue
                chooser = address
                break
            else:
                # No replica could even attempt the retract.
                raise FleetWriteError(
                    f"no replica of shard {shard_id} acknowledged the "
                    "retract"
                )
            if retry_round or chooser is None:
                continue  # stale/frozen: re-route under the fresh placement
            if removed is None:
                return None  # nothing matched; replicas agree vacuously
            self._fan_out(
                "retract_exact", removed, "user", shard_id,
                version, acked={chooser}, write_id=write_id,
            )
            return removed
        raise FleetWriteError("manifest kept moving during a retract")

    def _replicated_write(
        self, op: str, clause: Clause, module: str, shard_id: int
    ) -> None:
        self._fan_out(
            op, clause, module, shard_id, None, acked=set(),
            write_id=self._new_write_id(),
        )

    def _frozen_backoff(self, wait_s: float) -> float:
        """A migration is finalising: nothing was applied on the frozen
        replica, so wait briefly for the flip, pick up whatever manifest
        is current, and re-route.  Returns the next (escalated) wait."""
        self.obs.counter("cluster.fleet.write_frozen_retries").inc()
        self._sleep(wait_s)
        try:
            self.refresh_manifest()
        except Exception:
            pass  # next round retries under the manifest we have
        return min(wait_s * 2.0, 0.25)

    def _fan_out(
        self,
        op: str,
        clause: Clause,
        module: str,
        shard_id: int,
        version: int | None,
        acked: set[str],
        write_id: str = "",
    ) -> None:
        """Apply one mutation to every active replica of a shard.

        ``acked`` carries addresses that already applied it (survives
        stale-manifest re-routes, preventing double application across
        rounds; ``write_id`` prevents it across *placements*).
        Raises :class:`FleetWriteError` if nothing acknowledged.
        """
        from ..net.protocol import StaleManifest

        refused: set[str] = set()
        ambiguous = False
        frozen_wait = 0.01
        for _ in range(_WRITE_ROUNDS):
            round_version = (
                version if version is not None else self._manifest.version
            )
            replicas = [
                a for a in self._manifest.replicas_for(shard_id)
                if a not in acked
            ]
            stale_hit = frozen_hit = False
            for address in replicas:
                try:
                    self._address_client(shard_id, address).mutate(
                        op, clause, module,
                        manifest_version=round_version,
                        deadline_s=self.write_deadline_s,
                        write_id=write_id,
                    )
                except StaleManifest:
                    stale_hit = True
                    break
                except WritesFrozen:
                    # Refused provably before any state change; keep
                    # probing siblings, then wait out the freeze.
                    frozen_hit = True
                    refused.add(address)
                    continue
                except Exception:
                    ambiguous = True  # fate unknown: may have applied
                    self.obs.counter("cluster.fleet.write_failures").inc()
                    continue
                acked.add(address)
                refused.discard(address)
            if stale_hit:
                self.refresh_manifest()
                version = None  # re-read the fresh version next round
                continue
            if frozen_hit:
                frozen_wait = self._frozen_backoff(frozen_wait)
                version = None
                continue
            break
        # Anything still listed for this shard that did not acknowledge
        # may be missing the write (even a fully failed fan-out can have
        # applied somewhere if a connection died after the send): stale
        # until the coordinator resyncs it.  (Dead nodes land here too —
        # harmless, their reads fail anyway, and restart clears the mark.)
        # Exception: when *nothing* acked and every failure was a frozen
        # refusal, the write provably landed nowhere — there is no
        # acknowledged write for the refusers to be missing.
        for address in self._manifest.replicas_for(shard_id):
            if address in acked:
                continue
            if not acked and not ambiguous and address in refused:
                continue
            self.mark_stale(address)
        if not acked:
            raise FleetWriteError(
                f"no replica of shard {shard_id} acknowledged the {op}"
            )
        self.obs.counter("cluster.fleet.writes", op=op).inc()

    def _address_client(self, shard_id: int, address: str):
        """A pooled single-address client for write fan-out."""
        client = self._shard_clients.get(shard_id)
        if client is not None:
            try:
                return client.client_for(address)
            except KeyError:
                pass
        # The address is excluded from the read set (stale) or the
        # shard has no failover client; open a pooled client via a
        # one-address failover wrapper owned by this instance (closed
        # on close(), pruned when a manifest retires the address).
        with self._lock:
            if address not in self._extra_clients:
                self._extra_clients[address] = self._failover_cls(
                    [address], obs=self.obs, **self._failover_opts
                )
            return self._extra_clients[address].client_for(address)
