"""A sharded, concurrent front-end over N independent CLARE engines.

The paper's CLARE is one two-stage filter (FS1 SCW index scan, FS2
partial test unification) in front of one disk.  Production traffic
wants many retrievals in flight against many devices at once, so the
:class:`ShardedRetrievalServer` partitions the knowledge base across N
complete engine instances — each shard owns its clause files, SCW+MB
index, FS2 engine and disk model — and presents the *same*
``retrieve``/``solutions`` contract as the single-engine
:class:`~repro.crs.ClauseRetrievalServer`.

Concurrency model: the simulated hardware is stateful (one Result
Memory, one query register per device), so each shard is guarded by its
own lock; different shards run genuinely in parallel, one retrieval at a
time per shard.  Timing model: parallel disks — a broadcast retrieval's
wall clock is the *maximum* over the queried shards' filter times, not
their sum; the per-shard breakdown is preserved in
:class:`MergedRetrievalStats` for the report layer.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Iterable

from ..crs import (
    HostCostModel,
    RetrievalResult,
    RetrievalStats,
    RetrievalTimeout,
    SearchMode,
)
from ..crs.keys import canonical_goal_key
from ..crs.server import ClauseRetrievalServer
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..scw import CodewordScheme, DEFAULT_SCHEME
from ..storage import KnowledgeBase, Residency, UnknownPredicateError
from ..storage.wal import (
    DurabilityOptions,
    DurableStore,
    RecoveredState,
    WalError,
    WalRecord,
)
from ..terms import (
    Clause,
    Term,
    clause_from_term,
    functor_indicator,
    read_program,
    rename_apart,
)
from ..unify import Bindings, unify
from .routing import ShardingPolicy, ShardRouter

__all__ = [
    "ClusterShard",
    "MergedRetrievalStats",
    "MutationLogOverflow",
    "MutationRecord",
    "ShardedRetrievalServer",
    "WritesFrozen",
]


class MutationLogOverflow(RuntimeError):
    """The requested delta fell off the capped mutation log.

    A catch-up reader that asks for "everything since seq N" after the
    log has evicted N+1 cannot be given a correct delta; it must take a
    fresh snapshot instead of a silently incomplete replay.
    """


class WritesFrozen(RuntimeError):
    """Mutations are temporarily refused (a migration is finalising).

    Raised *before* any state changes, so a caller that sees it knows
    the write was not applied and may simply retry; the fleet client
    backs off briefly and re-routes under the post-flip manifest.
    """


@dataclass(frozen=True)
class MutationRecord:
    """One logged KB mutation, replayable on a replica.

    ``op`` is one of ``assertz``/``asserta``/``retract``/``reload``.
    For the first three, ``clause`` is the exact clause added or removed
    (for retract: the clause the *primary* removed, not the unification
    template — replaying the template could remove a different clause on
    the replica).  ``reload`` marks a wholesale KB replacement
    (:meth:`ShardedRetrievalServer.adopt_kb`); it cannot be replayed
    incrementally and forces delta readers back to a snapshot.

    ``write_id`` is the client's idempotency stamp for the logical write
    (``None`` for coordinator-originated mutations).  Replaying a record
    onto a replica that already applied that id — because the client
    re-routed the same write there after a manifest flip — is a no-op
    instead of a duplicate.
    """

    seq: int
    op: str
    clause: Clause | None = None
    module: str = "user"
    write_id: str | None = None


@dataclass
class MergedRetrievalStats(RetrievalStats):
    """Cluster-level accounting for one goal across its queried shards.

    The count fields (``clauses_total``, ``fs1_candidates``,
    ``final_candidates``, ``fs2_search_calls``, ``bytes_from_disk``) and
    the time fields are *sums* over shards — total device work.  The
    wall clock, :attr:`filter_time_s`, is the max over shards instead:
    the shards' disks and filter pipelines run in parallel.
    """

    shards_queried: int = 0
    broadcast: bool = False
    per_shard: dict[int, RetrievalStats] = field(default_factory=dict)
    #: set by the fleet client when some queried shard had every replica
    #: stale-marked and the read was knowingly served from replicas that
    #: may be missing acknowledged writes.  Client-local only — it never
    #: crosses the wire (each node reports its own stats unflagged).
    degraded: bool = False

    @property
    def filter_time_s(self) -> float:  # type: ignore[override]
        """Modelled wall clock: the slowest queried shard's filter time."""
        if not self.per_shard:
            return 0.0
        return max(s.filter_time_s for s in self.per_shard.values())

    @property
    def serial_filter_time_s(self) -> float:
        """What the same retrieval would cost on one device at a time."""
        return sum(s.filter_time_s for s in self.per_shard.values())


@dataclass
class ClusterShard:
    """One engine instance: its KB, its CRS, and its serialising lock."""

    shard_id: int
    kb: KnowledgeBase
    server: ClauseRetrievalServer
    lock: threading.Lock = field(default_factory=threading.Lock)


class ShardedRetrievalServer:
    """N CLARE engines behind one single-engine-compatible front door."""

    def __init__(
        self,
        num_shards: int,
        policy: ShardingPolicy | str = ShardingPolicy.PREDICATE,
        scheme: CodewordScheme = DEFAULT_SCHEME,
        cost_model: HostCostModel | None = None,
        cross_binding: bool = True,
        cache_size: int = 0,
        obs: Instrumentation | None = None,
        fs1_mode: str = "bitsliced",
        fs2_mode: str = "compiled",
        mutation_log_size: int = 4096,
        durability: DurabilityOptions | str | None = None,
    ):
        self.obs = obs if obs is not None else _default_obs()
        self._fs1_mode = fs1_mode
        self._fs2_mode = fs2_mode
        self._cost_model = cost_model
        self._cross_binding = cross_binding
        self.router = ShardRouter(num_shards, policy)
        self.shards: list[ClusterShard] = []
        for shard_id in range(num_shards):
            # Every existing counter/histogram/span the shard's engine
            # emits is stamped with its shard label; family totals still
            # aggregate across the whole cluster.
            shard_obs = self.obs.labelled(shard=str(shard_id))
            kb = KnowledgeBase(scheme=scheme, obs=shard_obs)
            server = ClauseRetrievalServer(
                kb,
                cost_model=cost_model,
                cross_binding=cross_binding,
                cache_size=0,  # caching happens once, at the cluster level
                obs=shard_obs,
                fs1_mode=fs1_mode,
                fs2_mode=fs2_mode,
            )
            self.shards.append(ClusterShard(shard_id, kb, server))
        #: bumped on every mutation through this front-end; the cluster
        #: cache keys on it exactly as the single server keys on
        #: ``KnowledgeBase.version``.
        self.version = 0
        #: the last ``mutation_log_size`` mutations, seq-stamped with the
        #: version they produced — the catch-up transport for migration
        #: and replica resync (see :meth:`mutations_since`).
        self._mutation_log: deque[MutationRecord] = deque(
            maxlen=mutation_log_size
        )
        #: idempotency memo: write_id -> clause removed (retracts) or
        #: ``None``, for the ids most recently applied.  Bounded like
        #: the mutation log — a duplicate can only arrive within one
        #: catch-up/re-route window, which the log cap already limits.
        self._applied_writes: "OrderedDict[str, Clause | None]" = OrderedDict()
        self._applied_writes_cap = mutation_log_size
        #: when set, mutations are refused with :class:`WritesFrozen`
        #: before touching any state (see :meth:`freeze_writes`).
        self.writes_frozen = False
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, RetrievalResult]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_version = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: write-ahead durability (``repro.storage.wal``).  ``None`` keeps
        #: the historical in-memory behaviour.  When set, every acked
        #: mutation is staged in the WAL under the same lock that assigns
        #: its seq and group-committed after the shard lock is released;
        #: :meth:`mutations_since` falls back to the durable log when the
        #: in-memory deque has evicted the requested range.
        self._durable: DurableStore | None = None
        #: what recovery found on disk (``None`` without durability) —
        #: callers use :attr:`recovered` to decide whether to re-consult
        #: source programs after a restart.
        self.recovered: RecoveredState | None = None
        self._replaying = False
        self._compact_stop = threading.Event()
        self._compact_thread: threading.Thread | None = None
        self._compact_serial = threading.Lock()
        self._closed = False
        if durability is not None:
            options = DurabilityOptions.coerce(durability)
            self._durable = DurableStore(
                options,
                obs=self.obs,
                meta={
                    "num_shards": num_shards,
                    "policy": self.router.policy.value,
                },
            )
            self._recover()
            if options.auto_compact:
                self._compact_thread = threading.Thread(
                    target=self._compact_loop,
                    name="repro-wal-compact",
                    daemon=True,
                )
                self._compact_thread.start()

    # -- cluster shape -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def policy(self) -> ShardingPolicy:
        return self.router.policy

    def clause_count(self) -> int:
        return sum(shard.kb.clause_count() for shard in self.shards)

    def size_bytes(self) -> int:
        return sum(shard.kb.size_bytes() for shard in self.shards)

    def shard_clause_counts(self) -> dict[int, int]:
        """Clauses per shard — the partitioning balance at a glance."""
        return {s.shard_id: s.kb.clause_count() for s in self.shards}

    # -- loading and updating clauses ---------------------------------------

    def consult_text(self, text: str, module: str = "user") -> int:
        """Load ``.``-terminated clauses, routing each to its home shard."""
        count = 0
        for term in read_program(text):
            self.add_clause(clause_from_term(term), module=module)
            count += 1
        return count

    def consult_clauses(
        self, clauses: Iterable[Clause], module: str = "user"
    ) -> int:
        count = 0
        for clause in clauses:
            self.add_clause(clause, module=module)
            count += 1
        return count

    def add_clause(
        self,
        clause: Clause,
        module: str = "user",
        write_id: str | None = None,
    ) -> int:
        """Append a clause on its home shard; returns the shard id.

        Mutations hold the shard lock: ``retract_matching`` swaps in a
        rebuilt clause file after snapshotting the old one, so an
        unlocked concurrent append would land on the file being
        replaced and vanish with it (a lost update).
        """
        shard_id = self.router.route_clause(clause.head)
        shard = self.shards[shard_id]
        # The version bump (and its mutation-log append) happens while
        # the shard lock is still held: a snapshot taken under that lock
        # then sees KB state and log cut at exactly the same seq, so a
        # snapshot + delta replay neither misses nor doubles a mutation.
        with shard.lock:
            if write_id is not None and self._applied_before(write_id)[0]:
                return shard_id  # duplicate delivery: already applied
            self._check_frozen()
            shard.kb.add_clause(clause, module=module)
            seq = self._bump_version(
                op="assertz", clause=clause, module=module, write_id=write_id
            )
            self._on_shard_mutation(shard, "assertz", clause, module)
        self._wal_commit(seq)
        self.obs.counter("cluster.clauses_routed", shard=str(shard_id)).inc()
        return shard_id

    def assertz(
        self,
        clause_or_term: Clause | Term,
        module: str = "user",
        write_id: str | None = None,
    ) -> None:
        self.add_clause(
            _as_clause(clause_or_term), module=module, write_id=write_id
        )

    def asserta(
        self,
        clause_or_term: Clause | Term,
        module: str = "user",
        write_id: str | None = None,
    ) -> None:
        """Prepend within the clause's home shard.

        Cross-shard clause order is not defined by the cluster (the
        candidate *set* is what the contract guarantees); within a shard
        the usual Prolog ordering semantics hold.
        """
        clause = _as_clause(clause_or_term)
        shard_id = self.router.route_clause(clause.head)
        shard = self.shards[shard_id]
        with shard.lock:
            if write_id is not None and self._applied_before(write_id)[0]:
                return
            self._check_frozen()
            shard.kb.asserta(clause, module=module)
            seq = self._bump_version(
                op="asserta", clause=clause, module=module, write_id=write_id
            )
            self._on_shard_mutation(shard, "asserta", clause, module)
        self._wal_commit(seq)

    def retract(self, clause_or_term: Clause | Term) -> bool:
        """Remove the first matching clause, probing shards in id order."""
        return self.retract_matching(clause_or_term) is not None

    def retract_matching(
        self,
        clause_or_term: Clause | Term,
        write_id: str | None = None,
    ) -> Clause | None:
        """Like :meth:`retract` but returns the clause actually removed.

        The resolution engines need the removed clause to bind a
        ``retract/1`` template against; version bumping here is what
        keeps the cluster cache (and every retriever layered on it) from
        serving the retracted clause to later choice points.
        """
        template = _as_clause(clause_or_term)
        try:
            targets = self.router.route_goal(template.head)
        except UnknownPredicateError:
            return None
        for shard_id in targets:
            shard = self.shards[shard_id]
            with shard.lock:
                if write_id is not None:
                    hit, memo = self._applied_before(write_id)
                    if hit:
                        # Duplicate delivery: report the clause the
                        # first application removed, not a second one.
                        return memo
                self._check_frozen()
                removed = shard.kb.retract_matching(template)
                if removed is not None:
                    seq = self._bump_version(
                        op="retract", clause=removed, write_id=write_id
                    )
                    # Forward the clause actually removed, not the
                    # template: replaying the template on the worker
                    # could remove a different (more general) clause.
                    self._on_shard_mutation(shard, "remove_exact", removed)
            if removed is not None:
                self._wal_commit(seq)
                return removed
        return None

    def pin_module(self, name: str, residency: str) -> None:
        """Pin one module's residency on every shard (e.g. to disk)."""
        for shard in self.shards:
            shard.kb.module(name).pin(residency)
        if residency == Residency.DISK:
            for shard in self.shards:
                shard.kb.sync_to_disk()
        self._on_pin_module(name, residency)

    def _on_pin_module(self, name: str, residency: str) -> None:
        """Hook: a residency pin was applied to every shard.

        Process-backed subclasses forward the pin so worker engines
        plan and account disk residency identically to the parent.
        """

    def sync_to_disk(self) -> dict[int, list[str]]:
        """Write each shard's disk-resident extents; extents per shard."""
        return {s.shard_id: s.kb.sync_to_disk() for s in self.shards}

    def _bump_version(
        self,
        op: str = "reload",
        clause: Clause | None = None,
        module: str = "user",
        write_id: str | None = None,
    ) -> int:
        with self._cache_lock:
            self.version += 1
            self._mutation_log.append(
                MutationRecord(
                    seq=self.version, op=op, clause=clause, module=module,
                    write_id=write_id,
                )
            )
            if write_id is not None:
                self._applied_writes[write_id] = (
                    clause if op == "retract" else None
                )
                self._applied_writes.move_to_end(write_id)
                while len(self._applied_writes) > self._applied_writes_cap:
                    self._applied_writes.popitem(last=False)
            # Stage the WAL record under the same lock that assigned its
            # seq: log order is exactly seq order by construction.  The
            # fsync happens later, in _wal_commit, after the caller drops
            # the shard lock.  ``reload`` is not staged — the adopted KB
            # exists only in memory, so adopt_kb snapshots it instead.
            if (
                self._durable is not None
                and not self._replaying
                and op != "reload"
                and clause is not None
            ):
                self._durable.stage(
                    WalRecord(
                        seq=self.version,
                        op=op,
                        clause=clause,
                        module=module,
                        write_id=write_id,
                    )
                )
            return self.version

    def _wal_commit(self, seq: int) -> None:
        """Block until WAL record ``seq`` is durable (volatile: no-op).

        Called *after* the shard lock is released, so concurrent writers
        ride one group commit instead of serialising an fsync each under
        the lock.  During recovery replay the records are already on
        disk and the wait is skipped.
        """
        if self._durable is not None and not self._replaying:
            self._durable.wait_durable(seq)

    def _applied_before(self, write_id: str) -> tuple[bool, Clause | None]:
        """(seen, memoised removed clause) for one idempotency stamp.

        Callers hold the shard lock, so check-then-apply is atomic
        against a concurrent delivery of the same id (e.g. a client
        re-route racing the migration coordinator's delta replay).
        """
        with self._cache_lock:
            if write_id in self._applied_writes:
                return True, self._applied_writes[write_id]
        return False, None

    def _check_frozen(self) -> None:
        if self.writes_frozen:
            raise WritesFrozen(
                "writes are frozen while a migration finalises; retry"
            )

    def freeze_writes(self) -> None:
        """Refuse mutations until :meth:`thaw_writes` (migration finale).

        The flag is checked *inside* the shard lock, so acquiring every
        shard lock once after setting it is a quiescence barrier: any
        mutation admitted before the freeze has finished and logged by
        the time this returns, and none can start after — a delta read
        next is provably the last.
        """
        self.writes_frozen = True
        for shard in self.shards:
            with shard.lock:
                pass

    def thaw_writes(self) -> None:
        self.writes_frozen = False

    def applied_write_ids(self) -> list[str]:
        """The memoised idempotency stamps, oldest first (for snapshots)."""
        with self._cache_lock:
            return list(self._applied_writes)

    def adopt_write_ids(self, write_ids: Iterable[str]) -> None:
        """Install a snapshot's write-id memo (after :meth:`adopt_kb`).

        Without this, a write inside the snapshot that the client also
        re-routes here after a manifest flip would apply twice — the
        memo travels with the content it describes.  Retract memo values
        are not persisted; a duplicate retract after a restore reports
        "nothing matched" rather than removing a second clause.
        """
        with self._cache_lock:
            self._applied_writes.clear()
            for write_id in write_ids:
                self._applied_writes[write_id] = None
            while len(self._applied_writes) > self._applied_writes_cap:
                self._applied_writes.popitem(last=False)

    # -- replication: deltas, exact replay, wholesale adoption ---------------

    def mutations_since(self, seq: int) -> list[MutationRecord]:
        """Every mutation after ``seq``, in order, or raise on a gap.

        ``seq`` is a value previously read from :attr:`version` (e.g. at
        snapshot time).  Raises :class:`MutationLogOverflow` when the
        capped log has already evicted records the caller would need —
        unless the engine is durable, in which case the delta is served
        from the write-ahead log itself (WAL-shipping): every acked
        mutation since the last compaction is on disk, so catch-up no
        longer degrades to a fresh snapshot just because the in-memory
        deque wrapped.  A seq older than the last compaction still
        overflows (the records were folded into the snapshot).
        """
        with self._cache_lock:
            if seq > self.version:
                raise MutationLogOverflow(
                    f"seq {seq} is ahead of version {self.version}"
                )
            if seq == self.version:
                return []
            records = [r for r in self._mutation_log if r.seq > seq]
            if records and records[0].seq == seq + 1:
                return records
            log_start = records[0].seq if records else self.version + 1
        shipped = self._wal_mutations_since(seq)
        if shipped is not None:
            return shipped
        raise MutationLogOverflow(
            f"mutations after seq {seq} have been evicted "
            f"(log starts at {log_start})"
        )

    def _wal_mutations_since(self, seq: int) -> list[MutationRecord] | None:
        """Read a catch-up delta from the durable log (WAL-shipping).

        Returns ``None`` when the WAL cannot serve a contiguous delta —
        no durable store, ``seq`` predates the retained segments, or a
        ``reload`` punched a hole in the sequence — and the caller falls
        back to :class:`MutationLogOverflow` / snapshot semantics.
        """
        if self._durable is None:
            return None
        try:
            records = self._durable.records_since(seq)
        except WalError:
            return None
        out = [
            MutationRecord(
                seq=r.seq, op=r.op, clause=r.clause, module=r.module,
                write_id=r.write_id,
            )
            for r in records
        ]
        if not out or out[0].seq != seq + 1:
            return None
        for prev, nxt in zip(out, out[1:]):
            if nxt.seq != prev.seq + 1:
                return None
        self.obs.counter("wal.shipped_records").inc(len(out))
        return out

    def apply_mutation(self, record: MutationRecord) -> None:
        """Replay one logged mutation from another node onto this one.

        The record's ``write_id`` rides along, so a replay of a write
        this node already applied directly (the client re-routed it here
        after a manifest flip) dedupes instead of doubling the clause.
        """
        if record.op == "assertz":
            assert record.clause is not None
            self.add_clause(
                record.clause, module=record.module, write_id=record.write_id
            )
        elif record.op == "asserta":
            assert record.clause is not None
            self.asserta(
                record.clause, module=record.module, write_id=record.write_id
            )
        elif record.op == "retract":
            assert record.clause is not None
            self.remove_exact(record.clause, write_id=record.write_id)
        else:
            raise MutationLogOverflow(
                f"mutation op {record.op!r} is not incrementally "
                "replayable; take a fresh snapshot"
            )

    def remove_exact(
        self, clause: Clause, write_id: str | None = None
    ) -> bool:
        """Remove the first structurally identical clause (replica replay)."""
        try:
            targets = self.router.route_goal(clause.head)
        except UnknownPredicateError:
            return False
        for shard_id in targets:
            shard = self.shards[shard_id]
            with shard.lock:
                if write_id is not None and self._applied_before(write_id)[0]:
                    return True
                self._check_frozen()
                removed = shard.kb.remove_exact(clause)
                if removed:
                    seq = self._bump_version(
                        op="retract", clause=clause, write_id=write_id
                    )
                    self._on_shard_mutation(shard, "remove_exact", clause)
            if removed:
                self._wal_commit(seq)
                return True
        return False

    def adopt_kb(self, kb: KnowledgeBase) -> None:
        """Replace a single-shard node's knowledge base (snapshot restore).

        Builds a fresh engine over ``kb``, registers every clause's
        placement with the router, and swaps both in under the shard
        lock.  Logged as a ``reload`` — readers of the mutation log
        cannot replay across an adoption and must re-snapshot.  Only
        single-shard servers (cluster *nodes*) adopt: on a multi-shard
        server the clauses' hash placement need not be the adopted
        shard, and the router would record a lie.
        """
        if self.num_shards != 1:
            raise ValueError("adopt_kb is for single-shard nodes only")
        shard = self.shards[0]
        shard_obs = self.obs.labelled(shard="0")
        kb.disk.obs = shard_obs
        server = ClauseRetrievalServer(
            kb,
            cost_model=self._cost_model,
            cross_binding=self._cross_binding,
            cache_size=0,
            obs=shard_obs,
            fs1_mode=self._fs1_mode,
            fs2_mode=self._fs2_mode,
        )
        for store in kb:
            for clause in store.clauses():
                self.router.route_clause(clause.head)
        if self._durable is not None:
            # Same order as compact(): the serialiser before the shard
            # lock, so an in-flight background compaction (which holds
            # the serialiser while waiting for shard locks) cannot
            # deadlock against the adoption.
            self._compact_serial.acquire()
        try:
            with shard.lock:
                shard.kb = kb
                shard.server = server
                # The memo describes content this engine no longer holds;
                # the restorer installs the snapshot's own ids afterwards
                # (:meth:`adopt_write_ids`).
                with self._cache_lock:
                    self._applied_writes.clear()
                self._bump_version(op="reload")
                self._on_shard_mutation(shard, "reload", None)
                if self._durable is not None:
                    # A reload is not WAL-encodable (the adopted KB exists
                    # only in memory), so durability requires snapshotting
                    # it before the adoption returns.  Holding the shard
                    # lock through the CURRENT flip keeps the WAL gap-free:
                    # no mutation lands between the rotation and the flip,
                    # so a crash anywhere in this window recovers either
                    # the full pre-adoption or full post-adoption state.
                    from ..storage import save_kb

                    seq = self.version
                    snapshot_dir = self._durable.begin_compaction(seq)
                    save_kb(kb, snapshot_dir / "shard0", durable=False)
                    self._durable.write_snapshot_meta(
                        snapshot_dir, seq, self.applied_write_ids()
                    )
                    self._durable.finish_compaction(seq, snapshot_dir)
        finally:
            if self._durable is not None:
                self._compact_serial.release()

    # -- durability: recovery, compaction, shutdown ---------------------------

    @property
    def durable(self) -> bool:
        return self._durable is not None

    @property
    def durable_store(self) -> DurableStore | None:
        return self._durable

    def _recover(self) -> None:
        """Rebuild in-memory state from the durable store (constructor).

        Loads the ``CURRENT`` snapshot's per-shard ``save_kb`` trees,
        restores the write-id memo from the snapshot sidecar, then
        replays the WAL tail through the ordinary mutation path with
        staging disabled (the records are already on disk).  Each replay
        must land on exactly its logged seq — a stall (e.g. a retract
        whose clause is absent) means the log and snapshot disagree, and
        recovery refuses to continue silently wrong.
        """
        assert self._durable is not None
        state = self._durable.open()
        if state.shard_dirs:
            from ..storage import load_kb

            for shard_dir in state.shard_dirs:
                shard_id = int(shard_dir.name[len("shard"):])
                if shard_id >= self.num_shards:
                    raise WalError(
                        f"snapshot has {shard_dir.name} but the engine "
                        f"only has {self.num_shards} shard(s)"
                    )
                self._install_recovered_kb(shard_id, load_kb(shard_dir))
        self.version = state.snapshot_seq
        self._cache_version = state.snapshot_seq
        if state.write_ids:
            self.adopt_write_ids(state.write_ids)
        self._replaying = True
        try:
            for record in state.records:
                self.apply_mutation(
                    MutationRecord(
                        seq=record.seq,
                        op=record.op,
                        clause=record.clause,
                        module=record.module,
                        write_id=record.write_id,
                    )
                )
                if self.version != record.seq:
                    raise WalError(
                        f"replaying seq {record.seq} left the engine at "
                        f"version {self.version}; snapshot and WAL disagree"
                    )
        finally:
            self._replaying = False
        self.recovered = state

    def _install_recovered_kb(self, shard_id: int, kb: KnowledgeBase) -> None:
        """Swap a recovered snapshot KB into one shard (constructor only).

        Placement is recorded verbatim via :meth:`ShardRouter.observe`
        rather than re-hashed — under round-robin the original placement
        was positional, and re-routing would record a lie.
        """
        shard = self.shards[shard_id]
        shard_obs = self.obs.labelled(shard=str(shard_id))
        kb.disk.obs = shard_obs
        server = ClauseRetrievalServer(
            kb,
            cost_model=self._cost_model,
            cross_binding=self._cross_binding,
            cache_size=0,
            obs=shard_obs,
            fs1_mode=self._fs1_mode,
            fs2_mode=self._fs2_mode,
        )
        for store in kb:
            for clause in store.clauses():
                self.router.observe(clause.head, shard_id)
        shard.kb = kb
        shard.server = server
        self._on_shard_mutation(shard, "reload", None)

    def compact(self) -> int:
        """Fold the WAL into a fresh snapshot; returns the pinned seq.

        Under every shard lock (a point-in-time cut): pins the current
        version, rotates the WAL at it, and writes one ``save_kb`` tree
        per shard into the new snapshot directory.  The expensive part —
        fsyncing the tree and flipping ``CURRENT`` — happens after the
        locks are released; mutations admitted in between land in the
        fresh WAL segment, so the log stays contiguous whether or not
        the flip survives a crash.
        """
        if self._durable is None:
            raise WalError("engine has no durable store to compact")
        from ..storage import save_kb

        with self._compact_serial:
            acquired: list[ClusterShard] = []
            try:
                for shard in self.shards:
                    shard.lock.acquire()
                    acquired.append(shard)
                seq = self.version
                if seq == self._durable.snapshot_seq:
                    return seq  # nothing new since the last snapshot
                snapshot_dir = self._durable.begin_compaction(seq)
                for shard in self.shards:
                    save_kb(
                        shard.kb,
                        snapshot_dir / f"shard{shard.shard_id}",
                        durable=False,  # finish_compaction fsyncs the tree
                    )
                write_ids = self.applied_write_ids()
            finally:
                for shard in reversed(acquired):
                    shard.lock.release()
            self._durable.write_snapshot_meta(snapshot_dir, seq, write_ids)
            self._durable.finish_compaction(seq, snapshot_dir)
            return seq

    def _compact_loop(self) -> None:
        assert self._durable is not None
        interval = self._durable.options.compact_interval_s
        while not self._compact_stop.wait(interval):
            try:
                if self._durable.should_compact():
                    self.compact()
            except Exception:
                # Compaction is an optimisation; the WAL keeps growing
                # and stays authoritative.  Count it, try again later.
                self.obs.counter("wal.compact_errors").inc()

    def close(self) -> None:
        """Flush and release the durable store (idempotent; volatile no-op)."""
        if self._closed:
            return
        self._closed = True
        if self._compact_thread is not None:
            self._compact_stop.set()
            self._compact_thread.join(timeout=10.0)
            self._compact_thread = None
        if self._durable is not None:
            self._durable.close()

    # -- retrieval -----------------------------------------------------------

    def retrieve(
        self,
        goal: Term,
        mode: SearchMode | None = None,
        timeout: float | None = None,
    ) -> RetrievalResult:
        """Candidates for ``goal`` merged across its routed shards.

        The contract matches the single-engine server: the merged
        candidate set is identical (the differential suite holds the two
        implementations against each other), stats itemise where the
        time went, and with ``cache_size > 0`` repeats are served from
        the cluster-level LRU until any shard's KB changes.

        ``timeout`` (host seconds) bounds the whole fan-out: a shard
        whose lock cannot be acquired before the deadline raises
        :class:`~repro.crs.RetrievalTimeout` instead of blocking forever
        behind a stuck retrieval.  Each shard's own execution runs
        uninterrupted once its lock is held (the simulated hardware has
        no preemption); queue wait is where a wedged shard stalls every
        other request, and that is what the deadline cuts off.
        """
        from ..terms import term_to_string

        deadline = None if timeout is None else time.monotonic() + timeout
        with self.obs.span("cluster.retrieve", goal=term_to_string(goal)) as span:
            cache_key = None
            version_snapshot = None
            if self.cache_size > 0:
                cache_key = (canonical_goal_key(goal), mode)
                cached, version_snapshot = self._cache_probe(cache_key)
                if cached is not None:
                    hit = self._cache_hit_view(cached)
                    span.set(cache="hit", candidates=len(hit.candidates))
                    self._account_retrieval(hit)
                    return hit
            targets, effective_mode = self._route_and_plan(goal, mode)
            shard_results: dict[int, RetrievalResult] = {}
            for shard_id in targets:
                shard = self.shards[shard_id]
                self._acquire_shard(shard, deadline)
                try:
                    shard_results[shard_id] = self._shard_retrieve(
                        shard, goal, effective_mode
                    )
                finally:
                    shard.lock.release()
            result = self._merge(goal, effective_mode, shard_results)
            if cache_key is not None:
                self._cache_insert(cache_key, version_snapshot, result)
            span.set(
                shards=len(targets),
                broadcast=len(targets) > 1,
                candidates=len(result.candidates),
            )
            self._account_retrieval(result)
            return result

    def retrieve_batch(
        self,
        goals: list[Term],
        mode: SearchMode | None = None,
        timeout: float | None = None,
    ) -> list[RetrievalResult]:
        """Retrieve many goals, batching each shard's FS1 work.

        Element-wise equivalent to ``[self.retrieve(g, mode) for g in
        goals]`` — same merged candidate sets, same per-goal modelled
        stats, same cache behaviour — but executed as per-shard goal
        batches: every shard receives all of its sub-queries at once (so
        its engine can amortise batched FS1 scans), and the shards run
        concurrently, one thread per shard, exactly as the parallel-disk
        timing model assumes.

        ``timeout`` bounds the whole fan-out: if any shard worker is
        still running (or still queued behind a stuck shard lock) at the
        deadline, the batch raises :class:`~repro.crs.RetrievalTimeout`
        rather than blocking on the slowest shard forever.
        """
        from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait

        deadline = None if timeout is None else time.monotonic() + timeout

        results: list[RetrievalResult | None] = [None] * len(goals)
        # (position, goal, cache_key, snapshot, targets, effective mode)
        pending: list[tuple] = []
        with self.obs.span("cluster.retrieve_batch", goals=len(goals)) as span:
            for position, goal in enumerate(goals):
                cache_key = version_snapshot = None
                if self.cache_size > 0:
                    cache_key = (canonical_goal_key(goal), mode)
                    cached, version_snapshot = self._cache_probe(cache_key)
                    if cached is not None:
                        hit = self._cache_hit_view(cached)
                        self._account_retrieval(hit)
                        results[position] = hit
                        continue
                targets, effective_mode = self._route_and_plan(goal, mode)
                pending.append(
                    (position, goal, cache_key, version_snapshot,
                     targets, effective_mode)
                )
            # Per-shard worklists: a shard sees all of its sub-queries,
            # grouped by effective mode so each group is one engine-level
            # batch (modes must not mix inside a batched FS1 scan).
            shard_work: dict[int, dict[SearchMode, list[int]]] = {}
            for item, plan in enumerate(pending):
                _, _, _, _, targets, effective_mode = plan
                for shard_id in targets:
                    shard_work.setdefault(shard_id, {}).setdefault(
                        effective_mode, []
                    ).append(item)
            shard_results: list[dict[int, RetrievalResult]] = [
                {} for _ in pending
            ]

            def run_shard(shard_id: int) -> None:
                shard = self.shards[shard_id]
                self._acquire_shard(shard, deadline)
                try:
                    for effective_mode, items in shard_work[shard_id].items():
                        sub = self._shard_retrieve_batch(
                            shard,
                            [pending[i][1] for i in items],
                            effective_mode,
                        )
                        for item, result in zip(items, sub):
                            shard_results[item][shard_id] = result
                finally:
                    shard.lock.release()

            busy_shards = sorted(shard_work)
            if len(busy_shards) > 1:
                pool = ThreadPoolExecutor(max_workers=len(busy_shards))
                try:
                    futures = [
                        pool.submit(run_shard, shard_id)
                        for shard_id in busy_shards
                    ]
                    remaining = (
                        None if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    done, not_done = wait(
                        futures, timeout=remaining,
                        return_when=FIRST_EXCEPTION,
                    )
                    for future in done:
                        future.result()  # re-raise worker failures
                    if not_done:
                        # Workers still blocked on a shard lock will
                        # time themselves out via _acquire_shard; the
                        # pool is released without joining them.
                        raise RetrievalTimeout(
                            f"{len(not_done)} shard batch(es) still "
                            "running at the deadline"
                        )
                finally:
                    pool.shutdown(wait=deadline is None, cancel_futures=True)
            else:
                for shard_id in busy_shards:
                    run_shard(shard_id)
            for plan, per_goal in zip(pending, shard_results):
                (position, goal, cache_key, version_snapshot,
                 _, effective_mode) = plan
                result = self._merge(goal, effective_mode, per_goal)
                if cache_key is not None:
                    self._cache_insert(cache_key, version_snapshot, result)
                self._account_retrieval(result)
                results[position] = result
            span.set(
                executed=len(pending),
                shards=len(busy_shards),
            )
        return results  # type: ignore[return-value]

    # -- shard execution seam -------------------------------------------------
    #
    # All engine work funnels through these two methods (called with the
    # shard's lock held), so an execution backend that hosts the engine
    # elsewhere — e.g. the process workers in :mod:`repro.parallel` —
    # only overrides *where* the retrieval runs.  Routing, planning,
    # caching, merging and accounting stay in this class, which is what
    # keeps the two backends' results and modelled stats bit-identical.

    def _shard_retrieve(
        self, shard: ClusterShard, goal: Term, mode: SearchMode
    ) -> RetrievalResult:
        return shard.server.retrieve(goal, mode=mode)

    def _shard_retrieve_batch(
        self, shard: ClusterShard, goals: list[Term], mode: SearchMode
    ) -> list[RetrievalResult]:
        return shard.server.retrieve_batch(goals, mode=mode)

    def _on_shard_mutation(
        self,
        shard: ClusterShard,
        op: str,
        clause: Clause | None,
        module: str = "user",
    ) -> None:
        """Hook: one mutation just applied to ``shard`` (lock held).

        The base server mutates the shard's engine in place, so there is
        nothing to do; a process-backed subclass forwards the mutation to
        the shard's worker before releasing the lock, so whichever
        reader acquires the lock next sees post-mutation worker state.
        """

    @staticmethod
    def _acquire_shard(shard: ClusterShard, deadline: float | None) -> None:
        """Take a shard's lock, or raise :class:`RetrievalTimeout`.

        With no deadline this blocks exactly like the old ``with
        shard.lock:`` — unbounded, preserving the in-process contract.
        """
        if deadline is None:
            shard.lock.acquire()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not shard.lock.acquire(timeout=remaining):
            raise RetrievalTimeout(
                f"shard {shard.shard_id} busy past the retrieval deadline"
            )

    def _route_and_plan(
        self, goal: Term, mode: SearchMode | None
    ) -> tuple[list[int], SearchMode]:
        """Target shards and the cluster-wide effective mode for a goal."""
        targets = self.router.route_goal(goal)  # may raise Unknown…
        effective_mode = mode if mode is not None else self._plan_mode(goal)
        if effective_mode is SearchMode.FS1_ONLY:
            # A raw FS1 scan's codeword false drops are not confined
            # to the first-arg key's shard: fan out unpruned so the
            # merged stream matches the single device's exactly.
            targets = self.router.route_goal(goal, prune=False)
        return targets, effective_mode

    def _cache_probe(
        self, cache_key: tuple
    ) -> tuple[RetrievalResult | None, int]:
        with self._cache_lock:
            if self.version != self._cache_version:
                self._cache.clear()
                self._cache_version = self.version
            version_snapshot = self._cache_version
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        if cached is not None:
            self.obs.counter("cluster.cache.hits").inc()
        else:
            self.obs.counter("cluster.cache.misses").inc()
        return cached, version_snapshot

    def _cache_insert(
        self, cache_key: tuple, version_snapshot: int | None,
        result: RetrievalResult,
    ) -> None:
        with self._cache_lock:
            # Insert only if no update intervened since this thread's
            # start-of-retrieval snapshot — comparing the monotonic
            # counter to the snapshot (not to the moving
            # ``_cache_version``) closes the window where a concurrently
            # re-synced cache would re-admit a result computed against
            # the pre-update KB.
            if self.version == version_snapshot:
                self._cache[cache_key] = result
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)

    def solutions(
        self, goal: Term, mode: SearchMode | None = None
    ) -> list[tuple[Clause, Bindings]]:
        """Full unification over the merged candidates."""
        result = self.retrieve(goal, mode=mode)
        matches = []
        for clause in result.candidates:
            renamed_head = rename_apart(clause.head, keep_anonymous=False)
            bindings = unify(goal, renamed_head)
            if bindings is not None:
                matches.append((clause, bindings))
        self.obs.counter("cluster.true_matches").inc(len(matches))
        self.obs.counter("cluster.false_drops").inc(
            len(result.candidates) - len(matches)
        )
        return matches

    def _plan_mode(self, goal: Term) -> SearchMode:
        """Select one search mode for the whole cluster.

        Mode planning is a *front-end* decision: a shard deciding alone
        would see only its slice of the predicate (a different size, a
        different fact fraction) and shards could disagree — merging one
        shard's raw FS1 candidate stream with another's FS2-refined one.
        Planning once over an aggregate view of the predicate makes the
        choice identical to what the single engine's planner would pick
        over the unpartitioned store.
        """
        from ..crs.planner import select_mode

        indicator = functor_indicator(goal)
        holders = [
            self.shards[shard_id]
            for shard_id in self.router.shards_for_indicator(indicator)
        ]
        stores = [shard.kb.store(indicator) for shard in holders]
        residency = holders[0].kb.residency(indicator)
        return select_mode(goal, _AggregateStore(indicator, stores), residency)

    # -- merging and accounting -----------------------------------------------

    def _merge(
        self,
        goal: Term,
        mode: SearchMode | None,
        shard_results: dict[int, RetrievalResult],
    ) -> RetrievalResult:
        """One result from many: concatenate candidates, fold stats."""
        per_shard: dict[int, RetrievalStats] = {}
        candidates: list[Clause] = []
        merged_mode = mode
        residencies: set[str] = set()
        for shard_id in sorted(shard_results):
            shard_result = shard_results[shard_id]
            candidates.extend(shard_result.candidates)
            stats = shard_result.stats
            if stats is None:
                continue
            per_shard[shard_id] = stats
            residencies.add(stats.residency)
            if merged_mode is None:
                merged_mode = stats.mode
        if merged_mode is None:
            merged_mode = SearchMode.SOFTWARE
        residency = (
            residencies.pop() if len(residencies) == 1
            else "mixed" if residencies else Residency.MEMORY
        )
        stats = MergedRetrievalStats(
            mode=merged_mode,
            residency=residency,
            shards_queried=len(shard_results),
            broadcast=len(shard_results) > 1,
            per_shard=per_shard,
        )
        for shard_stats in per_shard.values():
            stats.clauses_total += shard_stats.clauses_total
            stats.final_candidates += shard_stats.final_candidates
            stats.fs2_search_calls += shard_stats.fs2_search_calls
            stats.bytes_from_disk += shard_stats.bytes_from_disk
            stats.disk_time_s += shard_stats.disk_time_s
            stats.fs1_time_s += shard_stats.fs1_time_s
            stats.fs2_time_s += shard_stats.fs2_time_s
            stats.software_time_s += shard_stats.software_time_s
            if shard_stats.fs1_candidates is not None:
                stats.fs1_candidates = (
                    stats.fs1_candidates or 0
                ) + shard_stats.fs1_candidates
        return RetrievalResult(goal=goal, candidates=candidates, stats=stats)

    @staticmethod
    def _cache_hit_view(result: RetrievalResult) -> RetrievalResult:
        """A cached cluster result: same candidates, no physical cost."""
        original = result.stats
        stats = None
        if isinstance(original, MergedRetrievalStats):
            stats = MergedRetrievalStats(
                mode=original.mode,
                residency=original.residency,
                clauses_total=original.clauses_total,
                fs1_candidates=original.fs1_candidates,
                final_candidates=original.final_candidates,
                shards_queried=original.shards_queried,
                broadcast=original.broadcast,
                # per_shard stays empty: filter_time_s is 0.0 — a hit
                # touches no shard hardware at all.
            )
        return RetrievalResult(
            goal=result.goal, candidates=list(result.candidates), stats=stats
        )

    def _account_retrieval(self, result: RetrievalResult) -> None:
        stats = result.stats
        obs = self.obs
        obs.counter("cluster.retrievals", policy=self.policy.value).inc()
        obs.counter("cluster.candidates_returned").inc(len(result.candidates))
        if not isinstance(stats, MergedRetrievalStats):
            return
        if stats.per_shard:  # only physical executions count here
            if stats.broadcast:
                obs.counter("cluster.broadcasts").inc()
            else:
                obs.counter("cluster.single_shard").inc()
            obs.counter("cluster.wall_clock_s").inc(stats.filter_time_s)
            obs.counter("cluster.device_time_s").inc(
                stats.serial_filter_time_s
            )
        obs.histogram(
            "cluster.shards_queried",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        ).observe(stats.shards_queried)


class _AggregateStore:
    """A read-only union view of one predicate's per-shard stores.

    Exposes exactly what :func:`repro.crs.planner.select_mode` consumes —
    ``len`` and an iterable ``clause_file`` — so the cluster's planner
    sees the same clause population the single engine's planner would.
    """

    def __init__(self, indicator: tuple[str, int], stores: list):
        self.indicator = indicator
        self._stores = stores

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    @property
    def clause_file(self):
        for store in self._stores:
            yield from store.clause_file


def _as_clause(clause_or_term: Clause | Term) -> Clause:
    if isinstance(clause_or_term, Clause):
        return clause_or_term
    return clause_from_term(clause_or_term)
