"""Batched query execution over the shard cluster.

A production front-end does not retrieve one goal at a time: it drains a
queue of goals against the cluster, keeping every CLARE device busy.
The :class:`BatchExecutor` fans a batch out on a thread pool — shard
locks serialise access to each stateful engine, different shards run in
parallel — and models the batch's wall clock the way the hardware
would run it: each shard works through its sub-queries serially, all
shards concurrently, so the batch takes as long as its busiest shard
(max-over-shards), not the sum of every device's work.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from ..crs import RetrievalResult, RetrievalTimeout, SearchMode
from ..obs import Instrumentation
from ..terms import Term
from .server import MergedRetrievalStats, ShardedRetrievalServer

__all__ = ["BatchStats", "BatchResult", "BatchExecutor"]


@dataclass
class BatchStats:
    """Modelled timing for one batch under the parallel-disk model."""

    goals: int = 0
    shard_busy_s: dict[int, float] = field(default_factory=dict)

    @property
    def wall_clock_s(self) -> float:
        """Batch latency: the busiest shard bounds the whole batch."""
        if not self.shard_busy_s:
            return 0.0
        return max(self.shard_busy_s.values())

    @property
    def serial_time_s(self) -> float:
        """The same work on a single-device timeline (the 1-shard cost)."""
        return sum(self.shard_busy_s.values())

    @property
    def speedup(self) -> float:
        """How much the parallel disks buy over one device in sequence."""
        if self.wall_clock_s == 0.0:
            return 1.0
        return self.serial_time_s / self.wall_clock_s


@dataclass
class BatchResult:
    """Per-goal results (in input order) plus batch-level accounting."""

    results: list[RetrievalResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)


class BatchExecutor:
    """Fan a batch of goals across the cluster on a thread pool."""

    def __init__(
        self,
        server: ShardedRetrievalServer,
        max_workers: int | None = None,
        obs: Instrumentation | None = None,
        clock=time.monotonic,
    ):
        self.server = server
        # One worker per shard saturates the simulated hardware: each
        # shard admits one retrieval at a time anyway.
        self.max_workers = max_workers or max(2, server.num_shards)
        self.obs = obs if obs is not None else server.obs
        # Injectable so deadline tests can drive time deterministically
        # instead of racing real sleeps against real thread scheduling.
        self._clock = clock

    def run(
        self,
        goals: list[Term],
        mode: SearchMode | None = None,
        batch_fs1: bool = False,
        timeout: float | None = None,
    ) -> BatchResult:
        """Retrieve every goal; results come back in input order.

        With ``batch_fs1=False`` goals fan out on the pool; each worker
        routes its goal and takes the relevant shard locks, so two goals
        touching disjoint shards proceed fully in parallel while
        contention on one hot shard queues behind its lock.  With
        ``batch_fs1=True`` the whole batch goes through
        :meth:`ShardedRetrievalServer.retrieve_batch` instead: each
        shard receives all of its sub-queries at once and amortises
        them as batched (bit-sliced) FS1 scans — same results, same
        modelled times, less host wall clock.  Shard busy time is
        accumulated from the merged per-shard stats either way (cluster
        cache hits cost nothing).

        ``timeout`` (host seconds) bounds the whole batch: a stuck
        shard no longer wedges the run forever — the batch raises
        :class:`~repro.crs.RetrievalTimeout` at the deadline, and each
        fanned-out goal carries the remaining budget into its own
        shard-lock waits.
        """
        deadline = None if timeout is None else self._clock() + timeout
        stats = BatchStats(goals=len(goals))
        busy_lock = threading.Lock()

        def account(result: RetrievalResult) -> RetrievalResult:
            merged = result.stats
            if isinstance(merged, MergedRetrievalStats):
                with busy_lock:
                    for shard_id, shard_stats in merged.per_shard.items():
                        stats.shard_busy_s[shard_id] = (
                            stats.shard_busy_s.get(shard_id, 0.0)
                            + shard_stats.filter_time_s
                        )
            return result

        def one(goal: Term) -> RetrievalResult:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - self._clock())
            )
            return account(
                self.server.retrieve(goal, mode=mode, timeout=remaining)
            )

        with self.obs.span(
            "cluster.batch", goals=len(goals), fs1_batched=str(batch_fs1)
        ) as span:
            if batch_fs1 and len(goals) > 1:
                results = [
                    account(result)
                    for result in self.server.retrieve_batch(
                        goals, mode=mode, timeout=timeout
                    )
                ]
            elif len(goals) <= 1:
                results = [one(goal) for goal in goals]
            else:
                pool = ThreadPoolExecutor(max_workers=self.max_workers)
                try:
                    futures = [pool.submit(one, goal) for goal in goals]
                    remaining = (
                        None if deadline is None
                        else max(0.0, deadline - self._clock())
                    )
                    done, not_done = wait(
                        futures, timeout=remaining,
                        return_when=FIRST_EXCEPTION,
                    )
                    for future in done:
                        future.result()
                    if not_done:
                        raise RetrievalTimeout(
                            f"{len(not_done)} goal(s) still running at "
                            "the batch deadline"
                        )
                    results = [future.result() for future in futures]
                finally:
                    pool.shutdown(wait=deadline is None, cancel_futures=True)
            span.set(
                wall_clock_s=stats.wall_clock_s,
                serial_time_s=stats.serial_time_s,
                speedup=round(stats.speedup, 3),
            )
        obs = self.obs
        obs.counter("cluster.batch.runs").inc()
        obs.counter("cluster.batch.goals").inc(len(goals))
        obs.counter("cluster.batch.wall_clock_s").inc(stats.wall_clock_s)
        obs.counter("cluster.batch.serial_time_s").inc(stats.serial_time_s)
        for shard_id, busy in sorted(stats.shard_busy_s.items()):
            obs.counter("cluster.batch.busy_s", shard=str(shard_id)).inc(busy)
        obs.histogram(
            "cluster.batch.speedup", buckets=(1, 1.5, 2, 3, 4, 6, 8, 12, 16)
        ).observe(stats.speedup)
        return BatchResult(results=results, stats=stats)
