"""Rendering terms back to Edinburgh Prolog text.

The writer is the inverse of :mod:`repro.terms.reader`: for any term built
by the reader, ``read_term(term_to_string(t))`` reproduces ``t`` up to
variable naming.  Operators from the reader's table are printed infix with
minimal parenthesisation; lists use bracket notation with ``|`` tails.
"""

from __future__ import annotations

from .term import CONS, NIL, Atom, Float, Int, Struct, Term, Var, list_parts

__all__ = ["term_to_string", "atom_needs_quotes", "quote_atom"]

# (priority, type) per operator, mirroring reader.OPERATORS.
_INFIX: dict[str, tuple[int, str]] = {
    ":-": (1200, "xfx"),
    "-->": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "is": (700, "xfx"),
    "=:=": (700, "xfx"),
    "=\\=": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "=..": (700, "xfx"),
    "@<": (700, "xfx"),
    "@>": (700, "xfx"),
    "@=<": (700, "xfx"),
    "@>=": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "^": (200, "xfy"),
}

_PREFIX: dict[str, tuple[int, str]] = {
    ":-": (1200, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
}

_SOLO_ATOMS = {"[]", "{}", "!", ";", ","}

_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")


def atom_needs_quotes(name: str) -> bool:
    """True if ``name`` must be quoted to read back as a single atom."""
    if name in _SOLO_ATOMS:
        return False
    if not name:
        return True
    if name[0].islower() and all(c.isalnum() or c == "_" for c in name):
        return False
    if all(c in _SYMBOL_CHARS for c in name):
        return False
    return True


def quote_atom(name: str) -> str:
    """Render an atom name, quoting and escaping when necessary."""
    if not atom_needs_quotes(name):
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")
    return f"'{escaped}'"


def term_to_string(term: Term, max_priority: int = 1200) -> str:
    """Render ``term`` as Edinburgh Prolog text."""
    if isinstance(term, Atom):
        return quote_atom(term.name)
    if isinstance(term, Int):
        return str(term.value)
    if isinstance(term, Float):
        text = repr(term.value)
        return text
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Struct):
        return _struct_to_string(term, max_priority)
    raise TypeError(f"not a term: {term!r}")


def _struct_to_string(term: Struct, max_priority: int) -> str:
    if term.functor == CONS and term.arity == 2:
        return _list_to_string(term)
    if term.functor == "{}" and term.arity == 1:
        return "{" + term_to_string(term.args[0], 1200) + "}"
    if term.arity == 2 and term.functor in _INFIX:
        priority, optype = _INFIX[term.functor]
        left_max = priority if optype == "yfx" else priority - 1
        right_max = priority if optype == "xfy" else priority - 1
        left = term_to_string(term.args[0], left_max)
        right = term_to_string(term.args[1], right_max)
        name = term.functor
        if name == ",":
            text = f"{left},{right}"
        elif name.isalpha():
            text = f"{left} {name} {right}"
        else:
            # Avoid gluing symbol runs together ('a+ +' must not become
            # 'a++') or a '-' onto a following digit.
            lsep = " " if left[-1:] in _SYMBOL_CHARS else ""
            rsep = (
                " "
                if right[:1] in _SYMBOL_CHARS
                or (name[-1] == "-" and right[:1].isdigit())
                else ""
            )
            text = f"{left}{lsep}{name}{rsep}{right}"
        if priority > max_priority:
            return f"({text})"
        return text
    if term.arity == 1 and term.functor in _PREFIX:
        priority, optype = _PREFIX[term.functor]
        arg_max = priority if optype == "fy" else priority - 1
        arg = term_to_string(term.args[0], arg_max)
        name = term.functor
        # A space is needed after an alphabetic operator, between runs of
        # symbol characters, and after '-' before a digit (else '-(3.5)'
        # would re-read as the literal -3.5).
        sep = (
            " "
            if (
                name[-1].isalnum()
                or arg[:1] in _SYMBOL_CHARS
                or (name == "-" and arg[:1].isdigit())
            )
            else ""
        )
        text = f"{name}{sep}{arg}"
        if priority > max_priority:
            return f"({text})"
        return text
    args = ",".join(term_to_string(a, 999) for a in term.args)
    return f"{quote_atom(term.functor)}({args})"


def _list_to_string(term: Struct) -> str:
    items, tail = list_parts(term)
    body = ",".join(term_to_string(i, 999) for i in items)
    if tail == NIL:
        return f"[{body}]"
    return f"[{body}|{term_to_string(tail, 999)}]"
