"""Clauses: facts and rules.

A clause is ``Head :- Body`` where the body is a conjunction of goals; a
fact is a clause with the empty body ``true``.  The PDBM system keeps facts
and rules together in user order — mixed relations are a design goal of the
integrated approach (paper section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .term import Atom, Struct, Term, Var, functor_indicator, variables
from .writer import term_to_string

__all__ = ["Clause", "clause_from_term", "body_goals", "TRUE"]

TRUE = Atom("true")


@dataclass(frozen=True)
class Clause:
    """A program clause with a callable head and a tuple of body goals."""

    head: Term
    body: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.head.is_callable():
            raise ValueError(f"clause head must be callable: {self.head!r}")
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    @property
    def indicator(self) -> tuple[str, int]:
        return functor_indicator(self.head)

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def is_ground_fact(self) -> bool:
        return self.is_fact and not self.variables()

    def variables(self) -> list[Var]:
        seen: dict[Var, None] = {}
        for term in (self.head, *self.body):
            for var in variables(term):
                if not var.is_anonymous():
                    seen.setdefault(var)
        return list(seen)

    def to_term(self) -> Term:
        """The clause as a single term (``head`` or ``head :- goals``)."""
        if self.is_fact:
            return self.head
        body: Term = self.body[-1]
        for goal in reversed(self.body[:-1]):
            body = Struct(",", (goal, body))
        return Struct(":-", (self.head, body))

    def __str__(self) -> str:
        return term_to_string(self.to_term()) + "."


def body_goals(body: Term) -> tuple[Term, ...]:
    """Flatten a ``,``-conjunction into a goal tuple; ``true`` vanishes."""
    if body == TRUE:
        return ()
    goals: list[Term] = []
    stack = [body]
    while stack:
        current = stack.pop()
        if isinstance(current, Struct) and current.indicator == (",", 2):
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            goals.append(current)
    return tuple(goals)


def clause_from_term(term: Term) -> Clause:
    """Interpret a read term as a clause (splitting on ``:-``)."""
    if isinstance(term, Struct) and term.indicator == (":-", 2):
        head, body = term.args
        return Clause(head, body_goals(body))
    return Clause(term)
