"""Edinburgh Prolog reader: tokenizer and operator-precedence parser.

Supports the syntax the PDBM system needs: atoms (plain, quoted, symbolic),
integers (decimal, ``0'c`` character codes), floats, variables, compound
terms, bracket lists with ``|`` tails, curly terms, parenthesised terms,
``%`` line comments and ``/* */`` block comments, and a standard operator
table (``:-``, ``;``, ``->``, ``,``, comparison and arithmetic operators).

The entry points are :func:`read_term` (one term from a string),
:func:`read_program` (a ``.``-separated clause list) and
:class:`TermReader` for incremental reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .term import NIL, Atom, Float, Int, Struct, Term, Var, make_list

__all__ = ["ReaderError", "read_term", "read_program", "TermReader", "OPERATORS"]


class ReaderError(ValueError):
    """Raised on malformed Prolog text, with position information."""

    def __init__(self, message: str, position: int, text: str):
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # atom var int float punct string end
    text: str
    position: int
    end: int = -1  # index just past the token in the source text

    def source_end(self) -> int:
        return self.end if self.end >= 0 else self.position + len(self.text)


_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
_ASCII_DIGITS = set("0123456789")
_PUNCT = {"(", ")", "[", "]", "{", "}", ",", "|"}


def _tokenize(text: str) -> Iterator[_Token]:
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
            continue
        if c == "%":
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ReaderError("unterminated block comment", i, text)
            i = end + 2
            continue
        start = i
        if c in _ASCII_DIGITS:
            i, token = _scan_number(text, i)
            yield token
            continue
        if c == "_" or c.isalpha():
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if c == "_" or c.isupper():
                yield _Token("var", word, start, i)
            else:
                yield _Token("atom", word, start, i)
            continue
        if c == "'":
            i, value = _scan_quoted(text, i, "'")
            yield _Token("atom", value, start, i)
            continue
        if c == '"':
            i, value = _scan_quoted(text, i, '"')
            yield _Token("string", value, start, i)
            continue
        if c == "!":
            yield _Token("atom", "!", start, start + 1)
            i += 1
            continue
        if c == ";":
            yield _Token("atom", ";", start, start + 1)
            i += 1
            continue
        if c in _PUNCT:
            yield _Token("punct", c, start, start + 1)
            i += 1
            continue
        if c in _SYMBOL_CHARS:
            while i < n and text[i] in _SYMBOL_CHARS:
                i += 1
            sym = text[start:i]
            # A '.' followed by whitespace/EOF is the clause terminator.
            if sym == "." and (i >= n or text[i].isspace() or text[i] == "%"):
                yield _Token("end", ".", start, start + 1)
                continue
            if (
                sym.endswith(".")
                and (i >= n or text[i].isspace())
                and sym not in OPERATORS
                and sym[:-1] in OPERATORS
            ):
                # A clause terminator glued onto a symbolic operator, e.g.
                # "X = +."; but '=..' itself must stay whole.
                yield _Token("atom", sym[:-1], start, i - 1)
                yield _Token("end", ".", i - 1, i)
                continue
            yield _Token("atom", sym, start, i)
            continue
        raise ReaderError(f"unexpected character {c!r}", i, text)


def _scan_number(text: str, i: int) -> tuple[int, _Token]:
    start = i
    n = len(text)
    if text.startswith("0'", i) and i + 2 < n:
        # Character code: 0'a  (also 0'\\n style escapes)
        if text[i + 2] == "\\" and i + 3 < n:
            esc = text[i + 3]
            value = _ESCAPES.get(esc)
            if value is None:
                raise ReaderError(f"bad character escape \\{esc}", i, text)
            return i + 4, _Token("int", str(ord(value)), start, i + 4)
        return i + 3, _Token("int", str(ord(text[i + 2])), start, i + 3)
    if text.startswith("0x", i):
        j = i + 2
        while j < n and text[j] in "0123456789abcdefABCDEF":
            j += 1
        if j > i + 2:
            return j, _Token("int", str(int(text[i + 2 : j], 16)), start, j)
        # "0x" with no digits: just the integer 0 (the 'x' scans separately).
        return i + 1, _Token("int", "0", start, i + 1)
    j = i
    while j < n and text[j] in _ASCII_DIGITS:
        j += 1
    is_float = False
    if j < n - 1 and text[j] == "." and text[j + 1] in _ASCII_DIGITS:
        is_float = True
        j += 1
        while j < n and text[j] in _ASCII_DIGITS:
            j += 1
    if j < n and text[j] in "eE":
        k = j + 1
        if k < n and text[k] in "+-":
            k += 1
        if k < n and text[k] in _ASCII_DIGITS:
            is_float = True
            j = k
            while j < n and text[j] in _ASCII_DIGITS:
                j += 1
    kind = "float" if is_float else "int"
    return j, _Token(kind, text[start:j], start, j)


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "0": "\0",
}


def _scan_quoted(text: str, i: int, quote: str) -> tuple[int, str]:
    start = i
    i += 1
    out: list[str] = []
    n = len(text)
    while i < n:
        c = text[i]
        if c == quote:
            if i + 1 < n and text[i + 1] == quote:  # doubled quote
                out.append(quote)
                i += 2
                continue
            return i + 1, "".join(out)
        if c == "\\":
            if i + 1 >= n:
                break
            esc = text[i + 1]
            if esc == "\n":  # line continuation
                i += 2
                continue
            if esc == "x":
                end = text.find("\\", i + 2)
                if end < 0:
                    raise ReaderError("bad \\x escape", i, text)
                out.append(chr(int(text[i + 2 : end], 16)))
                i = end + 1
                continue
            if esc in _ESCAPES:
                out.append(_ESCAPES[esc])
                i += 2
                continue
            raise ReaderError(f"unknown escape \\{esc}", i, text)
        out.append(c)
        i += 1
    raise ReaderError("unterminated quoted token", start, text)


# Operator table: name -> list of (priority, type).  A subset of the
# standard Edinburgh table sufficient for knowledge-base clauses.
OPERATORS: dict[str, list[tuple[int, str]]] = {
    ":-": [(1200, "xfx"), (1200, "fx")],
    "-->": [(1200, "xfx")],
    "?-": [(1200, "fx")],
    ";": [(1100, "xfy")],
    "->": [(1050, "xfy")],
    ",": [(1000, "xfy")],
    "\\+": [(900, "fy")],
    "=": [(700, "xfx")],
    "\\=": [(700, "xfx")],
    "==": [(700, "xfx")],
    "\\==": [(700, "xfx")],
    "@<": [(700, "xfx")],
    "@>": [(700, "xfx")],
    "@=<": [(700, "xfx")],
    "@>=": [(700, "xfx")],
    "is": [(700, "xfx")],
    "=..": [(700, "xfx")],
    "=:=": [(700, "xfx")],
    "=\\=": [(700, "xfx")],
    "<": [(700, "xfx")],
    ">": [(700, "xfx")],
    "=<": [(700, "xfx")],
    ">=": [(700, "xfx")],
    "+": [(500, "yfx")],
    "-": [(500, "yfx"), (200, "fy")],
    "*": [(400, "yfx")],
    "/": [(400, "yfx")],
    "//": [(400, "yfx")],
    "mod": [(400, "yfx")],
    "**": [(200, "xfx")],
    "^": [(200, "xfy")],
}


def _infix(name: str) -> tuple[int, str] | None:
    for priority, optype in OPERATORS.get(name, ()):
        if optype in ("xfx", "xfy", "yfx"):
            return priority, optype
    return None


def _prefix(name: str) -> tuple[int, str] | None:
    for priority, optype in OPERATORS.get(name, ()):
        if optype in ("fy", "fx"):
            return priority, optype
    return None


class _Parser:
    """Operator-precedence parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.pos = 0
        self.var_cache: dict[str, Var] = {}

    def peek(self) -> _Token | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ReaderError("unexpected end of input", len(self.text), self.text)
        self.pos += 1
        return token

    def expect(self, kind: str, text: str) -> _Token:
        token = self.next()
        if token.kind != kind or token.text != text:
            raise ReaderError(
                f"expected {text!r}, found {token.text!r}", token.position, self.text
            )
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # --- term parsing -----------------------------------------------------

    def parse_term(self, max_priority: int) -> Term:
        left, left_priority = self.parse_primary(max_priority)
        return self.parse_infix(left, left_priority, max_priority)

    def parse_infix(self, left: Term, left_priority: int, max_priority: int) -> Term:
        while True:
            token = self.peek()
            if token is None or token.kind == "end":
                return left
            name = token.text
            if token.kind == "punct" and name == ",":
                name = ","
            elif token.kind != "atom":
                return left
            op = _infix(name)
            if op is None:
                return left
            priority, optype = op
            if priority > max_priority:
                return left
            left_max = priority if optype == "yfx" else priority - 1
            right_max = priority if optype == "xfy" else priority - 1
            if left_priority > left_max:
                return left
            self.next()
            right = self.parse_term(right_max)
            left = Struct(name, (left, right))
            left_priority = priority

    def parse_primary(self, max_priority: int) -> tuple[Term, int]:
        token = self.next()
        if token.kind == "int":
            return Int(int(token.text)), 0
        if token.kind == "float":
            return Float(float(token.text)), 0
        if token.kind == "var":
            return self._variable(token.text), 0
        if token.kind == "string":
            return make_list([Int(ord(c)) for c in token.text]), 0
        if token.kind == "punct":
            if token.text == "(":
                term = self.parse_term(1200)
                self.expect("punct", ")")
                return term, 0
            if token.text == "[":
                return self.parse_list(), 0
            if token.text == "{":
                nxt = self.peek()
                if nxt is not None and nxt.kind == "punct" and nxt.text == "}":
                    self.next()
                    return Atom("{}"), 0
                inner = self.parse_term(1200)
                self.expect("punct", "}")
                return Struct("{}", (inner,)), 0
            raise ReaderError(
                f"unexpected {token.text!r}", token.position, self.text
            )
        if token.kind == "atom":
            return self.parse_atom_or_compound(token, max_priority)
        raise ReaderError(f"unexpected token {token.text!r}", token.position, self.text)

    def parse_atom_or_compound(
        self, token: _Token, max_priority: int
    ) -> tuple[Term, int]:
        name = token.text
        nxt = self.peek()
        # f( ... ) with no space between name and '(' -> compound term.
        if (
            nxt is not None
            and nxt.kind == "punct"
            and nxt.text == "("
            and nxt.position == token.source_end()
        ):
            self.next()
            args = [self.parse_term(999)]
            while True:
                sep = self.peek()
                if sep is not None and sep.kind == "punct" and sep.text == ",":
                    self.next()
                    args.append(self.parse_term(999))
                    continue
                break
            self.expect("punct", ")")
            return Struct(name, tuple(args)), 0
        # negative number literal: '-' immediately adjacent to a number
        # ('- 1' with a space stays the compound -(1), as in standard Prolog).
        if (
            name == "-"
            and nxt is not None
            and nxt.kind in ("int", "float")
            and nxt.position == token.source_end()
        ):
            num = self.next()
            if num.kind == "int":
                return Int(-int(num.text)), 0
            return Float(-float(num.text)), 0
        prefix = _prefix(name)
        if prefix is not None and nxt is not None and self._can_start_term(nxt):
            priority, optype = prefix
            if priority <= max_priority:
                arg_max = priority if optype == "fy" else priority - 1
                arg = self.parse_term(arg_max)
                return Struct(name, (arg,)), priority
        return Atom(name), 0

    def _can_start_term(self, token: _Token) -> bool:
        if token.kind in ("int", "float", "var", "atom", "string"):
            # an infix-only operator cannot start a term
            if token.kind == "atom" and _infix(token.text) and not _prefix(token.text):
                nxt = (
                    self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
                )
                if nxt is None or not (
                    nxt.kind == "punct" and nxt.text == "("
                ):
                    return False
            return True
        return token.kind == "punct" and token.text in ("(", "[", "{")

    def parse_list(self) -> Term:
        nxt = self.peek()
        if nxt is not None and nxt.kind == "punct" and nxt.text == "]":
            self.next()
            return NIL
        items = [self.parse_term(999)]
        tail: Term = NIL
        while True:
            token = self.next()
            if token.kind == "punct" and token.text == ",":
                items.append(self.parse_term(999))
                continue
            if token.kind == "punct" and token.text == "|":
                tail = self.parse_term(999)
                self.expect("punct", "]")
                break
            if token.kind == "punct" and token.text == "]":
                break
            raise ReaderError(
                f"bad list syntax near {token.text!r}", token.position, self.text
            )
        return make_list(items, tail)

    def _variable(self, name: str) -> Var:
        if name == "_":
            return Var("_")
        if name not in self.var_cache:
            self.var_cache[name] = Var(name)
        return self.var_cache[name]


def read_term(text: str) -> Term:
    """Parse a single term from ``text`` (optional trailing ``.``)."""
    parser = _Parser(text)
    term = parser.parse_term(1200)
    token = parser.peek()
    if token is not None and token.kind == "end":
        parser.next()
        token = parser.peek()
    if token is not None:
        raise ReaderError(
            f"trailing input {token.text!r}", token.position, text
        )
    return term


def read_program(text: str) -> list[Term]:
    """Parse a sequence of ``.``-terminated clauses."""
    parser = _Parser(text)
    clauses: list[Term] = []
    while not parser.at_end():
        parser.var_cache = {}
        clauses.append(parser.parse_term(1200))
        token = parser.next()
        if token.kind != "end":
            raise ReaderError(
                f"expected '.', found {token.text!r}", token.position, text
            )
    return clauses


class TermReader:
    """Incremental clause reader over a text stream (e.g. a consulted file)."""

    def __init__(self, text: str):
        self._parser = _Parser(text)

    def __iter__(self) -> Iterator[Term]:
        return self

    def __next__(self) -> Term:
        if self._parser.at_end():
            raise StopIteration
        self._parser.var_cache = {}
        term = self._parser.parse_term(1200)
        token = self._parser.next()
        if token.kind != "end":
            raise ReaderError(
                f"expected '.', found {token.text!r}",
                token.position,
                self._parser.text,
            )
        return term
