"""Prolog term data model.

Terms are immutable values.  The representation follows Edinburgh Prolog:

* :class:`Atom` -- symbolic constants (``foo``, ``[]``, ``'hello world'``).
* :class:`Int` / :class:`Float` -- numeric constants.
* :class:`Var` -- logic variables; the reserved name ``_`` is anonymous.
* :class:`Struct` -- compound terms ``f(t1, ..., tn)`` with ``n >= 1``.

Lists are ordinary compound terms built from the cons functor ``'.'/2`` and
the empty-list atom ``[]``; :func:`make_list` and :func:`list_parts` convert
between Python sequences and cons chains.  This mirrors the CLARE paper's
distinction between *terminated* lists (ending in ``[]``) and *unterminated*
("unlimited") lists ending in a tail variable, e.g. ``[a,b|Tail]``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "Term",
    "Atom",
    "Int",
    "Float",
    "Var",
    "Struct",
    "NIL",
    "CONS",
    "ANONYMOUS",
    "make_list",
    "list_parts",
    "is_list_term",
    "is_proper_list",
    "variables",
    "is_ground",
    "rename_apart",
    "term_depth",
    "term_size",
    "fresh_var",
    "functor_indicator",
]


class Term:
    """Abstract base class for all Prolog terms."""

    __slots__ = ()

    def is_callable(self) -> bool:
        """True for atoms and compound terms (things that can be a goal)."""
        return isinstance(self, (Atom, Struct))


@dataclass(frozen=True, slots=True)
class Atom(Term):
    """A symbolic constant."""

    name: str

    def __str__(self) -> str:
        from .writer import term_to_string

        return term_to_string(self)


@dataclass(frozen=True, slots=True)
class Int(Term):
    """An integer constant."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Float(Term):
    """A floating point constant."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A logic variable, identified by name within one clause/query."""

    name: str

    def is_anonymous(self) -> bool:
        """True for the don't-care variable ``_``."""
        return self.name == "_"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Struct(Term):
    """A compound term ``functor(arg1, ..., argN)`` with arity >= 1."""

    functor: str
    args: tuple[Term, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError(
                f"Struct {self.functor!r} needs at least one argument; "
                "use Atom for arity-0 constants"
            )
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> tuple[str, int]:
        """The predicate indicator ``(name, arity)``."""
        return (self.functor, self.arity)

    def __str__(self) -> str:
        from .writer import term_to_string

        return term_to_string(self)


#: The empty list atom.
NIL = Atom("[]")

#: The list-cons functor name.
CONS = "."

#: The anonymous (don't-care) variable.
ANONYMOUS = Var("_")

_fresh_counter = itertools.count(1)


def fresh_var(prefix: str = "_G") -> Var:
    """Return a variable with a globally unique machine-generated name."""
    return Var(f"{prefix}{next(_fresh_counter)}")


def make_list(items: Sequence[Term] | Iterable[Term], tail: Term = NIL) -> Term:
    """Build a cons-chain list term from ``items`` ending in ``tail``.

    With the default tail this builds a *terminated* list; passing a
    :class:`Var` tail builds an *unterminated* list such as ``[a,b|T]``.
    """
    result = tail
    for item in reversed(list(items)):
        result = Struct(CONS, (item, result))
    return result


def list_parts(term: Term) -> tuple[list[Term], Term]:
    """Split a cons chain into ``(prefix_elements, tail)``.

    For a proper list the tail is ``NIL``; for a partial list it is the
    first non-cons term encountered (usually a variable).  A non-list term
    yields ``([], term)``.
    """
    items: list[Term] = []
    while isinstance(term, Struct) and term.functor == CONS and term.arity == 2:
        items.append(term.args[0])
        term = term.args[1]
    return items, term


def is_list_term(term: Term) -> bool:
    """True if ``term`` is a cons cell or the empty list."""
    if term == NIL:
        return True
    return isinstance(term, Struct) and term.functor == CONS and term.arity == 2


def is_proper_list(term: Term) -> bool:
    """True if ``term`` is a cons chain terminated by ``[]``."""
    _, tail = list_parts(term)
    return tail == NIL


def variables(term: Term) -> list[Var]:
    """All variables in ``term``, in first-occurrence order, without repeats."""
    seen: dict[Var, None] = {}
    _collect_vars(term, seen)
    return list(seen)


def _collect_vars(term: Term, seen: dict[Var, None]) -> None:
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            if current not in seen:
                seen[current] = None
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))


def is_ground(term: Term) -> bool:
    """True if ``term`` contains no variables."""
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            return False
        if isinstance(current, Struct):
            stack.extend(current.args)
    return True


def rename_apart(
    term: Term, suffix: str | None = None, keep_anonymous: bool = False
) -> Term:
    """Return ``term`` with every variable consistently renamed fresh.

    Used to standardise clauses apart before resolution.  Anonymous
    variables each become a distinct fresh variable (``_`` never shares)
    unless ``keep_anonymous`` preserves them (matching treats ``_`` as a
    skip, so renaming it would change filter semantics).
    """
    mapping: dict[Var, Var] = {}

    def rename(t: Term) -> Term:
        if isinstance(t, Var):
            if t.is_anonymous():
                return t if keep_anonymous else fresh_var()
            if t not in mapping:
                if suffix is not None:
                    mapping[t] = Var(f"{t.name}{suffix}")
                else:
                    mapping[t] = fresh_var(f"_{t.name}_")
            return mapping[t]
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(rename(a) for a in t.args))
        return t

    return rename(term)


def freshen_anonymous(term: Term) -> Term:
    """Replace each anonymous-variable occurrence with a distinct fresh var.

    The reader maps every ``_`` to the same :class:`Var` object; resolution
    must treat each occurrence as independent, so goals are freshened
    before solving.
    """
    if isinstance(term, Var):
        return fresh_var("_A") if term.is_anonymous() else term
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(freshen_anonymous(a) for a in term.args))
    return term


def term_depth(term: Term) -> int:
    """Nesting depth: constants/variables are depth 0, ``f(a)`` is 1, etc."""
    if isinstance(term, Struct):
        return 1 + max(term_depth(a) for a in term.args)
    return 0


def term_size(term: Term) -> int:
    """Total number of atomic/variable/functor nodes in the term."""
    size = 0
    stack = [term]
    while stack:
        current = stack.pop()
        size += 1
        if isinstance(current, Struct):
            stack.extend(current.args)
    return size


def functor_indicator(term: Term) -> tuple[str, int]:
    """The ``(name, arity)`` indicator of a callable term."""
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise TypeError(f"term has no functor: {term!r}")


def subterms(term: Term) -> Iterator[Term]:
    """Iterate over every subterm of ``term``, including itself (pre-order)."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Struct):
            stack.extend(reversed(current.args))


TermLike = Union[Term, int, float, str]


def to_term(value: TermLike) -> Term:
    """Coerce a Python scalar to a term (ints, floats, strings->atoms)."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not Prolog terms")
    if isinstance(value, int):
        return Int(value)
    if isinstance(value, float):
        return Float(value)
    if isinstance(value, str):
        return Atom(value)
    raise TypeError(f"cannot convert {value!r} to a term")
