"""Search-mode selection.

"One of these modes will be selected depending on the nature of a query
(e.g. whether it contains cross bound variables) and the knowledge base
(e.g. whether it is rule or fact intensive)" (paper section 2.2).

The heuristics here formalise that sentence:

* memory-resident or tiny predicates are cheapest to scan in software;
* a query with shared (potentially cross-bound) variables is invisible to
  the SCW index, so FS2 must be involved;
* a query with no ground content gains nothing from either filter beyond
  the functor partitioning the clause file already provides — stream
  through FS2 to keep the host out of the loop;
* otherwise the two-stage pipeline wins: FS1 cuts the disk volume, FS2
  cuts the false drops.
"""

from __future__ import annotations

from collections import Counter

from ..storage import PredicateStore, Residency
from ..terms import Struct, Term, Var, is_ground, variables
from .server import SearchMode

__all__ = ["QueryFeatures", "analyse_query", "select_mode", "SOFTWARE_THRESHOLD"]

#: Below this many clauses the fixed costs of driving CLARE dominate.
SOFTWARE_THRESHOLD = 32


class QueryFeatures:
    """Structural features of a goal that drive mode selection."""

    def __init__(self, goal: Term):
        self.goal = goal
        self.ground = is_ground(goal)
        named = [v for v in variables(goal) if not v.is_anonymous()]
        occurrence_counts = Counter()
        if isinstance(goal, Struct):
            stack = list(goal.args)
            while stack:
                term = stack.pop()
                if isinstance(term, Var):
                    if not term.is_anonymous():
                        occurrence_counts[term] += 1
                elif isinstance(term, Struct):
                    stack.extend(term.args)
        self.variable_count = len(named)
        self.shared_variables = sorted(
            (v.name for v, n in occurrence_counts.items() if n > 1)
        )
        self.has_shared_variables = bool(self.shared_variables)
        if isinstance(goal, Struct):
            self.constant_arguments = sum(
                1 for a in goal.args if not isinstance(a, Var)
            )
            self.arity = goal.arity
        else:
            self.constant_arguments = 0
            self.arity = 0

    @property
    def all_variable_arguments(self) -> bool:
        return self.arity > 0 and self.constant_arguments == 0


def analyse_query(goal: Term) -> QueryFeatures:
    """Extract the mode-selection features of one goal."""
    return QueryFeatures(goal)


def select_mode(
    goal: Term, store: PredicateStore, residency: str
) -> SearchMode:
    """Pick the searching mode for one goal against one predicate."""
    features = analyse_query(goal)
    if residency == Residency.MEMORY or len(store) <= SOFTWARE_THRESHOLD:
        return SearchMode.SOFTWARE
    if features.all_variable_arguments and not features.has_shared_variables:
        # Nothing for either filter to reject: everything is a candidate.
        return SearchMode.SOFTWARE
    if features.has_shared_variables:
        # The SCW index cannot see shared variables (the married_couple
        # problem): FS2 is mandatory.  FS1 still helps when the query also
        # carries constants.
        if features.constant_arguments > 0:
            return SearchMode.BOTH
        return SearchMode.FS2_ONLY
    if features.ground and _fact_fraction(store) > 0.9:
        # Fact-intensive predicate, fully ground query: the index alone is
        # highly selective and skips streaming the clause file entirely.
        return SearchMode.FS1_ONLY
    return SearchMode.BOTH


def _fact_fraction(store: PredicateStore) -> float:
    if len(store) == 0:
        return 1.0
    facts = sum(1 for record in store.clause_file if record.is_fact)
    return facts / len(store)
