"""Multi-client access to the CRS.

Each :class:`CRSClient` works inside a transaction: retrievals take
shared locks on the predicates they read, updates take exclusive locks.
A request that must wait raises :class:`WouldBlock` (the simulation is
synchronous — callers decide whether to retry or give up), and deadlocks
abort the requesting transaction per :mod:`repro.crs.concurrency`.
"""

from __future__ import annotations

from ..obs import Instrumentation
from ..terms import Clause, Term, functor_indicator
from .concurrency import Transaction, TransactionManager
from .server import ClauseRetrievalServer, RetrievalResult, SearchMode

__all__ = ["WouldBlock", "CRSClient", "CRSFrontEnd"]


class WouldBlock(RuntimeError):
    """The lock is held in a conflicting mode; retry after the holder ends."""


class CRSClient:
    """One client session: a transaction bound to the shared CRS."""

    def __init__(self, front_end: "CRSFrontEnd", transaction: Transaction):
        self._front_end = front_end
        self.transaction = transaction

    def retrieve(
        self, goal: Term, mode: SearchMode | None = None
    ) -> RetrievalResult:
        indicator = functor_indicator(goal)
        if not self.transaction.read_lock(indicator):
            raise WouldBlock(f"read lock on {indicator} unavailable")
        return self._front_end.server.retrieve(goal, mode=mode)

    def assertz(self, clause: Clause | Term) -> None:
        indicator = _indicator_of(clause)
        if not self.transaction.write_lock(indicator):
            raise WouldBlock(f"write lock on {indicator} unavailable")
        self._front_end.server.kb.assertz(clause)

    def retract(self, clause: Clause | Term) -> bool:
        indicator = _indicator_of(clause)
        if not self.transaction.write_lock(indicator):
            raise WouldBlock(f"write lock on {indicator} unavailable")
        return self._front_end.server.kb.retract(clause)

    def commit(self) -> None:
        self.transaction.commit()

    def abort(self) -> None:
        self.transaction.abort()


class CRSFrontEnd:
    """The shared entry point handing out client sessions."""

    def __init__(
        self, server: ClauseRetrievalServer, obs: Instrumentation | None = None
    ):
        self.server = server
        # Lock/transaction metrics land in the same registry the server
        # uses, so one instrumentation covers the whole multi-client path.
        self.transactions = TransactionManager(
            obs=obs if obs is not None else server.obs
        )

    def connect(self) -> CRSClient:
        return CRSClient(self, self.transactions.begin())


def _indicator_of(clause: Clause | Term) -> tuple[str, int]:
    if isinstance(clause, Clause):
        return clause.indicator
    term = clause
    from ..terms import Struct

    if isinstance(term, Struct) and term.indicator == (":-", 2):
        return functor_indicator(term.args[0])
    return functor_indicator(term)
