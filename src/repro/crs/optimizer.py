"""Conjunctive-query ordering over database predicates.

A PDBM-style system answers conjunctions like ``supplies(S, P),
consumes(P, J)`` by retrieving candidates goal by goal; the candidate
volume — and hence the disk/filter work — depends heavily on goal order.
This planner implements the classic greedy bound-is-better heuristic:

* goals are scored by their estimated candidate count, obtained from a
  *real* FS1 index scan (cheap: the index is in memory and tiny);
* variables bound by already-placed goals count as constants when scoring
  the remaining goals, so joins chain through their shared variables.

Only conjunctions made purely of user database predicates are reordered —
control constructs, builtins and unknown predicates make order
significant, so such conjunctions are returned untouched.  For pure
database goals reordering is sound: the solution *set* is unchanged
(solution order may differ).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage import KnowledgeBase
from ..terms import Struct, Term, Var, functor_indicator, variables

__all__ = ["GoalEstimate", "ConjunctionPlanner"]

#: Indicators that are never database predicates (control + builtins).
_NON_DATABASE = {
    (",", 2), (";", 2), ("->", 2), ("\\+", 1), ("!", 0), ("call", 1),
    ("=", 2), ("is", 2), ("true", 0), ("fail", 0), ("findall", 3),
}


@dataclass(frozen=True)
class GoalEstimate:
    """One goal's scoring snapshot during planning."""

    goal: Term
    candidates: int
    bound_arguments: int


class ConjunctionPlanner:
    """Greedy selectivity-driven goal ordering."""

    def __init__(self, kb: KnowledgeBase):
        self.kb = kb

    # -- public API --------------------------------------------------------

    def order(self, goals: tuple[Term, ...]) -> tuple[Term, ...]:
        """Reorder a pure-database conjunction; otherwise return as-is."""
        if len(goals) < 2 or not all(self._is_database_goal(g) for g in goals):
            return tuple(goals)
        remaining = list(goals)
        bound: set[Var] = set()
        ordered: list[Term] = []
        while remaining:
            best = min(
                remaining,
                key=lambda g: (self.estimate(g, bound).candidates, goals.index(g)),
            )
            remaining.remove(best)
            ordered.append(best)
            bound.update(v for v in variables(best) if not v.is_anonymous())
        return tuple(ordered)

    def explain(self, goals: tuple[Term, ...]) -> list[GoalEstimate]:
        """The estimates for each goal in the chosen order."""
        ordered = self.order(goals)
        bound: set[Var] = set()
        estimates = []
        for goal in ordered:
            estimates.append(self.estimate(goal, bound))
            bound.update(v for v in variables(goal) if not v.is_anonymous())
        return estimates

    # -- scoring --------------------------------------------------------------

    def estimate(self, goal: Term, bound: set[Var]) -> GoalEstimate:
        """Estimated candidates for ``goal`` given already-bound variables."""
        indicator = functor_indicator(goal)
        store = self.kb.store(indicator)
        if not isinstance(goal, Struct):
            return GoalEstimate(goal, len(store), 0)
        bound_arguments = sum(
            1
            for arg in goal.args
            if not isinstance(arg, Var) or arg in bound
        )
        if bound_arguments == 0:
            return GoalEstimate(goal, len(store), 0)
        constants_present = any(not isinstance(a, Var) for a in goal.args)
        if constants_present:
            # Ask the index: a real scan with the goal's constants.
            candidates = len(
                store.index.scan(self.kb.scheme.query_codeword(goal))
            )
        else:
            # Only variable bindings make it selective; assume the join
            # attribute partitions the predicate (uniformity assumption).
            distinct = max(len(store) // 10, 1)
            candidates = max(len(store) // distinct, 1)
        return GoalEstimate(goal, candidates, bound_arguments)

    def _is_database_goal(self, goal: Term) -> bool:
        if not goal.is_callable():
            return False
        indicator = functor_indicator(goal)
        if indicator in _NON_DATABASE:
            return False
        return self.kb.has_predicate(indicator)
