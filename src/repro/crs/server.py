"""The Clause Retrieval Server (CRS).

"An independent software module, the Clause Retrieval Server, is being
developed which links CLARE with the PDBM Prolog system.  In practice,
there will be four searching modes during a clause retrieval:

  (a) By software only — the CRS performs all the search operations itself.
  (b) Using FS1 only — the superimposed codeword hardware.
  (c) Using FS2 only — the partial test unification hardware.
  (d) Using both FS1 and FS2 — a two-stage hardware filter."

The CRS returns *candidate clauses*; the host Prolog system applies full
unification.  Every mode is sound, so all four return supersets of the
true resolvent set and identical final answers — they differ in candidate
volume and in where the time goes, which :class:`RetrievalStats` itemises
using the disk model, the FS1 scan rate, the FS2 Table 1 times, and a
host cost model for the software path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from ..disk import TransferStats
from ..fs2 import SecondStageFilter
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..pif import CompiledClause
from ..pif.clausefile import decode_compiled
from ..scw import FS1Result, FirstStageFilter
from ..storage import KnowledgeBase, PredicateStore, Residency
from ..terms import Clause, Term, functor_indicator, rename_apart
from ..unify import Bindings, PartialMatcher, unify
from ..fs2.result import MAX_SATISFIERS
from .keys import canonical_goal_key

__all__ = [
    "SearchMode",
    "HostCostModel",
    "RetrievalStats",
    "RetrievalResult",
    "RetrievalTimeout",
    "ClauseRetrievalServer",
]


class RetrievalTimeout(TimeoutError):
    """A retrieval exceeded its deadline before completing.

    Raised by the deadline-aware cluster fan-out paths
    (:meth:`repro.cluster.ShardedRetrievalServer.retrieve`,
    :meth:`~repro.cluster.ShardedRetrievalServer.retrieve_batch`,
    :meth:`repro.cluster.BatchExecutor.run`) when a shard cannot be
    acquired — or a fanned-out batch cannot complete — within the
    caller's budget.  The network service layer maps it to a
    ``DEADLINE_EXPIRED`` error frame.
    """


class SearchMode(Enum):
    """The four CRS searching modes (paper section 2.2)."""

    SOFTWARE = "software"
    FS1_ONLY = "fs1"
    FS2_ONLY = "fs2"
    BOTH = "fs1+fs2"


@dataclass(frozen=True)
class HostCostModel:
    """Modelled software costs on the M68020 host.

    The paper gives no host-side figures; these defaults assume a few
    microseconds per interpreted matching step on a mid-1980s 16 MHz
    68020, which is the right order for the shape-level mode comparison
    (the hardware's advantage is orders of magnitude, not percentages).
    """

    software_match_op_ns: int = 5_000
    clause_decode_ns: int = 20_000
    unify_per_candidate_ns: int = 50_000
    memory_scan_per_clause_ns: int = 25_000


@dataclass
class RetrievalStats:
    """Where the time went during one retrieval."""

    mode: SearchMode
    residency: str
    clauses_total: int = 0
    fs1_candidates: int | None = None
    final_candidates: int = 0
    disk_time_s: float = 0.0
    fs1_time_s: float = 0.0
    fs2_time_s: float = 0.0
    fs2_search_calls: int = 0
    software_time_s: float = 0.0
    bytes_from_disk: int = 0

    @property
    def filter_time_s(self) -> float:
        """Retrieval time up to (not including) full unification.

        Hardware filtering overlaps the disk transfer feeding it, so the
        overlapped portion counts once at the slower rate.
        """
        return (
            max(self.disk_time_s, self.fs1_time_s + self.fs2_time_s)
            + self.software_time_s
        )

    @property
    def selectivity(self) -> float:
        """Fraction of the predicate that survived filtering."""
        if self.clauses_total == 0:
            return 0.0
        return self.final_candidates / self.clauses_total


@dataclass
class RetrievalResult:
    """Candidates plus accounting for one goal retrieval."""

    goal: Term
    candidates: list[Clause] = field(default_factory=list)
    stats: RetrievalStats | None = None
    #: clause-file record addresses parallel to ``candidates`` when the
    #: retrieval path knows them (all four modes do); ``None`` for
    #: merged/legacy results.  The shared-memory result transport ships
    #: (address, record bytes) pairs instead of pickled terms, so it
    #: needs the address of every surviving candidate.
    addresses: tuple[int, ...] | None = None

    def __len__(self) -> int:
        return len(self.candidates)


class ClauseRetrievalServer:
    """Retrieve candidate clauses for goals through one of four modes."""

    def __init__(
        self,
        kb: KnowledgeBase,
        cost_model: HostCostModel | None = None,
        cross_binding: bool = True,
        cache_size: int = 0,
        obs: Instrumentation | None = None,
        fs1_mode: str = "bitsliced",
        fs2_mode: str = "compiled",
        decode_cache_size: int = 4096,
        decode_cache_bytes: int = 8 << 20,
    ):
        self.kb = kb
        self.cost_model = cost_model or HostCostModel()
        self.cross_binding = cross_binding
        self.obs = obs if obs is not None else _default_obs()
        self.fs1 = FirstStageFilter(kb.scheme, obs=self.obs, mode=fs1_mode)
        self.fs2 = SecondStageFilter(
            kb.symbols, cross_binding=cross_binding, obs=self.obs, mode=fs2_mode
        )
        self.fs2.load_microprogram()
        # Optional retrieval cache (LRU), invalidated by KB updates.
        # Guarded by a lock: the server itself is stateful (FS1/FS2 are
        # one piece of simulated hardware) and callers serialise whole
        # retrievals, but cache bookkeeping must stay consistent even
        # when a front-end probes it from several client threads.
        from collections import OrderedDict

        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, RetrievalResult]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_version = kb.version
        self.cache_hits = 0
        self.cache_misses = 0
        # Decoded-clause cache, keyed by (clause-file generation, record
        # address).  Records are immutable once appended and mutations
        # replace the whole file (fresh generation), so entries never go
        # stale — the LRU bound just caps memory.  FS2 re-runs over
        # recurring candidate sets skip the PIF re-decode entirely.
        # The cache is bounded by *resident bytes* (each entry charged
        # its serialised record length, a stable proxy for the decoded
        # term graph) so a worker process has a predictable memory
        # ceiling regardless of clause size; ``decode_cache_size`` still
        # caps entries as a secondary bound.
        self.decode_cache_size = decode_cache_size
        self.decode_cache_bytes = decode_cache_bytes
        self._decode_cache: "OrderedDict[tuple[int, int], tuple[Clause, int]]" = (
            OrderedDict()
        )
        self._decode_cache_bytes = 0
        self._decode_lock = threading.Lock()

    # -- public API --------------------------------------------------------

    def retrieve(self, goal: Term, mode: SearchMode | None = None) -> RetrievalResult:
        """All candidate clauses for ``goal`` under the chosen mode.

        With ``cache_size > 0``, repeated retrievals of the same goal are
        served from an LRU cache until the knowledge base changes; cache
        hits report zero filter time (no physical work happened).
        """
        from ..terms import term_to_string
        from .planner import select_mode  # local import avoids a cycle

        with self.obs.span("crs.retrieve", goal=term_to_string(goal)) as span:
            cache_key = None
            version_snapshot = None
            if self.cache_size > 0:
                cache_key = (canonical_goal_key(goal), mode)
                cached, version_snapshot = self._cache_probe(cache_key)
                if cached is not None:
                    hit = self._cache_hit_view(cached)
                    span.set(cache="hit", candidates=len(hit.candidates))
                    # Hits count as retrievals (as in QueryStats); the
                    # view's zeroed times keep the sim counters honest.
                    self._account_retrieval(hit)
                    return hit
            indicator = functor_indicator(goal)
            store = self.kb.store(indicator)
            residency = self.kb.residency(indicator)
            if mode is None:
                mode = select_mode(goal, store, residency)
            result = self._dispatch(goal, store, residency, mode)
            if cache_key is not None:
                self._cache_insert(cache_key, version_snapshot, result)
            span.set(
                mode=mode.value,
                residency=residency,
                clauses=result.stats.clauses_total if result.stats else 0,
                candidates=len(result.candidates),
            )
            self._account_retrieval(result)
            return result

    def retrieve_batch(
        self, goals: list[Term], mode: SearchMode | None = None
    ) -> list[RetrievalResult]:
        """Candidates for many goals, amortising FS1 index passes.

        Results come back in input order and are element-wise identical
        to ``[self.retrieve(g, mode) for g in goals]`` — same candidate
        sets, same per-goal simulated accounting, same cache behaviour.
        The difference is host wall clock: goals of the same predicate
        whose planned mode involves FS1 are evaluated as one *batched*
        bit-sliced scan (every distinct signature column the batch needs
        is loaded once), and the query-codeword and decoded-clause
        caches do the rest.
        """
        from ..terms import term_to_string
        from .planner import select_mode  # local import avoids a cycle

        results: list[RetrievalResult | None] = [None] * len(goals)
        # (index, goal, store, residency, mode, cache_key, snapshot)
        planned: list[tuple] = []
        with self.obs.span("crs.retrieve_batch", goals=len(goals)):
            for position, goal in enumerate(goals):
                cache_key = version_snapshot = None
                if self.cache_size > 0:
                    cache_key = (canonical_goal_key(goal), mode)
                    cached, version_snapshot = self._cache_probe(cache_key)
                    if cached is not None:
                        hit = self._cache_hit_view(cached)
                        self._account_retrieval(hit)
                        results[position] = hit
                        continue
                indicator = functor_indicator(goal)
                store = self.kb.store(indicator)
                residency = self.kb.residency(indicator)
                effective = (
                    mode if mode is not None
                    else select_mode(goal, store, residency)
                )
                planned.append(
                    (position, goal, store, residency, effective,
                     cache_key, version_snapshot)
                )
            # Group FS1-involving goals by predicate: one batched scan
            # per (indicator, mode) group; everything else runs solo.
            groups: dict[tuple, list[tuple]] = {}
            for plan in planned:
                _, _, store, _, effective, _, _ = plan
                if effective in (SearchMode.FS1_ONLY, SearchMode.BOTH):
                    groups.setdefault(
                        (store.indicator, effective), []
                    ).append(plan)
                else:
                    groups.setdefault((id(plan), None), []).append(plan)
            for members in groups.values():
                fs1_results: list[FS1Result | None] = [None] * len(members)
                if len(members) > 1:
                    store = members[0][2]
                    fs1_results = list(self.fs1.search_batch(
                        store.index, [plan[1] for plan in members]
                    ))
                for plan, fs1_result in zip(members, fs1_results):
                    (position, goal, store, residency, effective,
                     cache_key, version_snapshot) = plan
                    with self.obs.span(
                        "crs.retrieve", goal=term_to_string(goal), batch="1"
                    ) as span:
                        result = self._dispatch(
                            goal, store, residency, effective,
                            fs1_result=fs1_result,
                        )
                        span.set(
                            mode=effective.value,
                            residency=residency,
                            clauses=(
                                result.stats.clauses_total
                                if result.stats else 0
                            ),
                            candidates=len(result.candidates),
                        )
                    if cache_key is not None:
                        self._cache_insert(cache_key, version_snapshot, result)
                    self._account_retrieval(result)
                    results[position] = result
        return results  # type: ignore[return-value]

    def _dispatch(
        self,
        goal: Term,
        store: PredicateStore,
        residency: str,
        mode: SearchMode,
        fs1_result: "FS1Result | None" = None,
    ) -> RetrievalResult:
        """Run one retrieval through its mode handler.

        ``fs1_result`` carries a precomputed (batched) FS1 scan into the
        FS1-involving handlers; the other modes ignore it.
        """
        if mode is SearchMode.FS1_ONLY:
            return self._retrieve_fs1(goal, store, residency, fs1_result)
        if mode is SearchMode.BOTH:
            return self._retrieve_both(goal, store, residency, fs1_result)
        if mode is SearchMode.FS2_ONLY:
            return self._retrieve_fs2(goal, store, residency)
        return self._retrieve_software(goal, store, residency)

    def _cache_probe(
        self, cache_key: tuple
    ) -> tuple[RetrievalResult | None, int]:
        """Look up the retrieval LRU; returns (hit, version snapshot)."""
        with self._cache_lock:
            if self.kb.version != self._cache_version:
                self._cache.clear()
                self._cache_version = self.kb.version
            version_snapshot = self._cache_version
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        if cached is not None:
            self.obs.counter("crs.cache.hits").inc()
        else:
            self.obs.counter("crs.cache.misses").inc()
        return cached, version_snapshot

    def _cache_insert(
        self, cache_key: tuple, version_snapshot: int | None,
        result: RetrievalResult,
    ) -> None:
        with self._cache_lock:
            # A KB update during the retrieval makes this result stale;
            # insert only while the version this thread started from
            # still holds.  The comparison is against the
            # start-of-retrieval snapshot, not the current
            # ``_cache_version``: the version counter is monotonic, so
            # equality proves no update intervened (comparing the moving
            # ``_cache_version`` would re-admit a stale result after
            # another thread re-synced it past an update).
            if self.kb.version == version_snapshot:
                self._cache[cache_key] = result
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)

    def _account_retrieval(self, result: RetrievalResult) -> None:
        stats = result.stats
        if stats is None:
            return
        obs = self.obs
        obs.counter("crs.retrievals", mode=stats.mode.value).inc()
        obs.counter("crs.clauses_scanned").inc(stats.clauses_total)
        obs.counter("crs.candidates_returned").inc(stats.final_candidates)
        obs.counter("crs.fs2_search_calls").inc(stats.fs2_search_calls)
        obs.counter("crs.sim_filter_time_s").inc(stats.filter_time_s)
        obs.histogram("crs.candidates").observe(stats.final_candidates)
        obs.histogram(
            "crs.selectivity",
            buckets=(0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        ).observe(stats.selectivity)

    @staticmethod
    def _cache_hit_view(result: RetrievalResult) -> RetrievalResult:
        """A cached result: same candidates, no physical retrieval cost."""
        original = result.stats
        stats = None
        if original is not None:
            stats = RetrievalStats(
                mode=original.mode,
                residency=original.residency,
                clauses_total=original.clauses_total,
                fs1_candidates=original.fs1_candidates,
                final_candidates=original.final_candidates,
            )
        return RetrievalResult(
            goal=result.goal,
            candidates=list(result.candidates),
            stats=stats,
            addresses=result.addresses,
        )

    def solutions(
        self, goal: Term, mode: SearchMode | None = None
    ) -> list[tuple[Clause, Bindings]]:
        """Full unification over the candidates: the true resolvent set."""
        result = self.retrieve(goal, mode=mode)
        matches = []
        for clause in result.candidates:
            renamed_head = rename_apart(clause.head, keep_anonymous=False)
            bindings = unify(goal, renamed_head)
            if bindings is not None:
                matches.append((clause, bindings))
        # Ground truth is available here: candidates that failed full
        # unification are the pipeline's end-to-end false drops.
        self.obs.counter("crs.true_matches").inc(len(matches))
        self.obs.counter("crs.false_drops").inc(
            len(result.candidates) - len(matches)
        )
        return matches

    # -- mode (a): software only ----------------------------------------------

    def _retrieve_software(
        self, goal: Term, store: PredicateStore, residency: str
    ) -> RetrievalResult:
        stats = RetrievalStats(mode=SearchMode.SOFTWARE, residency=residency)
        stats.clauses_total = len(store)
        if residency == Residency.DISK:
            _, transfer = self._read_clause_extent(store)
            stats.disk_time_s = transfer.total_time_s
            stats.bytes_from_disk = transfer.bytes_transferred
        with self.obs.span(
            "software.scan", indicator=f"{store.indicator[0]}/{store.indicator[1]}"
        ) as span:
            matcher = PartialMatcher(goal, cross_binding=self.cross_binding)
            record_addresses = store.clause_file.record_addresses()
            candidates = []
            hit_addresses = []
            total_ops = 0
            for position in range(len(store)):
                clause = store.clause_file.decode_clause(position)
                outcome = matcher.match_head(clause.head)
                total_ops += outcome.op_count()
                if outcome.hit:
                    candidates.append(clause)
                    hit_addresses.append(record_addresses[position])
            model = self.cost_model
            stats.software_time_s = (
                stats.clauses_total * model.clause_decode_ns
                + total_ops * model.software_match_op_ns
            ) / 1e9
            span.set(
                clauses=stats.clauses_total,
                candidates=len(candidates),
                match_ops=total_ops,
                sim_time_s=stats.software_time_s,
            )
        self.obs.counter("software.scans").inc()
        self.obs.counter("software.clauses_matched").inc(stats.clauses_total)
        self.obs.counter("software.match_ops").inc(total_ops)
        self.obs.counter("software.sim_time_s").inc(stats.software_time_s)
        stats.final_candidates = len(candidates)
        return RetrievalResult(
            goal=goal,
            candidates=candidates,
            stats=stats,
            addresses=tuple(hit_addresses),
        )

    # -- mode (b): FS1 only -----------------------------------------------------

    def _retrieve_fs1(
        self,
        goal: Term,
        store: PredicateStore,
        residency: str,
        fs1_result: FS1Result | None = None,
    ) -> RetrievalResult:
        stats = RetrievalStats(mode=SearchMode.FS1_ONLY, residency=residency)
        stats.clauses_total = len(store)
        if fs1_result is None:
            fs1_result = self.fs1.search(store.index, goal)
        stats.fs1_time_s = fs1_result.scan_time_s
        stats.fs1_candidates = fs1_result.candidate_count
        records, transfer = self._fetch_records(
            store, fs1_result.candidate_addresses, residency
        )
        stats.disk_time_s = transfer.total_time_s
        stats.bytes_from_disk = transfer.bytes_transferred
        # The index itself streams from disk when the predicate is disk
        # resident; the FS1 matches on the fly, so the scan is bounded by
        # the slower of the index transfer and the FS1 rate.
        if residency == Residency.DISK:
            index_transfer = self.kb.disk.drive.read_time_s(store.index.size_bytes())
            stats.disk_time_s += max(0.0, index_transfer - stats.fs1_time_s)
            stats.bytes_from_disk += store.index.size_bytes()
        candidates = [
            self._decode_record(store, record, address)
            for record, address in zip(
                records, fs1_result.candidate_addresses
            )
        ]
        stats.final_candidates = len(candidates)
        return RetrievalResult(
            goal=goal,
            candidates=candidates,
            stats=stats,
            addresses=tuple(fs1_result.candidate_addresses),
        )

    # -- mode (c): FS2 only -------------------------------------------------------

    def _retrieve_fs2(
        self, goal: Term, store: PredicateStore, residency: str
    ) -> RetrievalResult:
        stats = RetrievalStats(mode=SearchMode.FS2_ONLY, residency=residency)
        stats.clauses_total = len(store)
        # Lazy feed: records stream into the FS2 chunker one at a time
        # (memoryview slices when the clause file is segment-backed), so
        # a full-predicate scan never materialises the record list.
        records = (
            store.clause_file.record_bytes(i) for i in range(len(store))
        )
        addresses = store.clause_file.record_addresses()
        if residency == Residency.DISK:
            _, transfer = self._read_clause_extent(store)
            stats.disk_time_s = transfer.total_time_s
            stats.bytes_from_disk = transfer.bytes_transferred
        candidates, hit_addresses = self._stream_through_fs2(
            goal, store, records, stats, addresses
        )
        stats.final_candidates = len(candidates)
        return RetrievalResult(
            goal=goal,
            candidates=candidates,
            stats=stats,
            addresses=hit_addresses,
        )

    # -- mode (d): FS1 + FS2 -------------------------------------------------------

    def _retrieve_both(
        self,
        goal: Term,
        store: PredicateStore,
        residency: str,
        fs1_result: FS1Result | None = None,
    ) -> RetrievalResult:
        stats = RetrievalStats(mode=SearchMode.BOTH, residency=residency)
        stats.clauses_total = len(store)
        if fs1_result is None:
            fs1_result = self.fs1.search(store.index, goal)
        stats.fs1_time_s = fs1_result.scan_time_s
        stats.fs1_candidates = fs1_result.candidate_count
        records, transfer = self._fetch_records(
            store, fs1_result.candidate_addresses, residency
        )
        stats.disk_time_s = transfer.total_time_s
        stats.bytes_from_disk = transfer.bytes_transferred
        if residency == Residency.DISK:
            index_transfer = self.kb.disk.drive.read_time_s(store.index.size_bytes())
            stats.disk_time_s += max(0.0, index_transfer - stats.fs1_time_s)
            stats.bytes_from_disk += store.index.size_bytes()
        candidates, hit_addresses = self._stream_through_fs2(
            goal, store, records, stats,
            list(fs1_result.candidate_addresses),
        )
        stats.final_candidates = len(candidates)
        # FS2 refined FS1's candidate set: the difference is FS1's false
        # drops relative to level-3 partial unification.
        self.obs.counter("fs1.false_drops").inc(
            (stats.fs1_candidates or 0) - stats.final_candidates
        )
        return RetrievalResult(
            goal=goal,
            candidates=candidates,
            stats=stats,
            addresses=hit_addresses,
        )

    # -- shared plumbing -------------------------------------------------------------

    def _stream_through_fs2(
        self,
        goal: Term,
        store: PredicateStore,
        records: "Iterable[bytes]",
        stats: RetrievalStats,
        addresses: list[int] | None = None,
    ) -> tuple[list[Clause], tuple[int, ...] | None]:
        """Run records through FS2 in track-sized search calls.

        ``records`` may be any iterable (lazy generators from the FS1
        survivor enumeration or a segment-backed clause file stream
        straight through without an intermediate list).  ``addresses``
        (parallel to ``records``) lets surviving records decode through
        the clause cache.  The Result Memory records the in-call stream
        position of every captured slot, so each result record maps back
        to its address by a direct index — O(results) per call, not
        O(call x results).  Returns the surviving clauses plus their
        record addresses (``None`` when the caller supplied none).
        """
        self.fs2.set_query(goal)
        track_bytes = self.kb.disk.drive.geometry.track_bytes
        candidates: list[Clause] = []
        hit_addresses: list[int] = []
        call: list[bytes] = []
        call_addresses: list[int] = []
        call_bytes = 0

        def flush() -> None:
            nonlocal call, call_addresses, call_bytes
            if not call:
                return
            search_stats = self.fs2.search(call, indicator=store.indicator)
            stats.fs2_time_s += search_stats.op_time_ns / 1e9
            stats.fs2_search_calls += 1
            positions = self.fs2.result.satisfier_positions()
            for slot, record in enumerate(self.fs2.read_results()):
                address = None
                if addresses is not None:
                    address = call_addresses[positions[slot]]
                    hit_addresses.append(address)
                candidates.append(self._decode_record(store, record, address))
            call = []
            call_addresses = []
            call_bytes = 0
            self.fs2.rearm()  # reset the Result Memory, keep the query

        for position, record in enumerate(records):
            if call and (
                call_bytes + len(record) > track_bytes
                or len(call) >= MAX_SATISFIERS
            ):
                flush()
            call.append(record)
            if addresses is not None:
                call_addresses.append(addresses[position])
            call_bytes += len(record)
        flush()
        if addresses is None:
            return candidates, None
        return candidates, tuple(hit_addresses)

    def _read_clause_extent(
        self, store: PredicateStore
    ) -> tuple[bytes, TransferStats]:
        self._ensure_on_disk(store)
        return self.kb.disk.read_extent(store.extent_name())

    def _fetch_records(
        self,
        store: PredicateStore,
        addresses: tuple[int, ...],
        residency: str,
    ) -> "tuple[Iterable[bytes], TransferStats]":
        """Fetch candidate records by address (selective disk reads).

        Record spans come from the clause file's incrementally-maintained
        address table, so the cost is O(candidates) — the "selective" FS1
        path no longer re-serialises every record of the predicate on
        every retrieval.  The memory-resident path yields records lazily
        (zero-copy memoryviews for segment-backed clause files) so the
        FS1→FS2 hand-off never builds an intermediate record list.
        """
        spans = [store.clause_file.record_span(a) for a in addresses]
        if residency == Residency.DISK:
            self._ensure_on_disk(store)
            offsets = [
                (address, length)
                for address, (_, length) in zip(addresses, spans)
            ]
            record_iter, transfer = self.kb.disk.stream_records(
                store.extent_name(), offsets
            )
            return list(record_iter), transfer
        records = (
            store.clause_file.record_bytes(position) for position, _ in spans
        )
        return records, TransferStats()

    def _ensure_on_disk(self, store: PredicateStore) -> None:
        """Write (or *re*write) the predicate's extents when stale.

        Staleness is judged by the knowledge base's per-predicate
        freshness key — (clause-file generation, clause count) at the
        last extent write.  An assert or retract during resolution
        changes the key, so the next disk-path retrieval rewrites the
        extents before slicing candidate records out of them; without
        this, the current address table would be applied to the *old*
        extent bytes and later choice points could be fed stale or
        corrupt candidates.
        """
        current = self.kb.disk_sync_key(store.indicator)
        if (
            self.kb.disk_synced_key(store.indicator) == current
            and store.extent_name() in self.kb.disk
            and store.index_extent_name() in self.kb.disk
        ):
            return
        self.kb.disk.write_extent(store.extent_name(), store.clause_file.to_bytes())
        self.kb.disk.write_extent(
            store.index_extent_name(), store.index.to_bytes()
        )
        self.kb.mark_disk_synced(store.indicator)

    def _decode_record(
        self, store: PredicateStore, record: bytes, address: int | None = None
    ) -> Clause:
        """Decode one candidate record, through the decoded-clause cache.

        The key is (clause-file generation, record address): addresses
        are stable under append and every other mutation replaces the
        file under a fresh generation, so a cached decode can never be
        served for changed bytes.
        """
        if address is None or self.decode_cache_size <= 0:
            compiled, _ = CompiledClause.from_bytes(record, store.indicator)
            return decode_compiled(compiled, self.kb.symbols)
        key = (store.clause_file.generation, address)
        with self._decode_lock:
            entry = self._decode_cache.get(key)
            if entry is not None:
                self._decode_cache.move_to_end(key)
        if entry is not None:
            self.obs.counter("crs.decode_cache.hits").inc()
            return entry[0]
        self.obs.counter("crs.decode_cache.misses").inc()
        compiled, _ = CompiledClause.from_bytes(record, store.indicator)
        clause = decode_compiled(compiled, self.kb.symbols)
        cost = len(record)
        with self._decode_lock:
            self._decode_cache[key] = (clause, cost)
            self._decode_cache_bytes += cost
            while self._decode_cache and (
                self._decode_cache_bytes > self.decode_cache_bytes
                or len(self._decode_cache) > self.decode_cache_size
            ):
                _, (_, evicted) = self._decode_cache.popitem(last=False)
                self._decode_cache_bytes -= evicted
            self.obs.gauge("crs.decode_cache.bytes").set(self._decode_cache_bytes)
        return clause


#: Backwards-compatible alias; the canonicalisation lives in
#: :mod:`repro.crs.keys` so the cache and the cluster shard router share
#: one definition of goal identity.
_canonical_goal_key = canonical_goal_key
