"""The Clause Retrieval Server: four search modes, planning, concurrency."""

from .client import CRSClient, CRSFrontEnd, WouldBlock
from .concurrency import (
    DeadlockError,
    LockManager,
    LockMode,
    Transaction,
    TransactionAborted,
    TransactionManager,
)
from .keys import canonical_goal_key, constant_index_key, first_arg_index_key
from .optimizer import ConjunctionPlanner, GoalEstimate
from .planner import QueryFeatures, analyse_query, select_mode
from .server import (
    ClauseRetrievalServer,
    HostCostModel,
    RetrievalResult,
    RetrievalStats,
    RetrievalTimeout,
    SearchMode,
)

__all__ = [
    "CRSClient",
    "CRSFrontEnd",
    "ClauseRetrievalServer",
    "ConjunctionPlanner",
    "DeadlockError",
    "GoalEstimate",
    "HostCostModel",
    "LockManager",
    "LockMode",
    "QueryFeatures",
    "RetrievalResult",
    "RetrievalStats",
    "RetrievalTimeout",
    "SearchMode",
    "Transaction",
    "TransactionAborted",
    "TransactionManager",
    "WouldBlock",
    "analyse_query",
    "canonical_goal_key",
    "constant_index_key",
    "first_arg_index_key",
    "select_mode",
]
