"""Canonical goal keys shared by the retrieval cache and shard routing.

Two retrievals are the same retrieval exactly when their goals have the
same constants and the same variable-sharing pattern: the candidate set
of ``p(_G1, a)`` equals that of ``p(_G7, a)``, while ``p(X, X)`` and
``p(X, Y)`` are different retrievals (the shared variable constrains
both arguments).  :func:`canonical_goal_key` captures precisely that
equivalence as a hashable structural value.

The same canonicalisation drives shard routing
(:mod:`repro.cluster.routing`): a ground goal's routing key is derived
from the identical canonical encoding its cache key uses, so a cluster
front-end can never cache under one identity and route under another.

The keys are *structural* (nested tuples with type tags), not rendered
strings — a quoted atom spelled like a renamed variable, or an integer
spelled like a float, can never collide with one.  Numeric edge case:
``-0.0 == 0.0`` for unification (and the FS1 codeword hash normalises
them identically), so both canonicalise to ``0.0``; ``1`` and ``1.0``
do *not* unify and keep distinct type tags.
"""

from __future__ import annotations

from ..terms import CONS, NIL, Atom, Float, Int, Struct, Term, Var
from ..unify.match import INLINE_ARITY_LIMIT

__all__ = [
    "canonical_goal_key",
    "constant_index_key",
    "first_arg_index_key",
]

GoalKey = tuple


def canonical_goal_key(goal: Term) -> GoalKey:
    """A hashable key equal for goals that are the same retrieval.

    Variables are numbered in first-occurrence order; each anonymous
    ``_`` occurrence is a fresh singleton (a variable that never recurs
    always passes partial matching regardless of its name, so ``p(_, a)``
    and ``p(X, a)`` with X a singleton canonicalise identically, while
    ``p(X, X)`` keeps its sharing pattern distinct from ``p(X, Y)``).
    """
    mapping: dict[str, int] = {}
    counter = 0

    def fresh() -> int:
        nonlocal counter
        index = counter
        counter += 1
        return index

    def encode(term: Term) -> GoalKey:
        if isinstance(term, Var):
            if term.is_anonymous():
                return ("v", fresh())
            if term.name not in mapping:
                mapping[term.name] = fresh()
            return ("v", mapping[term.name])
        if isinstance(term, Struct):
            return ("s", term.functor, tuple(encode(a) for a in term.args))
        return constant_index_key(term)

    return encode(goal)


def constant_index_key(term: Term) -> GoalKey:
    """The canonical encoding of one non-variable constant.

    Shared by the cache key (leaf encoding) and the first-argument
    routing key, so the two always agree on what a ground argument *is*.
    """
    if isinstance(term, Atom):
        return ("a", term.name)
    if isinstance(term, Int):
        return ("i", term.value)
    if isinstance(term, Float):
        # -0.0 == 0.0 must key identically (they unify, and the FS1
        # codeword already normalises them to one hash).
        value = 0.0 if term.value == 0 else term.value
        return ("f", repr(value))
    raise TypeError(f"not an indexable constant: {term!r}")


def first_arg_index_key(callable_term: Term) -> GoalKey | None:
    """The principal-functor key of a callable term's first argument.

    This is the classic first-argument index key (B-Prolog style): an
    atomic first argument keys on its value, a compound one on its
    ``functor/arity`` alone (``f(a)`` and ``f(X)`` share a key — they
    may unify).  Returns ``None`` when no index key exists: a variable
    first argument, or an arity-0 goal.

    Routing soundness must hold against *level-3 partial matching*, not
    just unification: a shard skipped by the key must hold no clause the
    FS2/software filter would accept, or the sharded candidate set would
    shrink below the single engine's.  Level 3 accepts strictly more
    than unification does, and the key mirrors its two conservative
    spots (:mod:`repro.unify.match`):

    * every list-category term — ``[]`` included — shares one ``("l",)``
      key, because the hardware's repetitive list matching lets an open
      list absorb any length difference (``[]`` passes ``[[]|X]``);
    * structure arities saturate at the 5-bit tag limit: two
      pointer-represented structures of the same functor are
      tag-indistinguishable whatever their true arities.

    The guarantee: if a clause head's first argument can *pass the
    filter* against the goal's, their keys are equal or one is ``None``.
    """
    if not isinstance(callable_term, Struct):
        return None
    first = callable_term.args[0]
    if isinstance(first, Var):
        return None
    if isinstance(first, Struct):
        if first.functor == CONS and first.arity == 2:
            return ("l",)
        return ("s", first.functor, min(first.arity, INLINE_ARITY_LIMIT + 1))
    if isinstance(first, Atom) and first == NIL:
        return ("l",)
    return constant_index_key(first)
