"""Concurrency control for multi-client clause retrieval.

"The CRS will also support simultaneous access by multiple clients which
involves procedures for concurrency control and transaction handling"
(paper section 2.2).  The model is classic strict two-phase locking at
predicate granularity: retrievals take shared locks, updates take
exclusive locks, everything is released at commit/abort, and a wait-for
graph detects deadlocks the moment a blocking edge would close a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable

from ..obs import Instrumentation
from ..obs import get_default as _default_obs

__all__ = [
    "LockMode",
    "DeadlockError",
    "TransactionAborted",
    "LockManager",
    "Transaction",
    "TransactionManager",
]

Resource = Hashable


class LockMode(Enum):
    """Shared (read) or exclusive (write) lock."""

    SHARED = "S"
    EXCLUSIVE = "X"


class DeadlockError(RuntimeError):
    """Granting this lock would close a wait-for cycle."""

    def __init__(self, cycle: list[int]):
        super().__init__(f"deadlock among transactions {cycle}")
        self.cycle = cycle


class TransactionAborted(RuntimeError):
    """Operation on a transaction that is no longer active."""


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Predicate-granularity shared/exclusive locks with deadlock detection."""

    def __init__(self, obs: Instrumentation | None = None) -> None:
        self.obs = obs if obs is not None else _default_obs()
        self._locks: dict[Resource, _LockState] = {}
        self._waits_for: dict[int, set[int]] = {}

    def acquire(self, txn_id: int, resource: Resource, mode: LockMode) -> bool:
        """Try to take a lock; returns False if the caller must wait.

        Grants are queue-fair: a *new* request — even a SHARED one that is
        compatible with every current holder — waits behind any queued
        conflicting request, so a writer waiting on a popular predicate is
        never starved by a stream of late-arriving readers.  Upgrades
        (SHARED holder requesting EXCLUSIVE) bypass the queue, as a queued
        upgrade could never be granted while its own SHARED lock blocks
        the waiters ahead of it.

        Registering the wait first runs deadlock detection — a cycle
        raises :class:`DeadlockError` instead of queueing.
        """
        state = self._locks.setdefault(resource, _LockState())
        held = state.holders.get(txn_id)
        if held is not None and not self._stronger(mode, held):
            return True  # already holds an adequate lock
        upgrading = held is not None
        queue_blockers = (
            set() if upgrading else self._conflicting_waiters(state, txn_id, mode)
        )
        if self._compatible(state, txn_id, mode) and not queue_blockers:
            state.holders[txn_id] = mode
            self._waits_for.pop(txn_id, None)
            self.obs.counter("locks.acquired", mode=mode.value).inc()
            return True
        blockers = {
            holder
            for holder, holder_mode in state.holders.items()
            if holder != txn_id and self._conflicts(mode, holder_mode)
        } | queue_blockers
        self._waits_for.setdefault(txn_id, set()).update(blockers)
        cycle = self._find_cycle(txn_id)
        if cycle is not None:
            self._waits_for[txn_id] -= blockers
            if not self._waits_for[txn_id]:
                del self._waits_for[txn_id]
            self.obs.counter("locks.deadlocks").inc()
            raise DeadlockError(cycle)
        if (txn_id, mode) not in state.waiters:
            state.waiters.append((txn_id, mode))
            self.obs.counter("locks.waits", mode=mode.value).inc()
        return False

    def release_all(self, txn_id: int) -> list[Resource]:
        """Drop the transaction's locks and queued requests.

        Returns every resource whose state changed (a lock was released
        *or* a queued request withdrawn) — all of them need a
        :meth:`retry_waiters` pass, since removing a queued EXCLUSIVE
        request can unblock SHARED waiters queued behind it.
        """
        touched = []
        for resource, state in self._locks.items():
            changed = False
            if txn_id in state.holders:
                del state.holders[txn_id]
                changed = True
            remaining = [(t, m) for t, m in state.waiters if t != txn_id]
            if len(remaining) != len(state.waiters):
                state.waiters = remaining
                changed = True
            if changed:
                touched.append(resource)
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)
        return touched

    def holders(self, resource: Resource) -> dict[int, LockMode]:
        state = self._locks.get(resource)
        return dict(state.holders) if state else {}

    def waiters(self, resource: Resource) -> list[tuple[int, LockMode]]:
        state = self._locks.get(resource)
        return list(state.waiters) if state else []

    def retry_waiters(self, resource: Resource) -> list[int]:
        """Grant queued requests that are now compatible, in FIFO order.

        A waiter is granted only if no *conflicting* waiter remains ahead
        of it in the queue: a SHARED request queued behind an EXCLUSIVE
        one keeps waiting even when the holders alone would admit it.
        Upgrades bypass the queue-order check (as in :meth:`acquire`) —
        an upgrader's own SHARED lock blocks the waiters ahead of it, so
        queue-blocking it would wedge the resource.
        """
        state = self._locks.get(resource)
        if state is None:
            return []
        granted = []
        still_waiting: list[tuple[int, LockMode]] = []
        for txn_id, mode in state.waiters:
            blocked_by_queue = txn_id not in state.holders and any(
                t != txn_id and self._conflicts(mode, m) for t, m in still_waiting
            )
            if not blocked_by_queue and self._compatible(state, txn_id, mode):
                state.holders[txn_id] = mode
                self._waits_for.pop(txn_id, None)
                granted.append(txn_id)
                self.obs.counter("locks.acquired", mode=mode.value).inc()
                self.obs.counter("locks.waiter_grants").inc()
            else:
                still_waiting.append((txn_id, mode))
        state.waiters = still_waiting
        return granted

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _stronger(a: LockMode, b: LockMode) -> bool:
        return a == LockMode.EXCLUSIVE and b == LockMode.SHARED

    @staticmethod
    def _conflicts(requested: LockMode, held: LockMode) -> bool:
        return requested == LockMode.EXCLUSIVE or held == LockMode.EXCLUSIVE

    def _conflicting_waiters(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> set[int]:
        """Queued requests from other transactions that conflict with ours."""
        return {
            waiter
            for waiter, waiting_mode in state.waiters
            if waiter != txn_id and self._conflicts(mode, waiting_mode)
        }

    def _compatible(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        for holder, held in state.holders.items():
            if holder == txn_id:
                continue
            if self._conflicts(mode, held):
                return False
        return True

    def _find_cycle(self, start: int) -> list[int] | None:
        path: list[int] = []
        visited: set[int] = set()

        def visit(node: int) -> list[int] | None:
            if node in path:
                return path[path.index(node) :]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for successor in self._waits_for.get(node, ()):
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        return visit(start)


class Transaction:
    """One client's unit of work under strict two-phase locking."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self._manager = manager
        self.active = True

    def read_lock(self, resource: Resource) -> bool:
        return self._acquire(resource, LockMode.SHARED)

    def write_lock(self, resource: Resource) -> bool:
        return self._acquire(resource, LockMode.EXCLUSIVE)

    def _acquire(self, resource: Resource, mode: LockMode) -> bool:
        if not self.active:
            raise TransactionAborted(f"transaction {self.txn_id} is finished")
        try:
            return self._manager.locks.acquire(self.txn_id, resource, mode)
        except DeadlockError:
            self._manager.abort(self)
            raise

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)


class TransactionManager:
    """Issues transactions and runs the release/retry cycle."""

    def __init__(self, obs: Instrumentation | None = None) -> None:
        self.obs = obs if obs is not None else _default_obs()
        self.locks = LockManager(obs=self.obs)
        self._next_id = 1
        self._active: set[int] = set()

    def begin(self) -> Transaction:
        txn = Transaction(self._next_id, self)
        self._active.add(self._next_id)
        self._next_id += 1
        self.obs.counter("txn.begun").inc()
        self.obs.gauge("txn.active").set(len(self._active))
        return txn

    def commit(self, txn: Transaction) -> None:
        self._finish(txn, "txn.commits")

    def abort(self, txn: Transaction) -> None:
        self._finish(txn, "txn.aborts")

    def _finish(self, txn: Transaction, outcome_counter: str) -> None:
        if not txn.active:
            return
        txn.active = False
        self._active.discard(txn.txn_id)
        self.obs.counter(outcome_counter).inc()
        self.obs.gauge("txn.active").set(len(self._active))
        for resource in self.locks.release_all(txn.txn_id):
            self.locks.retry_waiters(resource)

    @property
    def active_count(self) -> int:
        return len(self._active)
