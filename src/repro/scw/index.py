"""The secondary index file: codewords + mask bits + clause addresses.

"For fast searching in large files, codewords are generated for facts and
rule heads and these are maintained in a secondary file.  The secondary
file is effectively an index table associating codewords with clause
addresses" (paper section 2.1).  Scanning this file is much cheaper than
scanning the compiled clause file itself — the size ratio is one of the
reproduction's benchmarks (E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..pif.clausefile import ClauseFile
from ..terms import Term
from .bitsliced import BitSlicedIndex
from .codeword import Codeword, CodewordScheme
from .vector import VectorSlicedIndex

__all__ = ["IndexEntry", "SecondaryIndexFile"]

ADDRESS_BYTES = 4


@dataclass(frozen=True)
class IndexEntry:
    """One index record: the clause's codeword and its disk address."""

    codeword: Codeword
    address: int


class SecondaryIndexFile:
    """The SCW+MB index for one compiled clause file."""

    def __init__(self, scheme: CodewordScheme, indicator: tuple[str, int]):
        self.scheme = scheme
        self.indicator = indicator
        self._entries: list[IndexEntry] = []
        # The columnar views (big-int bit-sliced and word-array vector)
        # are built lazily on first use and then maintained incrementally
        # by :meth:`add`, so append-heavy loads pay nothing until a
        # columnar scan actually happens.
        self._bitsliced: BitSlicedIndex | None = None
        self._vector: VectorSlicedIndex | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[IndexEntry]:
        return iter(self._entries)

    def add(self, head: Term, address: int) -> IndexEntry:
        """Index one clause head at the given clause-file address."""
        entry = IndexEntry(self.scheme.clause_codeword(head), address)
        self._entries.append(entry)
        if self._bitsliced is not None:
            self._bitsliced.add(entry.codeword, entry.address)
        if self._vector is not None:
            self._vector.add(entry.codeword, entry.address)
        return entry

    @property
    def bitsliced(self) -> BitSlicedIndex:
        """The columnar view of this index (built lazily, kept in sync)."""
        if self._bitsliced is None:
            sliced = BitSlicedIndex(self.scheme)
            for entry in self._entries:
                sliced.add(entry.codeword, entry.address)
            self._bitsliced = sliced
        return self._bitsliced

    @property
    def vector(self) -> VectorSlicedIndex:
        """The word-array columnar view (built lazily, kept in sync)."""
        if self._vector is None:
            self._vector = VectorSlicedIndex.from_entries(
                self.scheme, self._entries
            )
        return self._vector

    @classmethod
    def build(
        cls, clause_file: ClauseFile, scheme: CodewordScheme
    ) -> "SecondaryIndexFile":
        """Build the index for every clause in ``clause_file``."""
        index = cls(scheme, clause_file.indicator)
        addresses = clause_file.record_addresses()
        for position, address in enumerate(addresses):
            head = clause_file.decode_clause(position).head
            index.add(head, address)
        return index

    def scan(self, query: Codeword) -> list[int]:
        """Addresses of all clauses whose codeword matches ``query``."""
        matches = self.scheme.matches
        return [e.address for e in self._entries if matches(query, e.codeword)]

    def entry_at(self, position: int) -> IndexEntry:
        return self._entries[position]

    # -- size accounting ---------------------------------------------------

    def size_bytes(self) -> int:
        """Serialised index size (codeword + mask + address per entry)."""
        return len(self._entries) * self.scheme.entry_bytes(ADDRESS_BYTES)

    def to_bytes(self) -> bytes:
        """The on-disk image the FS1 hardware streams through."""
        out = bytearray()
        cw_bytes = self.scheme.codeword_bytes
        mask_bytes = self.scheme.mask_bytes
        mask_field = (1 << (mask_bytes * 8)) - 1
        for entry in self._entries:
            out += entry.codeword.bits.to_bytes(cw_bytes, "big")
            out += (entry.codeword.mask & mask_field).to_bytes(mask_bytes, "big")
            out += entry.address.to_bytes(ADDRESS_BYTES, "big")
        return bytes(out)
