"""Register-level FS1: the codeword matcher as streaming hardware.

The prototype FS1 matches index entries "in parallel, using standard PLAs
and MSI components" while the secondary file streams past.  This model
works the way that hardware does — on the raw bytes of the secondary file
image, not on parsed entry objects:

* at query time the host loads the *query register file*: one codeword
  segment per encoded argument (the per-argument bit groups of the SCW+MB
  scheme);
* during a search, bytes shift into an entry-wide shift register; every
  time a full entry (codeword + mask bits + address) has arrived, the
  match PLA evaluates all argument segments in parallel:
  ``mask[i] OR (segment[i] AND codeword == segment[i])``;
* on a hit, the address field is latched into the result FIFO.

Functional equivalence with :meth:`SecondaryIndexFile.scan` (which works
on entry objects) is property-tested — two independent implementations of
the same match condition, one of them byte-level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..terms import Term
from .codeword import Codeword, CodewordScheme
from .fs1 import FS1_SCAN_RATE_BYTES_PER_SEC
from .index import ADDRESS_BYTES

__all__ = ["FS1Hardware", "FS1HardwareResult"]


@dataclass(frozen=True)
class FS1HardwareResult:
    """Outcome of streaming one secondary-file image through the matcher."""

    addresses: tuple[int, ...]
    entries_processed: int
    bytes_shifted: int
    scan_time_s: float


class FS1Hardware:
    """Byte-stream codeword matcher with a loadable query register file."""

    def __init__(
        self,
        scheme: CodewordScheme,
        scan_rate_bytes_per_sec: float = FS1_SCAN_RATE_BYTES_PER_SEC,
    ):
        self.scheme = scheme
        self.scan_rate = scan_rate_bytes_per_sec
        self._segments: tuple[int, ...] | None = None
        self._entry_bytes = scheme.entry_bytes(ADDRESS_BYTES)
        self._mask_field = (1 << (scheme.mask_bytes * 8)) - 1

    def set_query(self, query: Term) -> Codeword:
        """Load the per-argument query segments (the query register file)."""
        codeword = self.scheme.query_codeword(query)
        self._segments = codeword.arg_bits
        return codeword

    def stream(self, image: bytes) -> FS1HardwareResult:
        """Shift a secondary-file image through the matcher."""
        if self._segments is None:
            raise RuntimeError("set_query before streaming the index")
        if len(image) % self._entry_bytes:
            raise ValueError(
                f"index image of {len(image)} bytes is not a whole number "
                f"of {self._entry_bytes}-byte entries"
            )
        cw_bytes = self.scheme.codeword_bytes
        mask_bytes = self.scheme.mask_bytes
        hits: list[int] = []
        entries = 0
        position = 0
        while position < len(image):
            # The shift register has filled with one entry.
            codeword_bits = int.from_bytes(
                image[position : position + cw_bytes], "big"
            )
            mask = int.from_bytes(
                image[position + cw_bytes : position + cw_bytes + mask_bytes],
                "big",
            )
            address = int.from_bytes(
                image[
                    position + cw_bytes + mask_bytes : position + self._entry_bytes
                ],
                "big",
            )
            position += self._entry_bytes
            entries += 1
            if self._match_pla(codeword_bits, mask):
                hits.append(address)
        return FS1HardwareResult(
            addresses=tuple(hits),
            entries_processed=entries,
            bytes_shifted=len(image),
            scan_time_s=len(image) / self.scan_rate,
        )

    def _match_pla(self, codeword_bits: int, mask: int) -> bool:
        """The parallel per-argument match condition."""
        assert self._segments is not None
        for position, segment in enumerate(self._segments):
            if segment == 0:
                continue  # unconstrained query argument
            if mask & (1 << position) & self._mask_field:
                continue  # clause argument absorbs anything
            if segment & codeword_bits != segment:
                return False
        return True
