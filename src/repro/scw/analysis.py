"""Analytic superimposed-coding theory for the SCW+MB scheme.

Classic results (Roberts 1979; applied to Prolog indexing by
Ramamohanarao & Shepherd, the paper's ref [11]):

* with ``r`` keys each setting ``k`` of ``b`` bits, the expected fraction
  of set bits (*saturation*) is ``1 - (1 - 1/b)^(k r)``;
* a query requiring ``k q`` independent bits false-drops against an
  unrelated record with probability ``saturation^(k q)``;
* for a target record size, false drops are minimised around 50%
  saturation, i.e. ``k ≈ b ln 2 / r``.

These formulas predict the measured false-drop curves of benchmark E1 and
give the design tool the paper's project would have used to size the
96/12-argument prototype.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_saturation",
    "false_drop_probability",
    "optimal_bits_per_key",
    "recommend_width",
]


def expected_saturation(width: int, bits_per_key: int, keys: int) -> float:
    """Expected fraction of bits set after superimposing ``keys`` keys."""
    if width <= 0 or bits_per_key <= 0:
        raise ValueError("width and bits_per_key must be positive")
    if keys < 0:
        raise ValueError("keys must be non-negative")
    return 1.0 - (1.0 - 1.0 / width) ** (bits_per_key * keys)


def false_drop_probability(
    width: int,
    bits_per_key: int,
    record_keys: int,
    query_keys: int,
) -> float:
    """P(an unrelated record passes the inclusion test).

    The query contributes ``bits_per_key * query_keys`` (approximately
    independent) required bit positions; each is present in the record's
    codeword with probability equal to its saturation.
    """
    if query_keys < 0:
        raise ValueError("query_keys must be non-negative")
    saturation = expected_saturation(width, bits_per_key, record_keys)
    return saturation ** (bits_per_key * query_keys)


def optimal_bits_per_key(width: int, record_keys: int) -> int:
    """The ``k`` that drives saturation to ~50% (false-drop optimum)."""
    if width <= 0 or record_keys <= 0:
        raise ValueError("width and record_keys must be positive")
    k = width * math.log(2) / record_keys
    return max(1, round(k))


def recommend_width(
    record_keys: int,
    query_keys: int,
    target_false_drop: float,
    bits_per_key: int | None = None,
) -> tuple[int, int]:
    """Smallest (width, k) meeting a false-drop target.

    Searches widths upward; when ``bits_per_key`` is None the optimal k
    for each width is used.  Returns the first configuration whose
    predicted false-drop probability is at or below the target.
    """
    if not (0 < target_false_drop < 1):
        raise ValueError("target_false_drop must be in (0, 1)")
    if record_keys <= 0 or query_keys <= 0:
        raise ValueError("record_keys and query_keys must be positive")
    width = 8
    while width <= 1 << 16:
        k = bits_per_key or optimal_bits_per_key(width, record_keys)
        if (
            false_drop_probability(width, k, record_keys, query_keys)
            <= target_false_drop
        ):
            return width, k
        width *= 2
    raise ValueError("no width up to 65536 bits meets the target")
