"""The first stage filter (FS1) hardware model.

The prototype FS1 matches codewords "in parallel, using standard PLAs and
MSI components" while the secondary file streams past at up to 4.5 MB/s
(paper section 4).  Functionally it computes the SCW+MB inclusion test for
every index entry; the model also accounts the scan volume and wall time
so mode benchmarks can compare against software scanning and FS2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..terms import Term
from .codeword import CodewordScheme
from .index import SecondaryIndexFile

__all__ = ["FS1Result", "FirstStageFilter", "FS1_SCAN_RATE_BYTES_PER_SEC"]

#: "It can search data at a rate of up to 4.5Mbyte/sec" (paper section 4).
FS1_SCAN_RATE_BYTES_PER_SEC = 4_500_000


@dataclass(frozen=True)
class FS1Result:
    """Outcome of one FS1 search over a secondary index file."""

    candidate_addresses: tuple[int, ...]
    entries_scanned: int
    bytes_scanned: int
    scan_time_s: float

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_addresses)


class FirstStageFilter:
    """Scan a secondary index file with the SCW+MB match condition."""

    def __init__(
        self,
        scheme: CodewordScheme,
        scan_rate_bytes_per_sec: float = FS1_SCAN_RATE_BYTES_PER_SEC,
        obs: Instrumentation | None = None,
    ):
        if scan_rate_bytes_per_sec <= 0:
            raise ValueError("scan rate must be positive")
        self.scheme = scheme
        self.scan_rate = scan_rate_bytes_per_sec
        self.obs = obs if obs is not None else _default_obs()

    def search(self, index: SecondaryIndexFile, query: Term) -> FS1Result:
        """All candidate clause addresses for ``query``.

        The whole secondary file streams past the matcher regardless of
        hit count, so scan volume depends only on the index size.
        """
        if index.scheme is not self.scheme and index.scheme != self.scheme:
            raise ValueError("index was built with a different codeword scheme")
        with self.obs.span("fs1.scan", indicator=_render(index.indicator)) as span:
            query_codeword = self.scheme.query_codeword(query)
            addresses = index.scan(query_codeword)
            bytes_scanned = index.size_bytes()
            result = FS1Result(
                candidate_addresses=tuple(addresses),
                entries_scanned=len(index),
                bytes_scanned=bytes_scanned,
                scan_time_s=bytes_scanned / self.scan_rate,
            )
            span.set(
                entries=result.entries_scanned,
                candidates=result.candidate_count,
                bytes=bytes_scanned,
                sim_time_s=result.scan_time_s,
            )
        obs = self.obs
        obs.counter("fs1.searches").inc()
        obs.counter("fs1.entries_scanned").inc(result.entries_scanned)
        obs.counter("fs1.bytes_scanned").inc(bytes_scanned)
        obs.counter("fs1.candidates").inc(result.candidate_count)
        obs.counter("fs1.sim_time_s").inc(result.scan_time_s)
        return result


def _render(indicator: tuple[str, int]) -> str:
    name, arity = indicator
    return f"{name}/{arity}"
