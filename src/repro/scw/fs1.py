"""The first stage filter (FS1) hardware model.

The prototype FS1 matches codewords "in parallel, using standard PLAs and
MSI components" while the secondary file streams past at up to 4.5 MB/s
(paper section 4).  Functionally it computes the SCW+MB inclusion test for
every index entry; the model also accounts the scan volume and wall time
so mode benchmarks can compare against software scanning and FS2.

Two execution engines implement the identical match condition:

* ``mode="naive"`` — the original per-entry Python loop over the
  horizontal :class:`~repro.scw.index.SecondaryIndexFile` records;
* ``mode="bitsliced"`` (the default) — the columnar
  :class:`~repro.scw.bitsliced.BitSlicedIndex`, whose big-integer column
  ANDs model the PLA matcher's data-parallelism in real wall clock;
* ``mode="vector"`` — the same columns as C-contiguous ``uint64`` word
  arrays (:class:`~repro.scw.vector.VectorSlicedIndex`): numpy-vectorised
  AND/OR reductions when numpy imports, a per-word ``array('Q')``
  fallback when it does not.

Both report the same simulated SCW+MB scan time (the whole secondary
file streams past the matcher either way); only the host-side cost
changes.  :meth:`FirstStageFilter.search_batch` additionally evaluates K
query codewords against one pass over the columns, which is what the
cluster's batch executor amortises.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..terms import Term
from .codeword import Codeword, CodewordScheme
from .index import SecondaryIndexFile

__all__ = [
    "FS1Result",
    "FirstStageFilter",
    "SchemeMismatchError",
    "FS1_SCAN_RATE_BYTES_PER_SEC",
    "QUERY_CODEWORD_CACHE_SIZE",
]

#: "It can search data at a rate of up to 4.5Mbyte/sec" (paper section 4).
FS1_SCAN_RATE_BYTES_PER_SEC = 4_500_000

#: Query codewords are cached per canonical goal key; repeated and
#: batched retrievals of equivalent goals skip the BLAKE2 hashing.
QUERY_CODEWORD_CACHE_SIZE = 1024

_canonical_goal_key = None


def _goal_key(goal: Term):
    # Imported lazily: repro.crs imports repro.scw at package-init time,
    # so a module-level import here would be circular.
    global _canonical_goal_key
    if _canonical_goal_key is None:
        from ..crs.keys import canonical_goal_key

        _canonical_goal_key = canonical_goal_key
    return _canonical_goal_key(goal)


class SchemeMismatchError(ValueError):
    """An index probed with a filter built for a different codeword scheme."""


@dataclass(frozen=True)
class FS1Result:
    """Outcome of one FS1 search over a secondary index file."""

    candidate_addresses: tuple[int, ...]
    entries_scanned: int
    bytes_scanned: int
    scan_time_s: float

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_addresses)


class FirstStageFilter:
    """Scan a secondary index file with the SCW+MB match condition."""

    def __init__(
        self,
        scheme: CodewordScheme,
        scan_rate_bytes_per_sec: float = FS1_SCAN_RATE_BYTES_PER_SEC,
        obs: Instrumentation | None = None,
        mode: str = "bitsliced",
    ):
        if scan_rate_bytes_per_sec <= 0:
            raise ValueError("scan rate must be positive")
        if mode not in ("bitsliced", "vector", "naive"):
            raise ValueError(
                "FS1 mode must be 'bitsliced', 'vector' or 'naive'"
            )
        self.scheme = scheme
        self.scan_rate = scan_rate_bytes_per_sec
        self.mode = mode
        self.obs = obs if obs is not None else _default_obs()
        self._codeword_cache: "OrderedDict[tuple, Codeword]" = OrderedDict()
        self._codeword_lock = threading.Lock()

    def query_codeword(self, query: Term) -> Codeword:
        """``scheme.query_codeword`` behind a canonical-goal-key LRU.

        Goals that are the same retrieval (``p(_, a)`` and ``p(X, a)``
        with ``X`` a singleton) produce identical codewords, so repeated
        and batched queries re-hash nothing.
        """
        key = _goal_key(query)
        with self._codeword_lock:
            cached = self._codeword_cache.get(key)
            if cached is not None:
                self._codeword_cache.move_to_end(key)
        if cached is not None:
            self.obs.counter("fs1.codeword_cache.hits").inc()
            return cached
        self.obs.counter("fs1.codeword_cache.misses").inc()
        codeword = self.scheme.query_codeword(query)
        with self._codeword_lock:
            self._codeword_cache[key] = codeword
            while len(self._codeword_cache) > QUERY_CODEWORD_CACHE_SIZE:
                self._codeword_cache.popitem(last=False)
        return codeword

    def search(self, index: SecondaryIndexFile, query: Term) -> FS1Result:
        """All candidate clause addresses for ``query``.

        The whole secondary file streams past the matcher regardless of
        hit count, so scan volume depends only on the index size.
        """
        self._check_scheme(index)
        with self.obs.span("fs1.scan", indicator=_render(index.indicator)) as span:
            query_codeword = self.query_codeword(query)
            if self.mode == "bitsliced":
                addresses, columns_touched = index.bitsliced.scan_info(
                    query_codeword
                )
                self.obs.counter("fs1.bitsliced.scans").inc()
                self.obs.counter("fs1.bitsliced.columns_touched").inc(
                    columns_touched
                )
            elif self.mode == "vector":
                addresses, columns_touched = index.vector.scan_info(
                    query_codeword
                )
                self.obs.counter("fs1.vector.scans").inc()
                self.obs.counter("fs1.vector.columns_touched").inc(
                    columns_touched
                )
            else:
                addresses = index.scan(query_codeword)
            result = self._result(index, addresses)
            span.set(
                engine=self.mode,
                entries=result.entries_scanned,
                candidates=result.candidate_count,
                bytes=result.bytes_scanned,
                sim_time_s=result.scan_time_s,
            )
        self._account(result)
        return result

    def search_batch(
        self, index: SecondaryIndexFile, queries: list[Term]
    ) -> list[FS1Result]:
        """One FS1 result per query, sharing index passes across the batch.

        Under the bit-sliced engine every distinct column the batch needs
        is loaded once; under the naive engine the batch degrades to K
        independent scans.  Per-query simulated scan accounting is
        identical to :meth:`search` — the modelled hardware streams the
        secondary file once per query either way.
        """
        self._check_scheme(index)
        with self.obs.span(
            "fs1.batch_scan",
            indicator=_render(index.indicator),
            queries=len(queries),
        ) as span:
            codewords = [self.query_codeword(query) for query in queries]
            if self.mode == "bitsliced":
                address_lists, columns_touched = index.bitsliced.scan_batch(
                    codewords
                )
                self.obs.counter("fs1.bitsliced.scans").inc(len(queries))
                self.obs.counter("fs1.bitsliced.columns_touched").inc(
                    columns_touched
                )
            elif self.mode == "vector":
                address_lists, columns_touched = index.vector.scan_batch(
                    codewords
                )
                self.obs.counter("fs1.vector.scans").inc(len(queries))
                self.obs.counter("fs1.vector.columns_touched").inc(
                    columns_touched
                )
            else:
                address_lists = [index.scan(cw) for cw in codewords]
            results = [
                self._result(index, addresses) for addresses in address_lists
            ]
            span.set(
                engine=self.mode,
                entries=len(index),
                candidates=sum(r.candidate_count for r in results),
            )
        self.obs.counter("fs1.batch.scans").inc()
        self.obs.histogram(
            "fs1.batch.size", buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256)
        ).observe(len(queries))
        for result in results:
            self._account(result)
        return results

    # -- internals ---------------------------------------------------------

    def _check_scheme(self, index: SecondaryIndexFile) -> None:
        if index.scheme != self.scheme:
            raise SchemeMismatchError(
                "index was built with a different codeword scheme: "
                f"{index.scheme!r} != {self.scheme!r}"
            )

    def _result(
        self, index: SecondaryIndexFile, addresses: list[int]
    ) -> FS1Result:
        bytes_scanned = index.size_bytes()
        return FS1Result(
            candidate_addresses=tuple(addresses),
            entries_scanned=len(index),
            bytes_scanned=bytes_scanned,
            scan_time_s=bytes_scanned / self.scan_rate,
        )

    def _account(self, result: FS1Result) -> None:
        obs = self.obs
        obs.counter("fs1.searches").inc()
        obs.counter("fs1.entries_scanned").inc(result.entries_scanned)
        obs.counter("fs1.bytes_scanned").inc(result.bytes_scanned)
        obs.counter("fs1.candidates").inc(result.candidate_count)
        obs.counter("fs1.sim_time_s").inc(result.scan_time_s)


def _render(indicator: tuple[str, int]) -> str:
    name, arity = indicator
    return f"{name}/{arity}"
