"""A bit-sliced (vertically partitioned) SCW+MB signature index.

The paper's FS1 matches codewords "in parallel, using standard PLAs and
MSI components" (section 4): every index entry streams past a matcher
that tests all codeword bits at once.  The software analogue of that
parallel matcher is the *bit-sliced signature file*: instead of one
record per clause (horizontal layout, :class:`~repro.scw.index.
SecondaryIndexFile`), the index stores one machine-word-packed *column*
per codeword bit position — column ``b`` holds entry ``j``'s bit ``b``
at position ``j`` — plus one packed plane per mask-bit position.

A query then costs ``O(popcount(query))`` big-integer ANDs over
``N``-bit columns instead of ``N`` per-entry match calls: for each
constrained query argument, the entries containing all of the
argument's bits are the AND of those bits' columns, the entries whose
mask absorbs the position are the mask plane, and the survivors are the
AND across arguments of (plane OR column-AND).  Python's arbitrary-
precision integers do the word-packing for free, so one AND touches 64
entries per machine word — the same data-parallelism the PLA matcher
gets from its wired comparators.

The result sets are *identical* to the naive scan by construction (the
property suite holds the two against each other), and the simulated
SCW+MB timing model is untouched: bit-slicing changes where the real
wall-clock goes, not what the modelled 1989 hardware would charge.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .codeword import Codeword, CodewordScheme

__all__ = ["BitSlicedIndex"]


def _bit_positions(value: int) -> Iterable[int]:
    """Indices of the set bits of ``value``, ascending."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


class BitSlicedIndex:
    """Columnar SCW+MB index over one predicate's clause signatures.

    Entries are appended in clause-file order (the same order the
    horizontal index keeps), so survivor enumeration yields addresses in
    exactly the order :meth:`SecondaryIndexFile.scan` returns them.
    """

    def __init__(self, scheme: CodewordScheme):
        self.scheme = scheme
        #: one N-entry column per codeword bit position.
        self._columns = [0] * scheme.width
        #: one N-entry plane per mask-bit (argument) position; grown on
        #: demand because truncated clauses carry mask bits beyond
        #: ``max_args`` (a query never constrains those positions, but
        #: the planes keep the structure faithful to the entry records).
        self._planes: list[int] = [0] * scheme.max_args
        self._addresses: list[int] = []
        self._occupied = 0  # (1 << len(self)) - 1, maintained incrementally

    def __len__(self) -> int:
        return len(self._addresses)

    def add(self, codeword: Codeword, address: int) -> None:
        """Append one entry's bits into the columns (clause-file order)."""
        slot = 1 << len(self._addresses)
        for bit in _bit_positions(codeword.bits):
            self._columns[bit] |= slot
        for position in _bit_positions(codeword.mask):
            if position >= len(self._planes):
                self._planes.extend([0] * (position + 1 - len(self._planes)))
            self._planes[position] |= slot
        self._addresses.append(address)
        self._occupied |= slot

    # -- segment export / attach -------------------------------------------

    def packed_columns(self) -> tuple[int, bytes, bytes]:
        """(bytes per column, columns image, planes image).

        The serialised form of the columnar index: each column (and each
        mask plane) as a little-endian fixed-width integer of
        ``ceil(N/64)`` 64-bit words.  Word alignment keeps the image
        byte-compatible with :class:`~repro.scw.vector.VectorSlicedIndex`
        (zero-padding a little-endian integer is value-preserving), so
        an attacher can view the same mmap'd bytes as big ints *or* as
        ``uint64`` word arrays via ``np.frombuffer`` — no re-packing.
        Written once into a shared segment; attaching rebuilds the
        index with :meth:`from_packed` by slicing the mmap — no clause
        decoding, no re-hashing.
        """
        nbytes = max(1, (len(self._addresses) + 63) // 64) * 8
        columns = b"".join(c.to_bytes(nbytes, "little") for c in self._columns)
        planes = b"".join(p.to_bytes(nbytes, "little") for p in self._planes)
        return nbytes, columns, planes

    @classmethod
    def from_packed(
        cls,
        scheme: CodewordScheme,
        addresses: Sequence[int],
        column_bytes: int,
        columns: bytes,
        planes: bytes,
    ) -> "BitSlicedIndex":
        """Rebuild an index from its :meth:`packed_columns` image.

        ``columns``/``planes`` may be ``bytes`` or memoryviews over an
        mmap'd segment; each column is one ``int.from_bytes`` over its
        slice, so attaching costs O(width) conversions, not O(entries)
        decodes.
        """
        index = cls(scheme)
        index._columns = [
            int.from_bytes(
                columns[b * column_bytes : (b + 1) * column_bytes], "little"
            )
            for b in range(len(columns) // column_bytes)
        ]
        index._planes = [
            int.from_bytes(
                planes[p * column_bytes : (p + 1) * column_bytes], "little"
            )
            for p in range(len(planes) // column_bytes)
        ]
        if len(index._planes) < scheme.max_args:
            index._planes.extend(
                [0] * (scheme.max_args - len(index._planes))
            )
        index._addresses = list(addresses)
        index._occupied = (1 << len(index._addresses)) - 1
        return index

    # -- scanning ----------------------------------------------------------

    def scan(self, query: Codeword) -> list[int]:
        """Addresses matching ``query`` — identical to the naive scan."""
        survivors, _ = self._survivors(query)
        return self._materialize(survivors)

    def scan_info(self, query: Codeword) -> tuple[list[int], int]:
        """(matching addresses, distinct columns touched) for one query."""
        survivors, columns_touched = self._survivors(query)
        return self._materialize(survivors), columns_touched

    def iter_scan(self, query: Codeword) -> Iterator[int]:
        """Lazily yield matching addresses, in clause-file order.

        Same result set as :meth:`scan`, but survivors are enumerated on
        demand so a consumer that stops early (or streams straight into
        FS2) never builds the intermediate address list.
        """
        survivors, _ = self._survivors(query)
        return self._enumerate(survivors)

    def scan_batch(
        self, queries: Sequence[Codeword]
    ) -> tuple[list[list[int]], int]:
        """Evaluate many query codewords against one pass over the columns.

        Each distinct column needed by *any* query is loaded (indexed)
        once and folded into every (query, argument) accumulator that
        wants it, so K queries over overlapping constants share column
        work instead of re-walking the index K times.  Returns the
        per-query address lists (input order) plus the number of
        distinct columns touched for the whole batch.
        """
        full = self._occupied
        # contain[(q, p)] accumulates the AND of position p's columns
        # for query q; wanted[column] lists the accumulators to fold
        # that column into.
        contain: dict[tuple[int, int], int] = {}
        wanted: dict[int, list[tuple[int, int]]] = {}
        constrained: list[list[int]] = []
        for q, query in enumerate(queries):
            positions = []
            for p, bits in enumerate(query.arg_bits):
                if bits == 0:
                    continue
                positions.append(p)
                contain[(q, p)] = full
                for bit in _bit_positions(bits):
                    wanted.setdefault(bit, []).append((q, p))
            constrained.append(positions)
        for bit, sinks in wanted.items():
            column = self._columns[bit]
            for sink in sinks:
                contain[sink] &= column
        results = []
        planes = self._planes
        for q, positions in enumerate(constrained):
            survivors = full
            for p in positions:
                plane = planes[p] if p < len(planes) else 0
                survivors &= plane | contain[(q, p)]
                if not survivors:
                    break
            results.append(self._materialize(survivors))
        return results, len(wanted)

    # -- internals ---------------------------------------------------------

    def _survivors(self, query: Codeword) -> tuple[int, int]:
        survivors = self._occupied
        columns_touched = 0
        planes = self._planes
        columns = self._columns
        for position, bits in enumerate(query.arg_bits):
            if bits == 0:
                continue  # query imposes no constraint here
            contain = self._occupied
            for bit in _bit_positions(bits):
                contain &= columns[bit]
                columns_touched += 1
            plane = planes[position] if position < len(planes) else 0
            survivors &= plane | contain
            if not survivors:
                break
        return survivors, columns_touched

    def _enumerate(self, survivors: int) -> Iterator[int]:
        """Lazily yield the addresses of the set bits of ``survivors``."""
        addresses = self._addresses
        for j in _bit_positions(survivors):
            yield addresses[j]

    def _materialize(self, survivors: int) -> list[int]:
        if survivors == self._occupied:
            # All entries survive — the all-variable / zero-set-bits query
            # path lands here without having touched a single column, and
            # the answer is just the address list in file order.  Skip the
            # per-bit extraction walk over the (potentially huge) survivor
            # integer.
            return list(self._addresses)
        return list(self._enumerate(survivors))
