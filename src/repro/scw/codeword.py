"""Superimposed codewords plus mask bits (SCW+MB) — the FS1 index scheme.

Each clause head is summarised by a fixed-width bit vector: every *ground*
component of every encoded argument hashes to ``bits_per_key`` positions,
and all positions are OR-ed together (superimposition).  The *mask bits*
extension (one bit per encoded argument, following Ramamohanarao &
Shepherd) records arguments that contain variables: such an argument can
unify with anything, so its position is exempted at match time.

Matching is *inclusion*: a clause codeword matches a query when, for every
encoded query argument, either the clause's mask bit for that position is
set, or all of the query argument's bits are present in the clause
codeword.  This is conservative by construction:

* query variables contribute no bits (no constraint);
* clause variables set the mask bit (constraint suppressed);
* ground-versus-ground mismatches are caught only probabilistically —
  hash collisions and superimposition produce the *false drops* ("ghosts")
  quantified in the paper's section 2.1, along with the two structural
  sources: truncation to :attr:`CodewordScheme.max_args` arguments and
  shared variables, which the scheme cannot see at all.

Hashing is keyed BLAKE2 so codewords are deterministic across processes
(clause files and their index files may be built at different times).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..terms import (
    CONS,
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
)

__all__ = ["CodewordScheme", "Codeword", "DEFAULT_SCHEME"]


@dataclass(frozen=True)
class Codeword:
    """A clause or query signature: superimposed bits + per-argument masks.

    For queries, ``mask`` flags arguments that impose no constraint
    (variables); for clauses it flags arguments that can absorb anything.
    ``arg_bits`` keeps the per-argument bit groups so inclusion can be
    tested per position (the hardware stores only ``bits``+``mask`` per
    clause and recomputes the query side once per search).
    """

    bits: int
    mask: int
    arg_bits: tuple[int, ...] = ()


class CodewordScheme:
    """Parameters and hashing for SCW+MB generation.

    ``width``: codeword length in bits.  ``bits_per_key``: positions set
    per hashed component.  ``max_args``: arguments encoded before
    truncation (12 in the CLARE prototype).  ``max_depth``: how deep
    inside an argument ground components are harvested.
    """

    def __init__(
        self,
        width: int = 96,
        bits_per_key: int = 2,
        max_args: int = 12,
        max_depth: int = 4,
    ):
        if width < 8:
            raise ValueError("codeword width must be at least 8 bits")
        if not (1 <= bits_per_key <= width):
            raise ValueError("bits_per_key must be in [1, width]")
        if max_args < 1:
            raise ValueError("max_args must be positive")
        self.width = width
        self.bits_per_key = bits_per_key
        self.max_args = max_args
        self.max_depth = max_depth

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodewordScheme):
            return NotImplemented
        return (
            self.width == other.width
            and self.bits_per_key == other.bits_per_key
            and self.max_args == other.max_args
            and self.max_depth == other.max_depth
        )

    def __hash__(self) -> int:
        return hash((self.width, self.bits_per_key, self.max_args, self.max_depth))

    def __repr__(self) -> str:
        return (
            f"CodewordScheme(width={self.width}, bits_per_key={self.bits_per_key}, "
            f"max_args={self.max_args}, max_depth={self.max_depth})"
        )

    # -- public API --------------------------------------------------------

    def clause_codeword(self, head: Term) -> Codeword:
        """The stored signature of a clause head."""
        return self._encode(head)

    def query_codeword(self, query: Term) -> Codeword:
        """The probe signature of a query (same construction)."""
        return self._encode(query)

    def matches(self, query: Codeword, clause: Codeword) -> bool:
        """SCW+MB inclusion test (the FS1 match condition).

        For every constrained query argument the clause must either mask
        the position or contain all the argument's bits.
        """
        for position, bits in enumerate(query.arg_bits):
            if bits == 0:
                continue  # query imposes no constraint here
            if clause.mask & (1 << position):
                continue  # clause absorbs anything at this position
            if bits & clause.bits != bits:
                return False
        return True

    @property
    def codeword_bytes(self) -> int:
        """Stored size of one codeword (bits field only)."""
        return (self.width + 7) // 8

    @property
    def mask_bytes(self) -> int:
        return (self.max_args + 7) // 8

    def entry_bytes(self, address_bytes: int = 4) -> int:
        """One secondary-file entry: codeword + mask bits + clause address."""
        return self.codeword_bytes + self.mask_bytes + address_bytes

    def saturation(self, codeword: Codeword) -> float:
        """Fraction of bits set — a codeword quality metric."""
        return bin(codeword.bits).count("1") / self.width

    # -- encoding ------------------------------------------------------------

    def _encode(self, head: Term) -> Codeword:
        args: tuple[Term, ...]
        if isinstance(head, Struct):
            args = head.args
        else:
            args = ()
        bits = 0
        mask = 0
        arg_bits: list[int] = []
        for position, arg in enumerate(args):
            if position >= self.max_args:
                # Truncation: unencoded arguments are unconstrained on the
                # query side and absorbing on the clause side.
                mask |= ((1 << (len(args) - position)) - 1) << position
                arg_bits.extend(0 for _ in args[position:])
                break
            group = 0
            has_variable = False
            for key in self._components(arg, position):
                if key is None:
                    has_variable = True
                else:
                    group |= self._key_bits(position, key)
            bits |= group
            if has_variable:
                mask |= 1 << position
            arg_bits.append(group)
        return Codeword(bits=bits, mask=mask, arg_bits=tuple(arg_bits))

    def _components(self, term: Term, position: int) -> list[str | None]:
        """Hashable descriptors of one argument's ground components.

        ``None`` entries report variables (anywhere in the argument, to
        any depth we harvest), which force the mask bit.
        """
        found: list[str | None] = []
        self._harvest(term, 0, found)
        return found

    def _harvest(self, term: Term, depth: int, found: list[str | None]) -> None:
        if isinstance(term, Var):
            found.append(None)
            return
        if depth > self.max_depth:
            # Beyond harvest depth either side may hide anything: treat the
            # subterm as an unconstrained variable for soundness.
            found.append(None)
            return
        if isinstance(term, Atom):
            found.append(f"a:{term.name}")
            return
        if isinstance(term, Int):
            found.append(f"i:{term.value}")
            return
        if isinstance(term, Float):
            # Key by *value equality*, the relation unification uses:
            # -0.0 == 0.0 must hash identically or FS1 drops a true
            # unifier (the PIF symbol table already interns by value).
            value = 0.0 if term.value == 0 else term.value
            found.append(f"f:{value!r}")
            return
        assert isinstance(term, Struct)
        if term.functor == CONS and term.arity == 2:
            found.append("l:.")
            current: Term = term
            while isinstance(current, Struct) and current.indicator == (CONS, 2):
                self._harvest(current.args[0], depth + 1, found)
                current = current.args[1]
            if current != NIL:
                self._harvest(current, depth + 1, found)
            return
        found.append(f"s:{term.functor}/{term.arity}")
        for element in term.args:
            self._harvest(element, depth + 1, found)

    def _key_bits(self, position: int, key: str) -> int:
        """``bits_per_key`` deterministic positions for one component."""
        digest = hashlib.blake2b(
            key.encode("utf-8"), digest_size=16, salt=position.to_bytes(8, "big")
        ).digest()
        bits = 0
        stretch = digest
        counter = 0
        while bin(bits).count("1") < self.bits_per_key:
            for index in range(0, len(stretch) - 1, 2):
                value = int.from_bytes(stretch[index : index + 2], "big")
                bits |= 1 << (value % self.width)
                if bin(bits).count("1") >= self.bits_per_key:
                    break
            else:
                counter += 1
                stretch = hashlib.blake2b(
                    key.encode("utf-8") + counter.to_bytes(4, "big"),
                    digest_size=16,
                    salt=position.to_bytes(8, "big"),
                ).digest()
                continue
            break
        return bits


#: The configuration used by benchmarks unless a sweep overrides it.
DEFAULT_SCHEME = CodewordScheme()
