"""FS1: superimposed codeword plus mask bits (SCW+MB) index filtering."""

from .analysis import (
    expected_saturation,
    false_drop_probability,
    optimal_bits_per_key,
    recommend_width,
)
from .bitsliced import BitSlicedIndex
from .codeword import DEFAULT_SCHEME, Codeword, CodewordScheme
from .fs1 import (
    FS1_SCAN_RATE_BYTES_PER_SEC,
    FS1Result,
    FirstStageFilter,
    SchemeMismatchError,
)
from .hardware import FS1Hardware, FS1HardwareResult
from .index import ADDRESS_BYTES, IndexEntry, SecondaryIndexFile
from .vector import VectorSlicedIndex, have_numpy

__all__ = [
    "ADDRESS_BYTES",
    "BitSlicedIndex",
    "DEFAULT_SCHEME",
    "Codeword",
    "CodewordScheme",
    "FS1Hardware",
    "FS1HardwareResult",
    "FS1Result",
    "FS1_SCAN_RATE_BYTES_PER_SEC",
    "FirstStageFilter",
    "IndexEntry",
    "SchemeMismatchError",
    "SecondaryIndexFile",
    "VectorSlicedIndex",
    "expected_saturation",
    "have_numpy",
    "false_drop_probability",
    "optimal_bits_per_key",
    "recommend_width",
]
