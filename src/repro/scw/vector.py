"""A vectorised (word-array) SCW+MB signature index.

The third FS1 backend (``mode="vector"``): the same columnar layout as
:class:`~repro.scw.bitsliced.BitSlicedIndex` — one N-entry bit column
per codeword position, one packed plane per mask position — but stored
as C-contiguous little-endian ``uint64`` word arrays instead of Python
big integers.  A scan is then a handful of vectorised AND/OR reductions
across all N entries at once (numpy when importable), and
:meth:`scan_batch` stacks K query accumulators into one 2-D broadcast
over the shared columns.

numpy is an *optional accelerator*, never a requirement: when it cannot
be imported (or has been monkeypatched away by the fallback test
backend), the same word arrays live in ``array('Q')`` buffers and the
reductions run as per-word Python loops — slower than the big-int
engine, but byte-identical in layout and result, which is what the
no-numpy CI job proves.

The packed byte layout is the big-int engine's ``packed_columns`` image
(little-endian words, 8-byte aligned columns), so a worker process can
attach either representation over the *same* mmap'd ``.cols`` segment:
the numpy path is one zero-copy ``np.frombuffer(...).reshape`` over the
map.  Survivor enumeration stays lazy (:meth:`iter_scan`), and the
eager :meth:`scan` enumerates only the non-zero survivor words, so a
selective query over a huge predicate never walks the full bitmap.

Result sets, ordering, and the modelled 1989 SCW+MB accounting are
identical to the naive and big-int engines by construction; the
property suite in ``tests/test_vector.py`` holds all three against each
other under both backends.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator, Sequence

from .codeword import Codeword, CodewordScheme

try:  # optional accelerator — the array('Q') fallback covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = ["VectorSlicedIndex", "have_numpy"]

WORD_BITS = 64
WORD_BYTES = 8
_FULL_WORD = (1 << WORD_BITS) - 1
_BIG_ENDIAN_HOST = sys.byteorder == "big"


def have_numpy() -> bool:
    """Whether the numpy fast path is active for new indexes."""
    return _np is not None


def _bit_positions(value: int):
    """Indices of the set bits of ``value``, ascending."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def _pad_to_words(image, column_bytes: int, count: int) -> bytes:
    """Re-pack ``count`` columns of ``column_bytes`` each to whole words.

    Columns are little-endian integers, so zero-padding each one up to
    the next 8-byte boundary is value-preserving.  Used only for legacy
    (unaligned) images; the current packers always emit aligned columns.
    """
    words_per = max(1, (column_bytes + WORD_BYTES - 1) // WORD_BYTES)
    out = bytearray(count * words_per * WORD_BYTES)
    for i in range(count):
        chunk = image[i * column_bytes : (i + 1) * column_bytes]
        start = i * words_per * WORD_BYTES
        out[start : start + column_bytes] = chunk
    return bytes(out)


class VectorSlicedIndex:
    """Columnar SCW+MB index over ``uint64`` word arrays.

    Same surface and same results as :class:`BitSlicedIndex`; entries
    append in clause-file order, so enumeration yields addresses exactly
    as the naive scan returns them.  The backend (numpy vs ``array``)
    is chosen per instance at construction time from module state, which
    keeps the fallback testable by monkeypatching ``vector._np``.
    """

    def __init__(self, scheme: CodewordScheme):
        self.scheme = scheme
        self._np = _np
        self._count = 0
        self._addresses: list[int] = []
        self._addr_cache = None  # numpy address array, rebuilt on append
        self._cap = 1  # capacity in words per column
        self._writable = True
        if self._np is not None:
            np = self._np
            self._cols = np.zeros((scheme.width, self._cap), dtype="<u8")
            self._planes = np.zeros((scheme.max_args, self._cap), dtype="<u8")
        else:
            self._cols = [array("Q", [0]) for _ in range(scheme.width)]
            self._planes = [array("Q", [0]) for _ in range(scheme.max_args)]

    def __len__(self) -> int:
        return self._count

    @property
    def backend(self) -> str:
        """``"numpy"`` or ``"array"`` — which engine this instance runs."""
        return "numpy" if self._np is not None else "array"

    # -- building ----------------------------------------------------------

    def _nwords(self) -> int:
        return (self._count + WORD_BITS - 1) // WORD_BITS

    def _n_planes(self) -> int:
        if self._np is not None:
            return self._planes.shape[0]
        return len(self._planes)

    def _thaw(self) -> None:
        """Copy attached (read-only) buffers into writable storage."""
        if self._writable:
            return
        if self._np is not None:
            np = self._np
            self._cols = np.array(self._cols, dtype="<u8")
            self._planes = np.array(self._planes, dtype="<u8")
        else:
            self._cols = [array("Q", c) for c in self._cols]
            self._planes = [array("Q", p) for p in self._planes]
        self._writable = True

    def _ensure_capacity(self, words: int) -> None:
        if words <= self._cap:
            return
        new_cap = max(words, self._cap * 2)
        if self._np is not None:
            np = self._np
            cols = np.zeros((self._cols.shape[0], new_cap), dtype="<u8")
            cols[:, : self._cap] = self._cols
            planes = np.zeros((self._planes.shape[0], new_cap), dtype="<u8")
            planes[:, : self._cap] = self._planes
            self._cols, self._planes = cols, planes
        else:
            pad = array("Q", [0]) * (new_cap - self._cap)
            for column in self._cols:
                column.extend(pad)
            for plane in self._planes:
                plane.extend(pad)
        self._cap = new_cap

    def _grow_planes(self, n_planes: int) -> None:
        """Truncated clauses carry mask bits beyond ``max_args``."""
        if self._np is not None:
            np = self._np
            grown = np.zeros((n_planes, self._cap), dtype="<u8")
            grown[: self._planes.shape[0]] = self._planes
            self._planes = grown
        else:
            while len(self._planes) < n_planes:
                self._planes.append(array("Q", [0]) * self._cap)

    def add(self, codeword: Codeword, address: int) -> None:
        """Append one entry's bits into the word columns."""
        self._thaw()
        word, bit = divmod(self._count, WORD_BITS)
        self._ensure_capacity(word + 1)
        if self._np is not None:
            mask = self._np.uint64(1 << bit)
            cols = self._cols
            for b in _bit_positions(codeword.bits):
                cols[b, word] |= mask
            for p in _bit_positions(codeword.mask):
                if p >= self._planes.shape[0]:
                    self._grow_planes(p + 1)
                self._planes[p, word] |= mask
        else:
            mask = 1 << bit
            for b in _bit_positions(codeword.bits):
                self._cols[b][word] |= mask
            for p in _bit_positions(codeword.mask):
                if p >= len(self._planes):
                    self._grow_planes(p + 1)
                self._planes[p][word] |= mask
        self._addresses.append(address)
        self._addr_cache = None
        self._count += 1

    @classmethod
    def from_entries(cls, scheme: CodewordScheme, entries) -> "VectorSlicedIndex":
        """Bulk-build from ``IndexEntry`` rows (one pack pass, no per-add
        word stores — much faster than N :meth:`add` calls)."""
        columns = [0] * scheme.width
        planes = [0] * scheme.max_args
        addresses: list[int] = []
        for entry in entries:
            slot = 1 << len(addresses)
            for b in _bit_positions(entry.codeword.bits):
                columns[b] |= slot
            for p in _bit_positions(entry.codeword.mask):
                if p >= len(planes):
                    planes.extend([0] * (p + 1 - len(planes)))
                planes[p] |= slot
            addresses.append(entry.address)
        nbytes = max(1, (len(addresses) + WORD_BITS - 1) // WORD_BITS) * WORD_BYTES
        packed_cols = b"".join(c.to_bytes(nbytes, "little") for c in columns)
        packed_planes = b"".join(p.to_bytes(nbytes, "little") for p in planes)
        index = cls.from_packed(scheme, addresses, nbytes, packed_cols, packed_planes)
        # Bulk construction still yields a mutable index (the attached
        # zero-copy path stays frozen; this one owns private bytes, but
        # add() thaws either way, so just flag it writable after a copy).
        index._thaw()
        return index

    # -- segment export / attach -------------------------------------------

    def packed_columns(self) -> tuple[int, bytes, bytes]:
        """(bytes per column, columns image, planes image).

        Byte-for-byte the format :meth:`BitSlicedIndex.packed_columns`
        emits: little-endian fixed-width columns, 8-byte aligned.
        """
        nwords = max(1, self._nwords())
        if self._np is not None:
            np = self._np
            cols = np.ascontiguousarray(self._cols[:, :nwords], dtype="<u8")
            planes = np.ascontiguousarray(self._planes[:, :nwords], dtype="<u8")
            return nwords * WORD_BYTES, cols.tobytes(), planes.tobytes()

        def image(rows) -> bytes:
            chunks = []
            for row in rows:
                words = row[:nwords]
                if len(words) < nwords:
                    words = words + array("Q", [0]) * (nwords - len(words))
                if _BIG_ENDIAN_HOST:  # pragma: no cover - x86/arm are LE
                    words = array("Q", words)
                    words.byteswap()
                chunks.append(words.tobytes())
            return b"".join(chunks)

        return nwords * WORD_BYTES, image(self._cols), image(self._planes)

    @classmethod
    def from_packed(
        cls,
        scheme: CodewordScheme,
        addresses: Sequence[int],
        column_bytes: int,
        columns,
        planes,
    ) -> "VectorSlicedIndex":
        """Rebuild from a :meth:`packed_columns` image (or a memoryview
        over an mmap'd ``.cols`` segment).

        With numpy and 8-byte-aligned columns the attach is **zero
        copy**: one ``np.frombuffer`` + ``reshape`` over the existing
        buffer, so N workers over one shard share the kernel's pages.
        Unaligned (legacy) images are re-packed; the array fallback
        copies into ``array('Q')`` rows either way.
        """
        if column_bytes <= 0:
            raise ValueError("column_bytes must be positive")
        index = cls(scheme)
        n_cols = len(columns) // column_bytes
        n_planes = len(planes) // column_bytes
        aligned = column_bytes % WORD_BYTES == 0
        words_per = max(1, (column_bytes + WORD_BYTES - 1) // WORD_BYTES)
        if index._np is not None:
            np = index._np
            if not aligned:
                columns = _pad_to_words(columns, column_bytes, n_cols)
                planes = _pad_to_words(planes, column_bytes, n_planes)
            cols2d = np.frombuffer(columns, dtype="<u8")
            index._cols = cols2d.reshape(n_cols, words_per)
            if n_planes:
                index._planes = np.frombuffer(planes, dtype="<u8").reshape(
                    n_planes, words_per
                )
            else:
                index._planes = np.zeros((0, words_per), dtype="<u8")
            index._writable = False
        else:

            def rows(image, count: int) -> list[array]:
                if not aligned:
                    image = _pad_to_words(image, column_bytes, count)
                    row_bytes = words_per * WORD_BYTES
                else:
                    row_bytes = column_bytes
                out = []
                for i in range(count):
                    row = array("Q")
                    row.frombytes(bytes(image[i * row_bytes : (i + 1) * row_bytes]))
                    if _BIG_ENDIAN_HOST:  # pragma: no cover
                        row.byteswap()
                    out.append(row)
                return out

            index._cols = rows(columns, n_cols)
            index._planes = rows(planes, n_planes)
            index._writable = False
        index._cap = words_per
        index._addresses = list(addresses)
        index._count = len(index._addresses)
        return index

    # -- scanning ----------------------------------------------------------

    def scan(self, query: Codeword) -> list[int]:
        """Addresses matching ``query`` — identical to the naive scan."""
        survivors, _ = self._survivors(query)
        return self._materialize(survivors)

    def scan_info(self, query: Codeword) -> tuple[list[int], int]:
        """(matching addresses, distinct columns touched) for one query."""
        survivors, columns_touched = self._survivors(query)
        return self._materialize(survivors), columns_touched

    def iter_scan(self, query: Codeword) -> Iterator[int]:
        """Lazily yield matching addresses, in clause-file order."""
        survivors, _ = self._survivors(query)
        return self._enumerate(survivors)

    def scan_batch(
        self, queries: Sequence[Codeword]
    ) -> tuple[list[list[int]], int]:
        """K queries against one pass over the columns.

        Under numpy the per-(query, argument) accumulators are rows of
        one 2-D matrix seeded with the occupancy words; every distinct
        column the batch needs is folded into all of its sink rows with
        one broadcast AND.  Returns (per-query address lists in input
        order, distinct columns touched) — the same accounting the
        big-int engine reports.
        """
        if self._np is not None:
            return self._scan_batch_np(queries)
        wanted: set[int] = set()
        for query in queries:
            for bits in query.arg_bits:
                wanted.update(_bit_positions(bits))
        return [self.scan(query) for query in queries], len(wanted)

    # -- internals: numpy engine -------------------------------------------

    def _survivors_np(self, query: Codeword):
        np = self._np
        n = self._nwords()
        cols = self._cols
        planes = self._planes
        n_planes = planes.shape[0]
        survivors = None
        columns_touched = 0
        tmp = np.empty(n, dtype="<u8")
        merged = np.empty(n, dtype="<u8")
        for position, bits in enumerate(query.arg_bits):
            if bits == 0:
                continue  # query imposes no constraint here
            contain = None
            for bit in _bit_positions(bits):
                columns_touched += 1
                row = cols[bit, :n]
                if contain is None:
                    contain = row
                else:
                    contain = np.bitwise_and(contain, row, out=tmp)
            if position < n_planes:
                contain = np.bitwise_or(planes[position, :n], contain, out=merged)
            if survivors is None:
                survivors = contain.copy()
            else:
                np.bitwise_and(survivors, contain, out=survivors)
            if not survivors.any():
                break
        return survivors, columns_touched

    def _addr_array(self):
        if self._addr_cache is None:
            self._addr_cache = self._np.asarray(self._addresses, dtype=self._np.int64)
        return self._addr_cache

    def _enumerate_words_np(self, survivors) -> list[int]:
        """Survivor addresses via sparse word enumeration.

        Only the non-zero survivor words are unpacked: ``nonzero`` over
        the word array (64 entries per element), then one compacted
        ``unpackbits`` over just those words.  A selective scan of a
        100k-entry predicate touches a handful of words, not 100k bits.
        """
        np = self._np
        nzw = np.nonzero(survivors)[0]
        if len(nzw) == 0:
            return []
        packed = np.ascontiguousarray(survivors[nzw])
        bits = np.unpackbits(
            packed.view(np.uint8), bitorder="little"
        ).reshape(len(nzw), WORD_BITS)
        rows, bit = np.nonzero(bits)
        positions = (nzw[rows].astype(np.int64) << 6) + bit
        return self._addr_array()[positions].tolist()

    def _occupied_np(self, n: int):
        np = self._np
        occupied = np.zeros(n, dtype="<u8")
        full, rem = divmod(self._count, WORD_BITS)
        occupied[:full] = np.uint64(_FULL_WORD)
        if rem:
            occupied[full] = np.uint64((1 << rem) - 1)
        return occupied

    def _scan_batch_np(self, queries: Sequence[Codeword]):
        np = self._np
        n = self._nwords()
        # accumulator row per constrained (query, position); wanted maps
        # each distinct column to the rows it folds into.
        acc_of: dict[tuple[int, int], int] = {}
        wanted: dict[int, list[int]] = {}
        constrained: list[list[int]] = []
        for q, query in enumerate(queries):
            positions = []
            for p, bits in enumerate(query.arg_bits):
                if bits == 0:
                    continue
                positions.append(p)
                acc_of[(q, p)] = len(acc_of)
                for bit in _bit_positions(bits):
                    wanted.setdefault(bit, []).append(acc_of[(q, p)])
            constrained.append(positions)
        if not acc_of:
            return [list(self._addresses) for _ in queries], 0
        contain = np.tile(self._occupied_np(n), (len(acc_of), 1))
        for bit, sinks in wanted.items():
            column = self._cols[bit, :n]
            rows = np.asarray(sinks, dtype=np.intp)
            contain[rows] &= column
        n_planes = self._planes.shape[0]
        results: list[list[int]] = []
        for q, positions in enumerate(constrained):
            if not positions:
                results.append(list(self._addresses))
                continue
            survivors = None
            for p in positions:
                row = contain[acc_of[(q, p)]]
                if p < n_planes:
                    row = row | self._planes[p, :n]
                survivors = row if survivors is None else survivors & row
                if not survivors.any():
                    break
            results.append(self._enumerate_words_np(survivors))
        return results, len(wanted)

    # -- internals: array('Q') fallback ------------------------------------

    def _survivors_py(self, query: Codeword):
        n = self._nwords()
        cols = self._cols
        planes = self._planes
        survivors = None
        columns_touched = 0
        for position, bits in enumerate(query.arg_bits):
            if bits == 0:
                continue
            positions = list(_bit_positions(bits))
            columns_touched += len(positions)
            contain = array("Q", cols[positions[0]][:n])
            for b in positions[1:]:
                column = cols[b]
                for w in range(n):
                    contain[w] &= column[w]
            if position < len(planes):
                plane = planes[position]
                for w in range(n):
                    contain[w] |= plane[w]
            if survivors is None:
                survivors = contain
            else:
                for w in range(n):
                    survivors[w] &= contain[w]
            if not any(survivors):
                break
        return survivors, columns_touched

    # -- internals: shared --------------------------------------------------

    def _survivors(self, query: Codeword):
        if self._np is not None:
            return self._survivors_np(query)
        return self._survivors_py(query)

    def _iter_words(self, survivors) -> Iterator[int]:
        addresses = self._addresses
        words = survivors.tolist() if self._np is not None else list(survivors)
        for w, word in enumerate(words):
            base = w << 6
            while word:
                low = word & -word
                yield addresses[base + low.bit_length() - 1]
                word ^= low

    def _enumerate(self, survivors) -> Iterator[int]:
        if survivors is None:
            yield from self._addresses
        else:
            yield from self._iter_words(survivors)

    def _materialize(self, survivors) -> list[int]:
        if survivors is None:
            # No constrained positions: everything survives, in order.
            return list(self._addresses)
        if self._np is not None:
            return self._enumerate_words_np(survivors)
        return list(self._iter_words(survivors))
