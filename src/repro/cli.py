"""A small command-line driver for the PDBM system.

Usage::

    python -m repro.cli consult FILE.pl --goal "parent(tom, X)"
    python -m repro.cli goal "X is 1 + 2"
    python -m repro.cli table1
    python -m repro.cli microcode

``consult`` loads a Prolog source file (optionally pinning it to the
simulated disk) and runs goals against it, reporting which CRS search
modes the planner chose.  ``table1`` prints the reproduced Table 1 and
``microcode`` disassembles the FS2 search program.
"""

from __future__ import annotations

import argparse
import sys

from .crs import SearchMode
from .engine import PrologMachine
from .fs2 import assemble_search_program, table1, worst_case_rate_bytes_per_sec
from .fs2.microcode import disassemble
from .storage import KnowledgeBase, Residency
from .terms import read_term, term_to_string

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="CLARE / PDBM reproduction command-line driver",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    consult = commands.add_parser("consult", help="load a .pl file and run goals")
    consult.add_argument("file", help="Prolog source file")
    consult.add_argument(
        "--goal", action="append", default=[], help="goal to solve (repeatable)"
    )
    consult.add_argument(
        "--disk", action="store_true", help="pin the program to the simulated disk"
    )
    consult.add_argument(
        "--mode",
        choices=[m.value for m in SearchMode],
        help="force one CRS search mode (default: planner)",
    )
    consult.add_argument(
        "--max-solutions", type=int, default=10, help="solutions per goal"
    )
    consult.add_argument(
        "--library", action="store_true", help="load the list library"
    )

    goal = commands.add_parser("goal", help="solve a goal with an empty KB")
    goal.add_argument("text", help="the goal")
    goal.add_argument("--max-solutions", type=int, default=10)

    commands.add_parser("table1", help="print the reproduced Table 1")
    commands.add_parser("microcode", help="disassemble the FS2 search program")

    dump = commands.add_parser(
        "dump", help="compile a clause and dump its PIF encoding"
    )
    dump.add_argument("clause", help="one clause, e.g. 'p(X, f(a)) :- q(X)'")
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1(out)
    if args.command == "microcode":
        return _cmd_microcode(out)
    if args.command == "dump":
        return _cmd_dump(args, out)
    if args.command == "goal":
        machine = PrologMachine(
            KnowledgeBase(), unknown_predicates="fail", output=out
        )
        _run_goal(machine, args.text, args.max_solutions, out)
        return 0
    return _cmd_consult(args, out)


def _cmd_table1(out) -> int:
    out.write("Table 1: Execution Times of the FS2 Hardware Functions\n")
    for figure, op_name, time_ns in table1():
        out.write(f"  figure {figure:>2}  {op_name:<24} {time_ns:>4} ns\n")
    rate = worst_case_rate_bytes_per_sec() / 1e6
    out.write(f"worst-case filter rate: {rate:.2f} Mbytes/second\n")
    return 0


def _cmd_microcode(out) -> int:
    program = assemble_search_program()
    out.write(f"FS2 search microprogram ({len(program)} words):\n")
    for line in disassemble(program):
        out.write(line + "\n")
    return 0


def _cmd_dump(args, out) -> int:
    from .pif import SymbolTable, compile_clause
    from .pif.dump import dump_record
    from .terms import clause_from_term

    symbols = SymbolTable()
    clause = clause_from_term(read_term(args.clause))
    record = compile_clause(clause, symbols)
    for line in dump_record(record, symbols):
        out.write(line + "\n")
    out.write(f"record size: {len(record.to_bytes())} bytes\n")
    return 0


def _cmd_consult(args, out) -> int:
    kb = KnowledgeBase()
    with open(args.file, encoding="utf-8") as handle:
        count = kb.consult_text(handle.read())
    out.write(f"consulted {count} clauses from {args.file}\n")
    if args.disk:
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
        out.write("program pinned to the simulated disk\n")
    mode = SearchMode(args.mode) if args.mode else None
    machine = PrologMachine(
        kb,
        mode=mode,
        unknown_predicates="fail",
        load_library=args.library,
        output=out,
    )
    for goal_text in args.goal:
        _run_goal(machine, goal_text, args.max_solutions, out)
    if args.goal:
        stats = machine.stats
        modes = ", ".join(
            f"{m.value}x{n}" for m, n in sorted(
                stats.mode_uses.items(), key=lambda kv: kv[0].value
            )
        )
        out.write(
            f"[stats] retrievals={stats.retrievals} "
            f"scanned={stats.clauses_scanned} candidates={stats.candidates} "
            f"modes: {modes}\n"
        )
    return 0


def _run_goal(machine: PrologMachine, goal_text: str, limit: int, out) -> None:
    out.write(f"?- {goal_text}.\n")
    shown = 0
    for solution in machine.solve_text(goal_text):
        if not solution:
            out.write("   true\n")
        else:
            rendered = ", ".join(
                f"{name} = {term_to_string(value)}"
                for name, value in solution.items()
            )
            out.write(f"   {rendered}\n")
        shown += 1
        if shown >= limit:
            out.write("   ... (solution limit reached)\n")
            break
    if shown == 0:
        out.write("   false\n")


if __name__ == "__main__":
    raise SystemExit(main())
