"""A small command-line driver for the PDBM system.

Usage::

    python -m repro.cli consult FILE.pl --goal "parent(tom, X)"
    python -m repro.cli stats FILE.pl --goal "parent(tom, X)" --disk
    python -m repro.cli goal "X is 1 + 2"
    python -m repro.cli table1
    python -m repro.cli microcode

``consult`` loads a Prolog source file (optionally pinning it to the
simulated disk) and runs goals against it, reporting which CRS search
modes the planner chose.  ``stats`` is ``consult`` with the
observability layer switched on: it dumps the full metrics registry
(cache hits/misses, lock waits, FS2 search calls, stage sim times) and
``--trace-json FILE`` exports the span trace as NDJSON — one JSON object
per pipeline stage (disk, FS1, FS2, software) per retrieval.  ``table1``
prints the reproduced Table 1 and ``microcode`` disassembles the FS2
search program.
"""

from __future__ import annotations

import argparse
import sys

from .cluster import BatchExecutor, ShardedRetrievalServer, ShardingPolicy
from .crs import ClauseRetrievalServer, SearchMode
from .engine import PrologMachine
from .fs2 import assemble_search_program, table1, worst_case_rate_bytes_per_sec
from .fs2.microcode import disassemble
from .obs import Instrumentation
from .storage import KnowledgeBase, Residency
from .terms import read_term, term_to_string

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="CLARE / PDBM reproduction command-line driver",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    consult = commands.add_parser("consult", help="load a .pl file and run goals")
    stats = commands.add_parser(
        "stats",
        help="like consult, with the observability layer on: dump the "
        "metrics registry and optionally an NDJSON span trace",
    )
    for sub in (consult, stats):
        sub.add_argument("file", help="Prolog source file")
        sub.add_argument(
            "--goal", action="append", default=[], help="goal to solve (repeatable)"
        )
        sub.add_argument(
            "--disk",
            action="store_true",
            help="pin the program to the simulated disk",
        )
        sub.add_argument(
            "--mode",
            choices=[m.value for m in SearchMode],
            help="force one CRS search mode (default: planner)",
        )
        sub.add_argument(
            "--max-solutions", type=int, default=10, help="solutions per goal"
        )
        sub.add_argument(
            "--library", action="store_true", help="load the list library"
        )
        sub.add_argument(
            "--trace-json",
            metavar="FILE",
            help="write the span trace as NDJSON to FILE",
        )
        sub.add_argument(
            "--shards",
            type=int,
            default=1,
            help="partition the KB across N CLARE engine instances",
        )
        sub.add_argument(
            "--shard-by",
            choices=[p.value for p in ShardingPolicy],
            default=ShardingPolicy.PREDICATE.value,
            help="shard routing policy (default: predicate)",
        )
        sub.add_argument(
            "--fs1-mode",
            choices=["bitsliced", "vector", "naive"],
            default="bitsliced",
            help="FS1 scan engine: columnar big-int bit-sliced index, "
            "the uint64 word-array vector engine (numpy-accelerated "
            "when available), or the per-entry naive loop "
            "(default: bitsliced)",
        )
        sub.add_argument(
            "--fs2-mode",
            choices=["compiled", "microcoded"],
            default="compiled",
            help="FS2 match engine: plan-compiled fast path or the "
            "cycle-stepped microcode sequencer (default: compiled)",
        )
    stats.add_argument(
        "--cache", type=int, default=0, help="CRS retrieval cache size (entries)"
    )

    serve = commands.add_parser(
        "serve",
        help="load a .pl file into a shard cluster and serve retrievals "
        "over TCP (see repro.net for the wire protocol)",
    )
    serve.add_argument("file", help="Prolog source file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--disk", action="store_true",
        help="pin the program to the simulated disk",
    )
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument(
        "--shard-by",
        choices=[p.value for p in ShardingPolicy],
        default=ShardingPolicy.PREDICATE.value,
    )
    serve.add_argument(
        "--fs1-mode",
        choices=["bitsliced", "vector", "naive"],
        default="bitsliced",
    )
    serve.add_argument(
        "--fs2-mode", choices=["compiled", "microcoded"], default="compiled"
    )
    serve.add_argument(
        "--result-transport",
        choices=["shm", "pipe"],
        default="shm",
        help="how process workers return results: shared-memory slabs "
        "(default) or the pickled pipe; ignored with --workers threads",
    )
    serve.add_argument(
        "--workers", default="threads",
        help="shard execution backend: 'threads' (default) or "
        "'processes[:N]' to host each shard in a worker process over "
        "shared mmap segments (N overrides --shards)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=4,
        help="concurrent retrievals executing (worker threads)",
    )
    serve.add_argument(
        "--executor-workers", type=int, default=None,
        help="service thread-pool size (default: --max-in-flight); "
        "raise it with --workers processes:N so fan-out overlaps",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="requests allowed to wait for a worker before SERVER_BUSY",
    )
    serve.add_argument(
        "--default-deadline-ms", type=int, default=0,
        help="deadline applied to requests that do not carry one (0 = none)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None,
        help="drain and exit after handling N requests (default: serve "
        "until interrupted)",
    )
    serve.add_argument(
        "--durability", metavar="DIR", default=None,
        help="make mutations durable: write-ahead log + snapshots under "
        "DIR; on restart the KB recovers from DIR and the source file "
        "is only consulted into an empty store",
    )
    serve.add_argument(
        "--durability-flush",
        choices=["fsync", "os", "none"],
        default="fsync",
        help="WAL flush policy before acking a write: group-committed "
        "fsync (default), flush to the OS only, or fully buffered",
    )

    client = commands.add_parser(
        "client", help="query a running `serve` instance over TCP"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument(
        "--goal", action="append", default=[], help="goal to retrieve (repeatable)"
    )
    client.add_argument(
        "--assert", action="append", default=[], dest="assert_clauses",
        metavar="CLAUSE", help="assertz a clause on the server (repeatable)",
    )
    client.add_argument(
        "--retract", action="append", default=[], metavar="TEMPLATE",
        help="retract the first server clause unifying with TEMPLATE "
        "(repeatable)",
    )
    client.add_argument(
        "--manifest", action="store_true",
        help="fetch and print the server's cluster manifest (JSON)",
    )
    client.add_argument(
        "--batch", action="store_true",
        help="send all goals as one REQ_RETRIEVE_BATCH frame",
    )
    client.add_argument(
        "--solve", action="append", default=[], metavar="GOAL",
        help="resolve a (possibly multi-goal) query server-side, "
        "streaming one solution frame per answer (repeatable)",
    )
    client.add_argument(
        "--engine", choices=["zip", "interp"], default="zip",
        help="resolution engine for --solve (default: zip)",
    )
    client.add_argument(
        "--max-solutions", type=int, default=0,
        help="per --solve query solution cap (0 = all)",
    )
    client.add_argument(
        "--deadline-ms", type=int, default=0,
        help="per-request deadline (0 = none)",
    )
    client.add_argument(
        "--mode", choices=[m.value for m in SearchMode],
        help="force one CRS search mode",
    )
    client.add_argument(
        "--server-stats", action="store_true",
        help="also fetch and print the server's stats snapshot",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help="open-loop load generator against a running `serve` instance",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument(
        "--port", type=int, default=None,
        help="port of a running `serve` instance (omit with --cores)",
    )
    loadgen.add_argument(
        "--goal", action="append", default=[], required=True,
        help="goal pool, issued round-robin (repeatable)",
    )
    loadgen.add_argument(
        "--cores", default=None, metavar="N[,N...]",
        help="self-hosting sweep: serve --file at each core count with "
        "process shard workers and print a percentile table",
    )
    loadgen.add_argument(
        "--file", default=None,
        help="Prolog source to self-host (required with --cores)",
    )
    loadgen.add_argument(
        "--workers", choices=["processes", "threads"], default="processes",
        help="shard backend for the --cores sweep",
    )
    loadgen.add_argument(
        "--result-transport",
        choices=["shm", "pipe"],
        default="shm",
        help="result transport for --cores process workers "
        "(shared-memory slabs or the pickled pipe)",
    )
    loadgen.add_argument("--qps", type=float, default=200.0)
    loadgen.add_argument("--duration-s", type=float, default=1.0)
    loadgen.add_argument("--deadline-ms", type=int, default=0)
    loadgen.add_argument(
        "--mode", choices=[m.value for m in SearchMode]
    )
    loadgen.add_argument(
        "--retries", type=int, default=0,
        help="client retry cap (0 keeps SERVER_BUSY visible in the counts)",
    )
    loadgen.add_argument(
        "--write-fraction", type=float, default=0.0,
        help="fraction of arrivals issued as assertz mutations of unique "
        "generated facts (mixed read/write workload; default 0 = reads "
        "only)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0,
        help="seed for the read/write arrival mix (same seed = same mix)",
    )

    goal = commands.add_parser("goal", help="solve a goal with an empty KB")
    goal.add_argument("text", help="the goal")
    goal.add_argument("--max-solutions", type=int, default=10)

    commands.add_parser("table1", help="print the reproduced Table 1")
    commands.add_parser("microcode", help="disassemble the FS2 search program")

    dump = commands.add_parser(
        "dump", help="compile a clause and dump its PIF encoding"
    )
    dump.add_argument("clause", help="one clause, e.g. 'p(X, f(a)) :- q(X)'")

    wal_dump = commands.add_parser(
        "wal-dump",
        help="print a durable store's on-disk state: snapshots, WAL "
        "segments and the logged mutation records",
    )
    wal_dump.add_argument("directory", help="a `serve --durability` directory")

    compact = commands.add_parser(
        "compact",
        help="fold a durable store's WAL tail into a fresh snapshot "
        "offline (the store must not be open in a server)",
    )
    compact.add_argument("directory", help="a `serve --durability` directory")
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1(out)
    if args.command == "microcode":
        return _cmd_microcode(out)
    if args.command == "dump":
        return _cmd_dump(args, out)
    if args.command == "wal-dump":
        return _cmd_wal_dump(args, out)
    if args.command == "compact":
        return _cmd_compact(args, out)
    if args.command == "goal":
        machine = PrologMachine(
            KnowledgeBase(), unknown_predicates="fail", output=out
        )
        _run_goal(machine, args.text, args.max_solutions, out)
        return 0
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "client":
        return _cmd_client(args, out)
    if args.command == "loadgen":
        return _cmd_loadgen(args, out)
    return _cmd_consult(args, out)


def _cmd_table1(out) -> int:
    out.write("Table 1: Execution Times of the FS2 Hardware Functions\n")
    for figure, op_name, time_ns in table1():
        out.write(f"  figure {figure:>2}  {op_name:<24} {time_ns:>4} ns\n")
    rate = worst_case_rate_bytes_per_sec() / 1e6
    out.write(f"worst-case filter rate: {rate:.2f} Mbytes/second\n")
    return 0


def _cmd_microcode(out) -> int:
    program = assemble_search_program()
    out.write(f"FS2 search microprogram ({len(program)} words):\n")
    for line in disassemble(program):
        out.write(line + "\n")
    return 0


def _cmd_dump(args, out) -> int:
    from .pif import SymbolTable, compile_clause
    from .pif.dump import dump_record
    from .terms import clause_from_term

    symbols = SymbolTable()
    clause = clause_from_term(read_term(args.clause))
    record = compile_clause(clause, symbols)
    for line in dump_record(record, symbols):
        out.write(line + "\n")
    out.write(f"record size: {len(record.to_bytes())} bytes\n")
    return 0


def _cmd_wal_dump(args, out) -> int:
    import pathlib

    from .storage import wal_dump

    if not pathlib.Path(args.directory).is_dir():
        out.write(f"error: {args.directory} is not a directory\n")
        return 1
    out.write(wal_dump(args.directory) + "\n")
    return 0


def _cmd_compact(args, out) -> int:
    """Offline compaction: recover the store, snapshot it, purge the WAL.

    The shard layout comes from the store's own ``store.json`` (written
    when the store was first opened), so the engine rebuilt here matches
    the one that wrote the log.
    """
    import json
    import pathlib

    from .storage import DurabilityOptions

    root = pathlib.Path(args.directory)
    meta_path = root / "store.json"
    if not meta_path.exists():
        out.write(f"error: {meta_path} not found (not a durable store?)\n")
        return 1
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    engine = ShardedRetrievalServer(
        int(meta.get("num_shards", 1)),
        meta.get("policy", ShardingPolicy.PREDICATE.value),
        durability=DurabilityOptions(directory=root, auto_compact=False),
    )
    try:
        recovered = engine.recovered
        replayed = len(recovered.records) if recovered is not None else 0
        seq = engine.compact()
        out.write(
            f"compacted {engine.clause_count()} clauses at seq {seq} "
            f"({replayed} WAL records folded in)\n"
        )
    finally:
        engine.close()
    return 0


def _cmd_consult(args, out) -> int:
    obs = None
    if getattr(args, "trace_json", None):
        obs = Instrumentation()
    if args.shards > 1:
        return _cmd_sharded(args, out, obs)
    machine = _load_machine(args, out, obs)
    for goal_text in args.goal:
        _run_goal(machine, goal_text, args.max_solutions, out)
    if args.goal:
        stats = machine.stats
        modes = ", ".join(
            f"{m.value}x{n}" for m, n in sorted(
                stats.mode_uses.items(), key=lambda kv: kv[0].value
            )
        )
        out.write(
            f"[stats] retrievals={stats.retrievals} "
            f"scanned={stats.clauses_scanned} candidates={stats.candidates} "
            f"modes: {modes}\n"
        )
    _write_trace(args, obs, out)
    return 0


def _cmd_stats(args, out) -> int:
    from .report import format_metrics, format_shard_report

    obs = Instrumentation()
    if args.shards > 1:
        code = _cmd_sharded(args, out, obs, cache_size=args.cache)
        out.write(format_metrics(obs) + "\n")
        out.write(format_shard_report(obs.registry) + "\n")
        return code
    machine = _load_machine(args, out, obs, cache_size=args.cache)
    for goal_text in args.goal:
        _run_goal(machine, goal_text, args.max_solutions, out)
    out.write(format_metrics(obs) + "\n")
    _write_trace(args, obs, out)
    return 0


def _cmd_sharded(args, out, obs: Instrumentation | None, cache_size: int = 0) -> int:
    """Consult a program into an N-shard cluster and batch the goals.

    The sharded path is a *retrieval* front-end: goals are clause
    retrievals answered by full unification over the merged candidates
    (no builtin evaluation), and the whole goal list also runs as one
    batch so per-shard busy time and the parallel-disk speedup can be
    reported.
    """
    from .terms import variables

    server = ShardedRetrievalServer(
        args.shards,
        args.shard_by,
        cache_size=cache_size,
        fs1_mode=getattr(args, "fs1_mode", "bitsliced"),
        fs2_mode=getattr(args, "fs2_mode", "compiled"),
        **({"obs": obs} if obs is not None else {}),
    )
    with open(args.file, encoding="utf-8") as handle:
        count = server.consult_text(handle.read())
    balance = " ".join(
        f"s{k}={n}" for k, n in sorted(server.shard_clause_counts().items())
    )
    out.write(
        f"consulted {count} clauses into {args.shards} shards "
        f"(policy={server.policy.value}): {balance}\n"
    )
    if args.disk:
        server.pin_module("user", Residency.DISK)
        out.write("shard programs pinned to the simulated disks\n")
    mode = SearchMode(args.mode) if args.mode else None
    goals = [read_term(text) for text in args.goal]
    for goal_text, goal in zip(args.goal, goals):
        out.write(f"?- {goal_text}.\n")
        shown = 0
        for _, bindings in server.solutions(goal, mode=mode):
            named = [v for v in variables(goal) if not v.is_anonymous()]
            if not named:
                out.write("   true\n")
            else:
                rendered = ", ".join(
                    f"{v.name} = {term_to_string(bindings.resolve(v))}"
                    for v in named
                )
                out.write(f"   {rendered}\n")
            shown += 1
            if shown >= args.max_solutions:
                out.write("   ... (solution limit reached)\n")
                break
        if shown == 0:
            out.write("   false\n")
    if goals:
        # The batch goes through the per-shard batched-FS1 path: each
        # shard amortises its sub-queries over one columnar index pass.
        batch = BatchExecutor(server).run(goals, mode=mode, batch_fs1=True)
        stats = batch.stats
        busy = " ".join(
            f"s{k}={v * 1e3:.3f}ms" for k, v in sorted(stats.shard_busy_s.items())
        )
        out.write(
            f"[batch] goals={stats.goals} "
            f"wall={stats.wall_clock_s * 1e3:.3f}ms "
            f"serial={stats.serial_time_s * 1e3:.3f}ms "
            f"speedup={stats.speedup:.2f}x\n"
        )
        if busy:
            out.write(f"[batch] shard busy: {busy}\n")
    _write_trace(args, obs, out)
    return 0


def _cmd_serve(args, out) -> int:
    """Load a program into a cluster and serve it over TCP until drained."""
    import asyncio

    from .net import RetrievalService
    from .report import format_net_report

    obs = Instrumentation()
    backend, num_shards = _parse_workers(args.workers, max(1, args.shards))
    durability = None
    if args.durability is not None:
        from .storage import DurabilityOptions

        durability = DurabilityOptions(
            directory=args.durability, flush=args.durability_flush
        )
    extra = {} if durability is None else {"durability": durability}
    if backend == "processes":
        from .parallel import ProcessShardedRetrievalServer

        server = ProcessShardedRetrievalServer(
            num_shards,
            args.shard_by,
            fs1_mode=args.fs1_mode,
            fs2_mode=args.fs2_mode,
            obs=obs,
            result_transport=getattr(args, "result_transport", "shm"),
            **extra,
        )
    else:
        server = ShardedRetrievalServer(
            num_shards,
            args.shard_by,
            fs1_mode=args.fs1_mode,
            fs2_mode=args.fs2_mode,
            obs=obs,
            **extra,
        )
    recovered = getattr(server, "recovered", None)
    if recovered is not None and not recovered.empty:
        # The durable store already holds the KB: the snapshot + WAL
        # tail are authoritative, re-consulting the source would
        # duplicate every clause.
        out.write(
            f"recovered {server.clause_count()} clauses from "
            f"{args.durability} (snapshot seq {recovered.snapshot_seq}, "
            f"{len(recovered.records)} WAL records replayed)\n"
        )
    else:
        with open(args.file, encoding="utf-8") as handle:
            count = server.consult_text(handle.read())
        out.write(f"consulted {count} clauses into {num_shards} shard(s)\n")
    if durability is not None:
        out.write(
            f"[wal] durability on: dir={args.durability} "
            f"flush={args.durability_flush}\n"
        )
    if args.disk:
        server.pin_module("user", Residency.DISK)
        out.write("shard programs pinned to the simulated disks\n")
    if backend == "processes":
        server.start()
        out.write(f"[parallel] {num_shards} shard worker process(es) up\n")
    service = RetrievalService(
        server,
        args.host,
        args.port,
        max_in_flight=args.max_in_flight,
        executor_workers=args.executor_workers,
        queue_limit=args.queue_limit,
        default_deadline_s=(
            args.default_deadline_ms / 1000.0
            if args.default_deadline_ms > 0 else None
        ),
        obs=obs,
    )

    async def serve() -> None:
        host, port = await service.start()
        # Publish a one-node manifest: this instance is a complete
        # single-replica cluster, so `client --manifest` answers and
        # versioned mutations are stale-checkable against it.
        from .cluster import ClusterManifest, ManifestHolder

        service.manifest_holder = ManifestHolder(
            ClusterManifest(
                num_shards=1,
                policy=args.shard_by,
                version=1,
                replicas={0: (f"{host}:{port}",)},
            )
        )
        out.write(f"[net] serving on {host}:{port}\n")
        if hasattr(out, "flush"):
            out.flush()
        await service.run(args.max_requests)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass  # run()'s finally already drained
    finally:
        if backend == "processes" or durability is not None:
            server.close()
    out.write(format_net_report(obs.registry) + "\n")
    return 0


def _parse_workers(spec: str, default_shards: int) -> tuple[str, int]:
    """Parse ``--workers threads | processes[:N]`` into (backend, shards)."""
    if spec == "threads":
        return "threads", default_shards
    if spec == "processes":
        return "processes", default_shards
    if spec.startswith("processes:"):
        count = int(spec.split(":", 1)[1])
        if count < 1:
            raise SystemExit("--workers processes:N needs N >= 1")
        return "processes", count
    raise SystemExit(f"unknown --workers backend {spec!r}")


def _cmd_client(args, out) -> int:
    """One-shot client: retrieve goals from a running `serve` instance."""
    from .net import DeadlineExceeded, NetError, RetrievalClient
    from .report import format_retrieval

    mode = SearchMode(args.mode) if args.mode else None
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
    goals = [read_term(text) for text in args.goal]
    try:
        with RetrievalClient(args.host, args.port) as client:
            for query_text in args.solve:
                out.write(f"?- {query_text}.\n")
                shown = 0
                for solution in client.solve(
                    read_term(query_text),
                    engine=args.engine,
                    mode=mode,
                    deadline_s=deadline_s,
                    max_solutions=args.max_solutions,
                ):
                    if not solution:
                        out.write("   true\n")
                    else:
                        rendered = ", ".join(
                            f"{name} = {term_to_string(value)}"
                            for name, value in sorted(solution.items())
                        )
                        out.write(f"   {rendered}\n")
                    shown += 1
                if shown == 0:
                    out.write("   false\n")
            for text in args.assert_clauses:
                version, _, _ = client.mutate(
                    "assertz", read_term(text), deadline_s=deadline_s
                )
                out.write(f"asserted {text.strip()} (version {version})\n")
            for text in args.retract:
                version, _, removed = client.mutate(
                    "retract", read_term(text), deadline_s=deadline_s
                )
                if removed is None:
                    out.write(f"retract {text.strip()}: false\n")
                else:
                    out.write(f"retracted {removed} (version {version})\n")
            if args.manifest:
                out.write(client.manifest().to_json() + "\n")
            wrote = (
                args.assert_clauses or args.retract or args.manifest
            )
            if not goals and not args.solve and not wrote:
                client.ping()
                out.write("pong\n")
            elif args.batch:
                results = client.retrieve_batch(
                    goals, mode=mode, deadline_s=deadline_s
                )
            else:
                results = [
                    client.retrieve(goal, mode=mode, deadline_s=deadline_s)
                    for goal in goals
                ]
            if goals:
                for result in results:
                    out.write(format_retrieval(result.goal, result.stats) + "\n")
                    for clause in result.candidates:
                        out.write(f"   {clause}\n")
            if args.server_stats:
                snap = client.stats()
                out.write(
                    f"[server] address={snap['address']} "
                    f"handled={snap['handled']} "
                    f"admitted_now={snap['admitted_now']} "
                    f"engine_clauses={snap['engine_clauses']}\n"
                )
    except (DeadlineExceeded, NetError, ConnectionError, OSError) as exc:
        out.write(f"error: {exc}\n")
        return 1
    return 0


def _cmd_loadgen(args, out) -> int:
    """Open-loop load generation against a running `serve` instance."""
    from .workloads import run_loadgen

    mode = SearchMode(args.mode) if args.mode else None
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
    goals = [read_term(text) for text in args.goal]
    if args.cores is not None:
        from .workloads import format_cores_table, run_cores_sweep

        if args.file is None:
            out.write("error: --cores needs --file (the program to self-host)\n")
            return 1
        cores = tuple(int(part) for part in args.cores.split(","))
        with open(args.file, encoding="utf-8") as handle:
            program_text = handle.read()
        rows = run_cores_sweep(
            program_text,
            goals,
            cores=cores,
            qps=args.qps,
            duration_s=args.duration_s,
            mode=mode,
            deadline_s=deadline_s,
            workers=args.workers,
            result_transport=args.result_transport,
        )
        out.write(format_cores_table(rows) + "\n")
        return 0
    if args.port is None:
        out.write("error: --port is required without --cores\n")
        return 1
    result = run_loadgen(
        args.host,
        args.port,
        goals,
        qps=args.qps,
        duration_s=args.duration_s,
        mode=mode,
        deadline_s=deadline_s,
        max_retries=args.retries,
        write_fraction=args.write_fraction,
        seed=args.seed,
    )
    out.write("[loadgen] " + result.summary() + "\n")
    return 0


def _load_machine(
    args, out, obs: Instrumentation | None, cache_size: int = 0
) -> PrologMachine:
    kb = KnowledgeBase(obs=obs)
    with open(args.file, encoding="utf-8") as handle:
        count = kb.consult_text(handle.read())
    out.write(f"consulted {count} clauses from {args.file}\n")
    if args.disk:
        kb.module("user").pin(Residency.DISK)
        kb.sync_to_disk()
        out.write("program pinned to the simulated disk\n")
    mode = SearchMode(args.mode) if args.mode else None
    crs = ClauseRetrievalServer(
        kb,
        cache_size=cache_size,
        fs1_mode=getattr(args, "fs1_mode", "bitsliced"),
        fs2_mode=getattr(args, "fs2_mode", "compiled"),
        **({"obs": obs} if obs is not None else {}),
    )
    return PrologMachine(
        kb,
        crs=crs,
        mode=mode,
        unknown_predicates="fail",
        load_library=args.library,
        output=out,
        **({"obs": obs} if obs is not None else {}),
    )


def _write_trace(args, obs: Instrumentation | None, out) -> None:
    path = getattr(args, "trace_json", None)
    if not path or obs is None:
        return
    count = obs.recorder.write_ndjson(path)
    out.write(f"wrote {count} spans to {path}\n")


def _run_goal(machine: PrologMachine, goal_text: str, limit: int, out) -> None:
    out.write(f"?- {goal_text}.\n")
    shown = 0
    for solution in machine.solve_text(goal_text):
        if not solution:
            out.write("   true\n")
        else:
            rendered = ", ".join(
                f"{name} = {term_to_string(value)}"
                for name, value in solution.items()
            )
            out.write(f"   {rendered}\n")
        shown += 1
        if shown >= limit:
            out.write("   ... (solution limit reached)\n")
            break
    if shown == 0:
        out.write("   false\n")


if __name__ == "__main__":
    raise SystemExit(main())
