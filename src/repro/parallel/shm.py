"""Shared-memory result slabs for the process data plane.

PR 8's workers ship every retrieval result back to the parent as a
pickled :class:`~repro.crs.RetrievalResult` — for a broadcast-heavy
``retrieve_batch`` that is a serialize/copy/deserialize triple over
every candidate term graph, per result, per shard.  But the candidate
*records* already exist as bytes in the worker's mmap'd segment, and
the parent holds a byte-identical store (segments are written from it
and every mutation is forwarded under the same shard lock), so the
parent can rebuild each candidate from ``(address, record bytes)``
through its own decode cache.

Each worker therefore gets a ring of fixed-size slots inside one
:class:`multiprocessing.shared_memory.SharedMemory` slab.  A result is
encoded as a fixed-header payload::

    u32 stats_len | u32 count          (_RESULT)
    stats_len × u8                      pickled RetrievalStats
    count × (u32 address, u32 length)   (_PAIR, candidate directory)
    concatenated record bytes           (PIF records, segment order)

and a batch as ``u32 n`` followed by ``n`` length-prefixed result
payloads.  The worker copies the payload into the next ring slot and
sends only ``("__shm__", slot, length)`` over the pipe; the parent
decodes straight off a ``memoryview`` of the slab.  The pipe stays the
control channel, and strict request-reply per worker means a slot is
never overwritten before the parent has consumed it (a ring of
``DEFAULT_SLOTS`` just keeps recently-read slots intact for debugging).

Fallback: when a payload outgrows the slot, the candidate addresses are
unknown (merged results), or a record address is missing from the
worker's clause file, the worker silently falls back to the pickled
pipe — the parent counts those in ``parallel.shm.fallbacks``.
"""

from __future__ import annotations

import pickle
import struct
from typing import TYPE_CHECKING, Sequence

from ..terms import Term, functor_indicator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.server import ClusterShard
    from ..crs import RetrievalResult

__all__ = [
    "DEFAULT_SLOTS",
    "DEFAULT_SLOT_BYTES",
    "SHM_MARKER",
    "SlabWriter",
    "attach_slab",
    "decode_batch",
    "decode_result",
    "encode_batch",
    "encode_result",
    "is_shm_ref",
]

#: ring depth per worker; one slot would suffice under strict
#: request-reply, the ring keeps the last few payloads inspectable.
DEFAULT_SLOTS = 4
#: per-slot capacity; payloads above this fall back to the pipe.
DEFAULT_SLOT_BYTES = 1 << 20

#: first element of a slab reference riding the pipe in place of the
#: pickled result: ``(SHM_MARKER, slot, payload_length)``.
SHM_MARKER = "__shm__"

_RESULT = struct.Struct("<II")  # stats_len, candidate count
_PAIR = struct.Struct("<II")  # record address, record length
_COUNT = struct.Struct("<I")  # batch size / per-result length prefix


def is_shm_ref(payload) -> bool:
    """True when a worker reply is a slab reference, not a result."""
    return (
        isinstance(payload, tuple)
        and len(payload) == 3
        and payload[0] == SHM_MARKER
    )


# -- worker side -------------------------------------------------------------


def encode_result(result: "RetrievalResult", kb) -> bytes | None:
    """Serialise one result as a candidate directory over ``kb``'s records.

    Returns ``None`` when the result cannot ride the slab (no address
    list, or an address is missing from the clause file) — the caller
    falls back to the pickled pipe.
    """
    addresses = result.addresses
    if addresses is None or len(addresses) != len(result.candidates):
        return None
    stats_blob = pickle.dumps(result.stats)
    out = bytearray(_RESULT.pack(len(stats_blob), len(addresses)))
    out += stats_blob
    if not addresses:
        return bytes(out)
    try:
        clause_file = kb.store(functor_indicator(result.goal)).clause_file
        spans = [clause_file.record_span(address) for address in addresses]
    except KeyError:
        return None
    records = [clause_file.record_bytes(position) for position, _ in spans]
    for address, record in zip(addresses, records):
        out += _PAIR.pack(address, len(record))
    for record in records:
        out += record
    return bytes(out)


def encode_batch(results: Sequence["RetrievalResult"], kb) -> bytes | None:
    """Length-prefixed concatenation of :func:`encode_result` payloads."""
    out = bytearray(_COUNT.pack(len(results)))
    for result in results:
        encoded = encode_result(result, kb)
        if encoded is None:
            return None
        out += _COUNT.pack(len(encoded))
        out += encoded
    return bytes(out)


class SlabWriter:
    """The worker's end of the slab: copy a payload into the next slot."""

    def __init__(self, shm, slots: int, slot_bytes: int):
        self.shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._cursor = 0

    def write(self, encoded: bytes) -> tuple[str, int, int] | None:
        """Place ``encoded`` into the ring; ``None`` when it won't fit."""
        if len(encoded) > self.slot_bytes:
            return None
        slot = self._cursor
        self._cursor = (slot + 1) % self.slots
        offset = slot * self.slot_bytes
        self.shm.buf[offset : offset + len(encoded)] = encoded
        return (SHM_MARKER, slot, len(encoded))

    def close(self) -> None:
        self.shm.close()


def attach_slab(name: str):
    """Attach an existing slab by name (worker side).

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker; workers are spawned by :mod:`multiprocessing`, so
    they share the parent's tracker and the re-register is an idempotent
    set-add — the parent's ``unlink`` unregisters the name exactly once.
    (Do *not* unregister here: that would strip the parent's own
    registration from the shared tracker.)
    """
    from multiprocessing.shared_memory import SharedMemory

    return SharedMemory(name=name)


# -- parent side -------------------------------------------------------------


def decode_result(
    view: memoryview, goal: Term, shard: "ClusterShard"
) -> "RetrievalResult":
    """Rebuild a result from its slab payload against the parent shard.

    The records decode through ``shard.server``'s decoded-clause cache
    under the *parent's* clause-file generation: worker and parent
    stores are byte-identical by construction (segments are exported
    from the parent, mutations are forwarded under the shard lock), so
    a repeated broadcast answer costs a cache probe, not a decode.
    """
    result, _ = _decode_one(view, 0, goal, shard)
    return result


def decode_batch(
    view: memoryview, goals: Sequence[Term], shard: "ClusterShard"
) -> "list[RetrievalResult]":
    """Rebuild a ``retrieve_batch`` reply (parallel to ``goals``)."""
    (count,) = _COUNT.unpack_from(view, 0)
    if count != len(goals):
        raise ValueError(
            f"slab batch has {count} results for {len(goals)} goals"
        )
    offset = _COUNT.size
    results = []
    for goal in goals:
        (length,) = _COUNT.unpack_from(view, offset)
        offset += _COUNT.size
        result, consumed = _decode_one(view, offset, goal, shard)
        if consumed != length:
            raise ValueError("slab batch payload length mismatch")
        offset += length
        results.append(result)
    return results


def _decode_one(
    view: memoryview, base: int, goal: Term, shard: "ClusterShard"
) -> "tuple[RetrievalResult, int]":
    from ..crs import RetrievalResult

    stats_len, count = _RESULT.unpack_from(view, base)
    offset = base + _RESULT.size
    stats = pickle.loads(view[offset : offset + stats_len])
    offset += stats_len
    pairs = list(
        _PAIR.iter_unpack(bytes(view[offset : offset + count * _PAIR.size]))
    )
    offset += count * _PAIR.size
    candidates = []
    if count:
        store = shard.kb.store(functor_indicator(goal))
        decode = shard.server._decode_record
        for address, length in pairs:
            candidates.append(
                decode(store, view[offset : offset + length], address)
            )
            offset += length
    result = RetrievalResult(
        goal=goal,
        candidates=candidates,
        stats=stats,
        addresses=tuple(address for address, _ in pairs),
    )
    return result, offset - base
