"""The multi-core data plane: process shard workers over shared segments.

See :mod:`repro.parallel.segments` for the mmap segment format and the
shared read-only views, :mod:`repro.parallel.worker` for the worker
process protocol, :mod:`repro.parallel.shm` for the shared-memory
result slab ring, and :mod:`repro.parallel.server` for the
process-backed drop-in behind the cluster front-end.
"""

from .segments import (
    SegmentError,
    SharedClauseFile,
    SharedIndex,
    SharedKnowledgeBase,
    attach_kb,
    write_segments,
)
from .server import ProcessShardedRetrievalServer, WorkerError
from .shm import decode_batch, decode_result, encode_batch, encode_result
from .worker import WorkerConfig, worker_main

__all__ = [
    "ProcessShardedRetrievalServer",
    "SegmentError",
    "SharedClauseFile",
    "SharedIndex",
    "SharedKnowledgeBase",
    "WorkerConfig",
    "WorkerError",
    "attach_kb",
    "decode_batch",
    "decode_result",
    "encode_batch",
    "encode_result",
    "worker_main",
    "write_segments",
]
