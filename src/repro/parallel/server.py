"""A process-backed :class:`~repro.cluster.ShardedRetrievalServer`.

``ProcessShardedRetrievalServer`` keeps the entire cluster front-end —
routing, front-end mode planning, the cluster LRU, the mutation log and
idempotency memo, stat merging — in the parent, and moves only the
*engine execution* into one worker process per shard.  The parent
remains authoritative: its in-process shard engines hold the canonical
KB (so snapshots, migration and the mutation log keep working
unchanged), and :meth:`start` exports each shard into an mmap segment
directory that the workers attach zero-copy.

Why this shape gives bit-identical accounting with the threaded path:

* the parent plans the effective mode once per goal over its aggregate
  view and ships it explicitly — workers never plan;
* worker shard content is byte-identical to the parent shard (segments
  are written from it, and every later mutation is forwarded under the
  same shard lock that ordered it locally);
* the worker runs the *same* ``ClauseRetrievalServer`` code over the
  same records, and simulated time is a pure function of those inputs.

The GIL is what changes: each worker owns its own interpreter, so the
per-record Python work of a broadcast ``retrieve_batch`` runs on N
cores instead of interleaving on one.  The parent-side threads spend
their time blocked in ``Connection.recv`` (GIL released).

Result transport: with ``result_transport="shm"`` (the default) each
worker owns a ring of shared-memory slots and replies to the retrieve
verbs with a ``("__shm__", slot, length)`` reference instead of a
pickled result — the parent decodes candidates off the slab through its
own clause cache (:mod:`repro.parallel.shm`).  ``"pipe"`` restores the
pickled transport; either way the control channel stays the pipe.

Fault tolerance: a worker that dies mid-call is respawned in place —
segments are re-exported from the parent's authoritative shard (which
replays every mutation by construction), the call retried once, and
``parallel.worker.restarts`` incremented.  ``WorkerError`` only
escapes when the *respawned* worker fails too.
"""

from __future__ import annotations

import shutil
import tempfile
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path

from ..cluster.server import ClusterShard, ShardedRetrievalServer
from ..crs import RetrievalResult, SearchMode
from ..terms import Clause, Term
from .segments import write_segments
from .shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    decode_batch,
    decode_result,
    is_shm_ref,
)
from .worker import WorkerConfig, worker_main

__all__ = ["ProcessShardedRetrievalServer", "WorkerError"]


class WorkerError(RuntimeError):
    """A shard worker process died or failed to come up."""


class _WorkerHandle:
    """Parent-side endpoint of one shard worker (pipe + process + slab)."""

    def __init__(self, shard_id: int, process, conn, shm=None):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        #: the worker's result slab (parent-owned; ``None`` on the
        #: pickled-pipe transport).
        self.shm = shm
        #: last metrics snapshot merged into the parent registry, so
        #: repeated pulls advance by delta instead of double-counting.
        self.last_metrics: dict | None = None

    def call(self, *message):
        """One RPC round-trip.  Caller holds the shard lock."""
        try:
            self.conn.send(message)
            status, payload = self.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerError(
                f"shard worker {self.shard_id} died mid-call"
            ) from exc
        if status == "err":
            raise payload
        return payload

    #: per-slot capacity, stamped at launch so ``slab_view`` can do the
    #: offset math without re-deriving it from the config.
    slot_bytes: int = DEFAULT_SLOT_BYTES

    def slab_view(self, slot: int, length: int) -> memoryview:
        """A zero-copy view of one slab payload (release after decode)."""
        offset = slot * self.slot_bytes
        return self.shm.buf[offset : offset + length]

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.conn.close()
        if self.shm is not None:
            try:
                self.shm.close()
            except BufferError:  # a decoded view is still alive somewhere
                pass
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            self.shm = None


class ProcessShardedRetrievalServer(ShardedRetrievalServer):
    """The multi-core data plane: shard engines in worker processes.

    Drop-in for :class:`~repro.cluster.ShardedRetrievalServer` (and
    therefore for :class:`~repro.cluster.BatchExecutor`, the network
    service, and the solve engine's ``ClusterRetriever``): construct,
    load clauses, then :meth:`start` to bring the workers up.  Before
    ``start`` — and after :meth:`close` — it behaves exactly like its
    threaded parent, which is what lets one test drive both paths from
    a single instance.
    """

    def __init__(
        self,
        *args,
        spool_dir: str | None = None,
        start_method: str = "spawn",
        result_transport: str = "shm",
        shm_slots: int = DEFAULT_SLOTS,
        shm_slot_bytes: int = DEFAULT_SLOT_BYTES,
        **kwargs,
    ):
        if result_transport not in ("shm", "pipe"):
            raise ValueError("result_transport must be 'shm' or 'pipe'")
        # Worker state exists before super().__init__: a durable parent
        # replays its WAL during construction, and the mutation hooks
        # below consult ``_handles`` (empty = workers not up, local only).
        self._spool_dir = spool_dir
        self._owns_spool = False
        self._start_method = start_method
        self._result_transport = result_transport
        self._shm_slots = shm_slots
        self._shm_slot_bytes = shm_slot_bytes
        self._handles: dict[int, _WorkerHandle] = {}
        self._reload_counter = 0
        super().__init__(*args, **kwargs)

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._handles)

    def start(self) -> "ProcessShardedRetrievalServer":
        """Export segments and spawn one worker per shard (idempotent)."""
        if self._handles:
            return self
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="clare-segments-")
            self._owns_spool = True
        handles: dict[int, _WorkerHandle] = {}
        try:
            for shard in self.shards:
                handles[shard.shard_id] = self._launch_worker(shard)
            for handle in handles.values():  # ready handshake per worker
                self._await_ready(handle)
        except BaseException:
            for handle in handles.values():
                handle.stop(timeout=1.0)
            raise
        self._handles = handles
        self.obs.counter("parallel.workers_started").inc(len(handles))
        return self

    def close(self) -> None:
        """Stop the workers and reclaim the spool (idempotent)."""
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            handle.stop()
        if self._owns_spool and self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
            self._owns_spool = False
        super().close()

    def __enter__(self) -> "ProcessShardedRetrievalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _launch_worker(self, shard: ClusterShard) -> _WorkerHandle:
        """Export the shard and spawn its worker (no handshake yet)."""
        ctx = get_context(self._start_method)
        segments_dir = self._export_shard(shard)
        shm = None
        if self._result_transport == "shm":
            shm = SharedMemory(
                create=True, size=self._shm_slots * self._shm_slot_bytes
            )
        parent_conn, child_conn = ctx.Pipe()
        config = WorkerConfig(
            shard_id=shard.shard_id,
            segments_dir=segments_dir,
            fs1_mode=self._fs1_mode,
            fs2_mode=self._fs2_mode,
            cross_binding=self._cross_binding,
            cost_model=self._cost_model,
            result_transport=self._result_transport,
            shm_name=shm.name if shm is not None else None,
            shm_slots=self._shm_slots,
            shm_slot_bytes=self._shm_slot_bytes,
        )
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, config),
            name=f"clare-shard-{shard.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(shard.shard_id, process, parent_conn, shm)
        handle.slot_bytes = self._shm_slot_bytes
        return handle

    def _await_ready(self, handle: _WorkerHandle) -> None:
        try:
            status, payload = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"shard worker {handle.shard_id} failed to start"
            ) from exc
        if status == "err":
            raise payload

    def _respawn(self, shard: ClusterShard) -> _WorkerHandle:
        """Bring a dead shard worker back over freshly exported segments.

        The parent shard is authoritative and already holds every
        forwarded mutation, so re-exporting replays the generation —
        the new worker is byte-identical to what the dead one should
        have been.
        """
        handle = self._launch_worker(shard)
        try:
            self._await_ready(handle)
        except BaseException:
            handle.stop(timeout=1.0)
            raise
        self._handles[shard.shard_id] = handle
        return handle

    def _call_worker(self, shard: ClusterShard, *message):
        """One worker RPC with respawn-and-retry on a dead process.

        Caller holds the shard lock, so no mutation can race the
        re-export.  A second failure (the respawned worker also died)
        propagates — each *call* still gets its own retry, so the
        cluster degrades per-request instead of failing permanently.
        """
        handle = self._handles[shard.shard_id]
        try:
            return handle, handle.call(*message)
        except WorkerError:
            self.obs.counter("parallel.worker.restarts").inc()
            handle.stop(timeout=1.0)
            handle = self._respawn(shard)
            return handle, handle.call(*message)

    def _export_shard(self, shard: ClusterShard) -> str:
        """Write one shard's segments under a fresh generation directory.

        Re-exports (worker reload after ``adopt_kb``, worker respawn)
        get a new directory instead of overwriting: the old worker may
        still hold maps over the previous files, and the generation
        suffix keeps the swap atomic from its point of view.
        """
        self._reload_counter += 1
        directory = str(
            Path(self._spool_dir)
            / f"shard-{shard.shard_id}-g{self._reload_counter}"
        )
        write_segments(shard.kb, directory)
        return directory

    # -- execution seam overrides -------------------------------------------

    def _shard_retrieve(
        self, shard: ClusterShard, goal: Term, mode: SearchMode
    ) -> RetrievalResult:
        handle = self._handles.get(shard.shard_id)
        if handle is None:
            return super()._shard_retrieve(shard, goal, mode)
        handle, payload = self._call_worker(shard, "retrieve", goal, mode)
        if is_shm_ref(payload):
            return self._decode_slab(
                handle, payload, lambda view: decode_result(view, goal, shard)
            )
        self._count_fallback(handle)
        return payload

    def _shard_retrieve_batch(
        self, shard: ClusterShard, goals: list[Term], mode: SearchMode
    ) -> list[RetrievalResult]:
        handle = self._handles.get(shard.shard_id)
        if handle is None:
            return super()._shard_retrieve_batch(shard, goals, mode)
        handle, payload = self._call_worker(
            shard, "retrieve_batch", goals, mode
        )
        if is_shm_ref(payload):
            return self._decode_slab(
                handle, payload, lambda view: decode_batch(view, goals, shard)
            )
        self._count_fallback(handle)
        return payload

    def _decode_slab(self, handle: _WorkerHandle, payload, decode):
        _, slot, length = payload
        view = handle.slab_view(slot, length)
        try:
            decoded = decode(view)
        finally:
            view.release()
        self.obs.counter("parallel.shm.results").inc()
        self.obs.counter("parallel.shm.bytes").inc(length)
        return decoded

    def _count_fallback(self, handle: _WorkerHandle) -> None:
        """A retrieve verb came back pickled on the shm transport."""
        if self._result_transport == "shm" and handle.shm is not None:
            self.obs.counter("parallel.shm.fallbacks").inc()

    def _on_shard_mutation(
        self,
        shard: ClusterShard,
        op: str,
        clause: Clause | None,
        module: str = "user",
    ) -> None:
        handle = self._handles.get(shard.shard_id)
        if handle is None:
            return
        if op == "reload":
            self._call_worker(shard, "reload", self._export_shard(shard))
        else:
            self._call_worker(shard, "mutate", op, clause, module)

    def _on_pin_module(self, name: str, residency: str) -> None:
        for shard in self.shards:
            if shard.shard_id not in self._handles:
                continue
            with shard.lock:
                self._call_worker(shard, "pin", name, residency)

    # -- observability -------------------------------------------------------

    def pull_worker_metrics(self) -> dict[int, dict]:
        """Merge each worker's metrics into the parent registry.

        Counter and histogram families advance by delta since the last
        pull (see :meth:`~repro.obs.MetricsRegistry.merge_snapshot`);
        every merged series gains a ``worker`` label next to the
        ``shard`` label the worker already stamps, so cluster-wide
        totals keep aggregating while per-worker shares stay visible.
        Returns the raw snapshots by shard id.
        """
        snapshots: dict[int, dict] = {}
        for shard in self.shards:
            if shard.shard_id not in self._handles:
                continue
            with shard.lock:
                handle, snapshot = self._call_worker(shard, "metrics")
            self.obs.registry.merge_snapshot(
                snapshot,
                previous=handle.last_metrics,
                worker=str(shard.shard_id),
            )
            handle.last_metrics = snapshot
            snapshots[shard.shard_id] = snapshot
        return snapshots
