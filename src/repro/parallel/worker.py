"""The shard worker process: one CLARE engine over attached segments.

Each worker is spawned (never forked — spawn is the only start method
that behaves identically across platforms and never inherits locks or
mmaps mid-operation) with a picklable :class:`WorkerConfig`, attaches
the shard's segment directory zero-copy, builds the same
:class:`~repro.crs.ClauseRetrievalServer` the threaded path uses, and
then serves a tiny pickled-tuple RPC over its pipe:

``("retrieve", goal, mode)`` / ``("retrieve_batch", goals, mode)``
    Execute with the mode the parent planned — the worker never plans,
    which is one half of the bit-identical-stats guarantee (the other
    half is identical shard content and identical engine code).
``("mutate", op, clause, module)``
    Apply one forwarded mutation (``assertz``/``asserta``/
    ``remove_exact``); the touched predicate leaves its segment via
    copy-on-write.
``("pin", name, residency)``
    Mirror a module residency pin (plus the disk sync it implies).
``("reload", segments_dir)``
    Drop the engine and re-attach a freshly exported directory
    (wholesale KB adoption on the parent side).
``("metrics", )``
    Return the worker registry's snapshot for parent-side merging.
``("ping", )`` / ``("stop", )``
    Liveness and orderly shutdown.

Replies are ``("ok", payload)`` or ``("err", exception)``; results and
stats ride the pipe as pickled dataclasses (terms are frozen slotted
dataclasses with value equality, so transport is loss-free).  With
``result_transport="shm"`` the retrieve verbs instead write an
``(address, record bytes)`` directory into the worker's shared-memory
slab ring and reply with a ``("__shm__", slot, length)`` reference —
see :mod:`repro.parallel.shm`; payloads that cannot ride the slab
(outgrown slot, unknown addresses) fall back to the pickled pipe
transparently.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..crs import HostCostModel
from ..crs.server import ClauseRetrievalServer
from ..obs import Instrumentation
from ..storage import Residency
from .segments import attach_kb
from .shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    SlabWriter,
    attach_slab,
    encode_batch,
    encode_result,
)

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs to rebuild its shard engine."""

    shard_id: int
    segments_dir: str
    fs1_mode: str = "bitsliced"
    fs2_mode: str = "compiled"
    cross_binding: bool = True
    cost_model: HostCostModel | None = None
    #: ``"shm"`` ships retrieve results through the slab ring named by
    #: ``shm_name``; ``"pipe"`` (or a missing slab) pickles them.
    result_transport: str = "pipe"
    shm_name: str | None = None
    shm_slots: int = DEFAULT_SLOTS
    shm_slot_bytes: int = DEFAULT_SLOT_BYTES


def _build_engine(config: WorkerConfig, segments_dir: str):
    base = Instrumentation()
    obs = base.labelled(shard=str(config.shard_id))
    kb = attach_kb(segments_dir, obs=obs)
    server = ClauseRetrievalServer(
        kb,
        cost_model=config.cost_model,
        cross_binding=config.cross_binding,
        cache_size=0,  # caching happens once, at the cluster front-end
        obs=obs,
        fs1_mode=config.fs1_mode,
        fs2_mode=config.fs2_mode,
    )
    return base, kb, server


def _apply_mutation(kb, op: str, clause, module: str) -> None:
    if op == "assertz":
        kb.add_clause(clause, module=module)
    elif op == "asserta":
        kb.asserta(clause, module=module)
    elif op == "remove_exact":
        kb.remove_exact(clause)
    else:
        raise ValueError(f"unknown mutation op {op!r}")


def _send(conn, status: str, payload) -> None:
    try:
        conn.send((status, payload))
    except (pickle.PicklingError, TypeError, AttributeError):
        # An unpicklable payload (exotic exception state) must not kill
        # the reply — degrade to a plain RuntimeError description.
        conn.send(("err", RuntimeError(f"{type(payload).__name__}: {payload}")))


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point for the spawned worker process."""
    try:
        base, kb, server = _build_engine(config, config.segments_dir)
        writer = None
        if config.result_transport == "shm" and config.shm_name:
            writer = SlabWriter(
                attach_slab(config.shm_name),
                config.shm_slots,
                config.shm_slot_bytes,
            )
    except BaseException as exc:  # surface attach failures to the parent
        _send(conn, "err", exc)
        conn.close()
        return
    _send(conn, "ok", "ready")

    def _via_slab(result_payload, encode):
        """Slab reference for a retrieve reply, or the result itself."""
        if writer is None:
            return result_payload
        encoded = encode(result_payload, kb)
        if encoded is None:
            return result_payload
        ref = writer.write(encoded)
        return result_payload if ref is None else ref

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        verb = message[0]
        try:
            if verb == "retrieve":
                payload = _via_slab(
                    server.retrieve(message[1], mode=message[2]),
                    encode_result,
                )
            elif verb == "retrieve_batch":
                payload = _via_slab(
                    server.retrieve_batch(message[1], mode=message[2]),
                    encode_batch,
                )
            elif verb == "mutate":
                _apply_mutation(kb, message[1], message[2], message[3])
                payload = kb.version
            elif verb == "pin":
                kb.module(message[1]).pin(message[2])
                if message[2] == Residency.DISK:
                    kb.sync_to_disk()
                payload = None
            elif verb == "reload":
                base, kb, server = _build_engine(config, message[1])
                payload = "ready"
            elif verb == "metrics":
                payload = base.registry.snapshot()
            elif verb == "ping":
                payload = "pong"
            elif verb == "stop":
                _send(conn, "ok", None)
                break
            else:
                raise ValueError(f"unknown worker verb {verb!r}")
        except BaseException as exc:
            _send(conn, "err", exc)
        else:
            _send(conn, "ok", payload)
    if writer is not None:
        writer.close()
    conn.close()
