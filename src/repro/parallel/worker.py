"""The shard worker process: one CLARE engine over attached segments.

Each worker is spawned (never forked — spawn is the only start method
that behaves identically across platforms and never inherits locks or
mmaps mid-operation) with a picklable :class:`WorkerConfig`, attaches
the shard's segment directory zero-copy, builds the same
:class:`~repro.crs.ClauseRetrievalServer` the threaded path uses, and
then serves a tiny pickled-tuple RPC over its pipe:

``("retrieve", goal, mode)`` / ``("retrieve_batch", goals, mode)``
    Execute with the mode the parent planned — the worker never plans,
    which is one half of the bit-identical-stats guarantee (the other
    half is identical shard content and identical engine code).
``("mutate", op, clause, module)``
    Apply one forwarded mutation (``assertz``/``asserta``/
    ``remove_exact``); the touched predicate leaves its segment via
    copy-on-write.
``("pin", name, residency)``
    Mirror a module residency pin (plus the disk sync it implies).
``("reload", segments_dir)``
    Drop the engine and re-attach a freshly exported directory
    (wholesale KB adoption on the parent side).
``("metrics", )``
    Return the worker registry's snapshot for parent-side merging.
``("ping", )`` / ``("stop", )``
    Liveness and orderly shutdown.

Replies are ``("ok", payload)`` or ``("err", exception)``; results and
stats ride the pipe as pickled dataclasses (terms are frozen slotted
dataclasses with value equality, so transport is loss-free).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..crs import HostCostModel
from ..crs.server import ClauseRetrievalServer
from ..obs import Instrumentation
from ..storage import Residency
from .segments import attach_kb

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs to rebuild its shard engine."""

    shard_id: int
    segments_dir: str
    fs1_mode: str = "bitsliced"
    fs2_mode: str = "compiled"
    cross_binding: bool = True
    cost_model: HostCostModel | None = None


def _build_engine(config: WorkerConfig, segments_dir: str):
    base = Instrumentation()
    obs = base.labelled(shard=str(config.shard_id))
    kb = attach_kb(segments_dir, obs=obs)
    server = ClauseRetrievalServer(
        kb,
        cost_model=config.cost_model,
        cross_binding=config.cross_binding,
        cache_size=0,  # caching happens once, at the cluster front-end
        obs=obs,
        fs1_mode=config.fs1_mode,
        fs2_mode=config.fs2_mode,
    )
    return base, kb, server


def _apply_mutation(kb, op: str, clause, module: str) -> None:
    if op == "assertz":
        kb.add_clause(clause, module=module)
    elif op == "asserta":
        kb.asserta(clause, module=module)
    elif op == "remove_exact":
        kb.remove_exact(clause)
    else:
        raise ValueError(f"unknown mutation op {op!r}")


def _send(conn, status: str, payload) -> None:
    try:
        conn.send((status, payload))
    except (pickle.PicklingError, TypeError, AttributeError):
        # An unpicklable payload (exotic exception state) must not kill
        # the reply — degrade to a plain RuntimeError description.
        conn.send(("err", RuntimeError(f"{type(payload).__name__}: {payload}")))


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point for the spawned worker process."""
    try:
        base, kb, server = _build_engine(config, config.segments_dir)
    except BaseException as exc:  # surface attach failures to the parent
        _send(conn, "err", exc)
        conn.close()
        return
    _send(conn, "ok", "ready")

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        verb = message[0]
        try:
            if verb == "retrieve":
                payload = server.retrieve(message[1], mode=message[2])
            elif verb == "retrieve_batch":
                payload = server.retrieve_batch(message[1], mode=message[2])
            elif verb == "mutate":
                _apply_mutation(kb, message[1], message[2], message[3])
                payload = kb.version
            elif verb == "pin":
                kb.module(message[1]).pin(message[2])
                if message[2] == Residency.DISK:
                    kb.sync_to_disk()
                payload = None
            elif verb == "reload":
                base, kb, server = _build_engine(config, message[1])
                payload = "ready"
            elif verb == "metrics":
                payload = base.registry.snapshot()
            elif verb == "ping":
                payload = "pong"
            elif verb == "stop":
                _send(conn, "ok", None)
                break
            else:
                raise ValueError(f"unknown worker verb {verb!r}")
        except BaseException as exc:
            _send(conn, "err", exc)
        else:
            _send(conn, "ok", payload)
    conn.close()
