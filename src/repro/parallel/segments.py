"""mmap-backed read-only clause segments shared across processes.

The multi-core data plane (ROADMAP item 2) hosts each shard's engine in
a worker *process*; the shard's clause records and its bit-sliced SCW
columns are serialised **once** by the parent into a segment directory
and every worker attaches with ``mmap`` — the kernel shares the pages,
so N workers over one shard cost one copy of the knowledge base, and
record fetches inside a worker are ``memoryview`` slices of the map
(zero-copy all the way into the FS2 byte-walk).

Segment directory layout (one per shard), a superset of the
:mod:`repro.storage.persist` format:

* ``symbols.bin`` — the shared symbol table image;
* ``manifest.txt`` — scheme parameters, module residency pins, and one
  ``predicate`` line per store (name, arity, module, file stem, record
  count);
* ``<stem>.clauses`` — the predicate's concatenated record image (the
  same bytes CLARE streams);
* ``<stem>.addr`` — ``u32 count`` then ``count`` × (``u32 address``,
  ``u32 length``): the record address table, so attach is O(1) per
  record instead of a parse walk;
* ``<stem>.index`` — the horizontal SCW+MB index image
  (:meth:`~repro.scw.index.SecondaryIndexFile.to_bytes`);
* ``<stem>.cols`` — the bit-sliced columns: a ``u32×5`` header
  (entries, bytes per column, columns, planes, flags) followed by the
  packed column and plane integers (:meth:`~repro.scw.bitsliced.
  BitSlicedIndex.packed_columns`).  Flags bit 0 records that the
  columns are 64-bit word aligned; since little-endian zero padding is
  value-preserving, the *same* bytes rebuild either the big-int
  :class:`~repro.scw.bitsliced.BitSlicedIndex` (one ``int.from_bytes``
  per column) or the word-array :class:`~repro.scw.vector.
  VectorSlicedIndex` (one ``np.frombuffer`` over the whole image,
  zero-copy) — no clause decoding, no re-hashing either way.

Mutability: segments are immutable.  A worker that must mutate a
predicate first *materialises* it — decodes the shared records into a
private :class:`~repro.pif.ClauseFile` under a fresh generation — and
mutates that copy (copy-on-write per predicate).  Decoded-clause caches
key on (generation, address), and generation ids are process-local, so
no cross-process invalidation protocol is needed: the parent forwards
each mutation to the owning worker, and both sides' caches roll over
independently.
"""

from __future__ import annotations

import mmap
import pathlib
import struct
from typing import Iterator

from ..obs import Instrumentation
from ..pif import ClauseFile, CompiledClause, SymbolTable
from ..pif.clausefile import decode_compiled, next_generation
from ..scw import CodewordScheme, SecondaryIndexFile
from ..scw.bitsliced import BitSlicedIndex
from ..scw.codeword import Codeword
from ..scw.vector import VectorSlicedIndex
from ..scw.index import ADDRESS_BYTES, IndexEntry
from ..storage import KnowledgeBase
from ..storage.kb import PredicateStore
from ..storage.persist import _assign_stems
from ..terms import Clause

__all__ = [
    "SegmentError",
    "SharedClauseFile",
    "SharedIndex",
    "SharedKnowledgeBase",
    "attach_kb",
    "write_segments",
]

_MANIFEST = "manifest.txt"
_SYMBOLS = "symbols.bin"
_COLS_HEADER = struct.Struct("<IIIII")
#: flags bit 0: column_bytes is a multiple of 8, so the packed image can
#: be attached directly as ``uint64`` word rows (vector FS1 zero-copy).
_COLS_FLAG_WORD_ALIGNED = 1
_ADDR_COUNT = struct.Struct("<I")
_ADDR_PAIR = struct.Struct("<II")


class SegmentError(RuntimeError):
    """Raised on malformed or missing segment files."""


# -- export ----------------------------------------------------------------


def write_segments(kb: KnowledgeBase, directory: str | pathlib.Path) -> list[str]:
    """Serialise ``kb`` into a segment directory; returns files written.

    Called once per shard by the parent before spawning workers.  The
    clause images, address tables, horizontal index and packed bit-sliced
    columns are all written from the in-memory structures — workers never
    recompute them.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    stems = _assign_stems(kb)

    (path / _SYMBOLS).write_bytes(kb.symbols.to_bytes())
    written.append(_SYMBOLS)

    lines = [
        f"scheme\t{kb.scheme.width}\t{kb.scheme.bits_per_key}\t"
        f"{kb.scheme.max_args}\t{kb.scheme.max_depth}"
    ]
    for module in kb.modules():
        pin = module.pinned_residency or "-"
        lines.append(
            f"module\t{module.name}\t{module.large_threshold_bytes}\t{pin}"
        )
    for store in kb:
        name, arity = store.indicator
        stem = stems[store.indicator]
        clause_file = store.clause_file
        count = len(clause_file)
        lines.append(
            f"predicate\t{name}\t{arity}\t{store.module_name}\t{stem}\t{count}"
        )

        (path / f"{stem}.clauses").write_bytes(clause_file.to_bytes())
        written.append(f"{stem}.clauses")

        addresses = clause_file.record_addresses()
        lengths = clause_file.record_lengths()
        addr = bytearray(_ADDR_COUNT.pack(count))
        for address, length in zip(addresses, lengths):
            addr += _ADDR_PAIR.pack(address, length)
        (path / f"{stem}.addr").write_bytes(bytes(addr))
        written.append(f"{stem}.addr")

        (path / f"{stem}.index").write_bytes(store.index.to_bytes())
        written.append(f"{stem}.index")

        sliced = store.index.bitsliced
        column_bytes, columns, planes = sliced.packed_columns()
        flags = _COLS_FLAG_WORD_ALIGNED if column_bytes % 8 == 0 else 0
        cols = (
            _COLS_HEADER.pack(
                count,
                column_bytes,
                len(columns) // column_bytes,
                len(planes) // column_bytes,
                flags,
            )
            + columns
            + planes
        )
        (path / f"{stem}.cols").write_bytes(cols)
        written.append(f"{stem}.cols")
    (path / _MANIFEST).write_text("\n".join(lines) + "\n", encoding="utf-8")
    written.append(_MANIFEST)
    return written


# -- shared read-only views -------------------------------------------------


class SharedClauseFile:
    """A read-only :class:`~repro.pif.ClauseFile` view over an mmap.

    Implements the full read surface of ``ClauseFile`` (lengths, spans,
    record/decode accessors, serialisation) over a ``memoryview`` of the
    segment; :meth:`record_bytes` returns memoryview *slices*, so a
    candidate fetched here flows through FS2's byte-walk and into
    ``CompiledClause.from_bytes`` without a single record copy.

    Append is refused — mutation goes through
    :meth:`SharedKnowledgeBase.add_clause`, which materialises the
    predicate into a private mutable file first (copy-on-write).
    """

    def __init__(
        self,
        indicator: tuple[str, int],
        symbols: SymbolTable,
        view: memoryview,
        addresses: list[int],
        lengths: list[int],
    ):
        self.indicator = indicator
        self.symbols = symbols
        #: fresh per attach: (generation, address) keys stay unambiguous
        #: inside the attaching process's decode caches.
        self.generation = next_generation()
        self._view = view
        self._addresses = addresses
        self._lengths = lengths
        self._position_by_address = {a: i for i, a in enumerate(addresses)}

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[CompiledClause]:
        for position in range(len(self._addresses)):
            yield self.record(position)

    def record(self, index: int) -> CompiledClause:
        compiled, _ = CompiledClause.from_bytes(
            self._view, self.indicator, self._addresses[index]
        )
        return compiled

    def source_clause(self, index: int) -> Clause:
        return self.decode_clause(index)

    def decode_clause(self, index: int) -> Clause:
        return decode_compiled(self.record(index), self.symbols)

    def append(self, clause: Clause) -> CompiledClause:
        raise TypeError(
            "shared clause files are read-only; mutate through the "
            "knowledge base (copy-on-write)"
        )

    # -- persistence / byte access --------------------------------------

    def to_bytes(self, include_names: bool = True) -> bytes:
        if include_names:
            return bytes(self._view)
        return b"".join(
            self.record(i).to_bytes(False) for i in range(len(self))
        )

    def record_addresses(self, include_names: bool = True) -> list[int]:
        if include_names:
            return list(self._addresses)
        addresses = []
        position = 0
        for i in range(len(self)):
            addresses.append(position)
            position += len(self.record(i).to_bytes(False))
        return addresses

    def record_lengths(self) -> list[int]:
        return list(self._lengths)

    def record_span(self, address: int) -> tuple[int, int]:
        try:
            position = self._position_by_address[address]
        except KeyError:
            raise KeyError(
                f"no record of {self.indicator} at address {address}"
            ) from None
        return position, self._lengths[position]

    def record_bytes(self, position: int) -> memoryview:
        """The serialised record — a zero-copy slice of the segment."""
        start = self._addresses[position]
        return self._view[start : start + self._lengths[position]]

    def last_address(self) -> int:
        if not self._addresses:
            raise IndexError("clause file is empty")
        return self._addresses[-1]

    def size_bytes(self) -> int:
        return len(self._view)


class SharedIndex:
    """A read-only :class:`~repro.scw.SecondaryIndexFile` view.

    The horizontal entry rows live in the mmap'd ``.index`` image and
    are parsed per access (naive FS1 scans, ``entry_at``); the
    bit-sliced columnar view rebuilds lazily from the packed ``.cols``
    image — one ``int.from_bytes`` per column, no clause decoding.
    """

    def __init__(
        self,
        scheme: CodewordScheme,
        indicator: tuple[str, int],
        image: memoryview,
        addresses: list[int],
        entries: int,
        column_bytes: int,
        columns: memoryview,
        planes: memoryview,
    ):
        self.scheme = scheme
        self.indicator = indicator
        self._image = image
        self._addresses = addresses
        self._entries = entries
        self._column_bytes = column_bytes
        self._columns_view = columns
        self._planes_view = planes
        self._bitsliced: BitSlicedIndex | None = None
        self._vector: VectorSlicedIndex | None = None

    def __len__(self) -> int:
        return self._entries

    def __iter__(self) -> Iterator[IndexEntry]:
        for position in range(self._entries):
            yield self.entry_at(position)

    def entry_at(self, position: int) -> IndexEntry:
        row = self.scheme.entry_bytes(ADDRESS_BYTES)
        base = position * row
        cw = self.scheme.codeword_bytes
        mask_bytes = self.scheme.mask_bytes
        bits = int.from_bytes(self._image[base : base + cw], "big")
        mask = int.from_bytes(
            self._image[base + cw : base + cw + mask_bytes], "big"
        )
        address = int.from_bytes(
            self._image[base + cw + mask_bytes : base + row], "big"
        )
        return IndexEntry(Codeword(bits, mask), address)

    def add(self, head, address: int) -> IndexEntry:
        raise TypeError(
            "shared indexes are read-only; mutate through the knowledge "
            "base (copy-on-write)"
        )

    @property
    def bitsliced(self) -> BitSlicedIndex:
        if self._bitsliced is None:
            self._bitsliced = BitSlicedIndex.from_packed(
                self.scheme,
                self._addresses,
                self._column_bytes,
                self._columns_view,
                self._planes_view,
            )
        return self._bitsliced

    @property
    def vector(self) -> VectorSlicedIndex:
        """The word-array columnar view over the same packed image.

        Word-aligned segments attach zero-copy (``np.frombuffer`` over
        the mmap slice when numpy is importable); legacy unaligned
        images are zero-padded per column first — value-preserving for
        little-endian integers, so scans stay bit-identical.
        """
        if self._vector is None:
            self._vector = VectorSlicedIndex.from_packed(
                self.scheme,
                self._addresses,
                self._column_bytes,
                self._columns_view,
                self._planes_view,
            )
        return self._vector

    def scan(self, query: Codeword) -> list[int]:
        matches = self.scheme.matches
        return [
            entry.address for entry in self if matches(query, entry.codeword)
        ]

    def size_bytes(self) -> int:
        return self._entries * self.scheme.entry_bytes(ADDRESS_BYTES)

    def to_bytes(self) -> bytes:
        return bytes(self._image)


class SharedKnowledgeBase(KnowledgeBase):
    """A knowledge base attached to read-only segments, COW on mutation.

    Reads are served straight off the maps.  ``add_clause`` (the only
    mutation that appends in place) first materialises the predicate
    into a private mutable :class:`~repro.pif.ClauseFile`; ``asserta``
    ``retract_matching`` and ``remove_exact`` already rebuild a fresh
    file from decoded clauses, which works on a shared store unchanged —
    either way the predicate leaves the segment under a new generation
    and the segment pages stay untouched for every other attacher.
    """

    def __init__(
        self,
        scheme: CodewordScheme,
        obs: Instrumentation | None = None,
    ):
        super().__init__(scheme=scheme, obs=obs)
        self._segment_maps: list[tuple[mmap.mmap, object]] = []

    def add_clause(self, clause: Clause, module: str = "user") -> CompiledClause:
        self.materialize(clause.indicator)
        return super().add_clause(clause, module=module)

    def materialize(self, indicator: tuple[str, int]) -> None:
        """Copy one predicate out of its segment into mutable storage."""
        store = self._predicates.get(indicator)
        if store is None or not isinstance(store.clause_file, SharedClauseFile):
            return
        shared = store.clause_file
        fresh = ClauseFile(indicator, self.symbols)
        for position in range(len(shared)):
            fresh.append(shared.decode_clause(position))
        store.clause_file = fresh
        store.invalidate_index()

    def _map_file(self, path: pathlib.Path) -> memoryview:
        if not path.exists():
            raise SegmentError(f"missing segment file {path.name}")
        if path.stat().st_size == 0:
            return memoryview(b"")
        handle = path.open("rb")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self._segment_maps.append((mapped, handle))
        return memoryview(mapped)

    def close(self) -> None:
        """Release the segment maps (best effort — exported memoryview
        slices still alive keep their map open until they are dropped)."""
        maps, self._segment_maps = self._segment_maps, []
        for mapped, handle in maps:
            try:
                mapped.close()
            except BufferError:
                pass
            handle.close()  # type: ignore[attr-defined]


# -- attach ----------------------------------------------------------------


def attach_kb(
    directory: str | pathlib.Path,
    obs: Instrumentation | None = None,
) -> SharedKnowledgeBase:
    """Attach to a segment directory written by :func:`write_segments`."""
    path = pathlib.Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise SegmentError(f"no {_MANIFEST} in {path}")

    scheme = CodewordScheme()
    modules: list[tuple[str, int, str]] = []
    predicates: list[tuple[str, int, str, str, int]] = []
    for line_number, line in enumerate(
        manifest_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        fields = line.split("\t")
        kind = fields[0]
        if kind == "scheme":
            scheme = CodewordScheme(
                width=int(fields[1]),
                bits_per_key=int(fields[2]),
                max_args=int(fields[3]),
                max_depth=int(fields[4]),
            )
        elif kind == "module":
            modules.append((fields[1], int(fields[2]), fields[3]))
        elif kind == "predicate":
            predicates.append(
                (fields[1], int(fields[2]), fields[3], fields[4], int(fields[5]))
            )
        else:
            raise SegmentError(f"{_MANIFEST}:{line_number}: unknown entry {kind!r}")

    kb = SharedKnowledgeBase(scheme=scheme, obs=obs)
    kb.symbols = SymbolTable.from_bytes((path / _SYMBOLS).read_bytes())
    for name, threshold, pin in modules:
        module = kb.module(name)
        module.large_threshold_bytes = threshold
        if pin != "-":
            module.pin(pin)

    for name, arity, module_name, stem, count in predicates:
        indicator = (name, arity)
        clauses_view = kb._map_file(path / f"{stem}.clauses")

        addr_image = (path / f"{stem}.addr").read_bytes()
        (declared,) = _ADDR_COUNT.unpack_from(addr_image, 0)
        if declared != count:
            raise SegmentError(
                f"{stem}.addr: {declared} records, manifest says {count}"
            )
        addresses: list[int] = []
        lengths: list[int] = []
        for address, length in _ADDR_PAIR.iter_unpack(
            addr_image[_ADDR_COUNT.size :]
        ):
            addresses.append(address)
            lengths.append(length)

        index_view = kb._map_file(path / f"{stem}.index")
        cols_view = kb._map_file(path / f"{stem}.cols")
        entries, column_bytes, n_columns, n_planes, flags = (
            _COLS_HEADER.unpack_from(cols_view, 0)
        )
        if entries != count:
            raise SegmentError(
                f"{stem}.cols: {entries} entries, manifest says {count}"
            )
        if flags & _COLS_FLAG_WORD_ALIGNED and column_bytes % 8:
            raise SegmentError(
                f"{stem}.cols: word-aligned flag set but columns are "
                f"{column_bytes} bytes"
            )
        body = cols_view[_COLS_HEADER.size :]
        columns_end = n_columns * column_bytes
        shared_file = SharedClauseFile(
            indicator, kb.symbols, clauses_view, addresses, lengths
        )
        shared_index = SharedIndex(
            scheme,
            indicator,
            index_view,
            addresses,
            entries,
            column_bytes,
            body[:columns_end],
            body[columns_end : columns_end + n_planes * column_bytes],
        )
        kb._predicates[indicator] = PredicateStore(
            indicator=indicator,
            clause_file=shared_file,  # type: ignore[arg-type]
            module_name=module_name,
            scheme=scheme,
            _index=shared_index,  # type: ignore[arg-type]
        )
        kb.module(module_name).add_procedure(indicator)
    return kb
