"""Span-style tracing with a ring-buffer recorder and NDJSON export.

A *span* covers one stage of the retrieval pipeline — ``crs.retrieve``,
``disk.read``, ``fs1.scan``, ``fs2.search``, ``software.scan`` — with
wall-clock timing, nesting (parent ids), and free-form attributes that
carry the *modelled* 1989 times alongside the host's real ones.  The
:class:`TraceRecorder` keeps the last N spans in a ring buffer, so a
long-running multi-client simulation can stay instrumented without
unbounded memory growth.

:class:`Instrumentation` bundles a recorder with a
:class:`~repro.obs.metrics.MetricsRegistry` behind one ``enabled`` switch.
Instrumented components default to the process-wide instance
(:func:`get_default`), which starts *disabled* — a no-op costing one
attribute check per call site — so nothing is recorded unless a driver
(the CLI, an example, a test) opts in.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Span",
    "TraceRecorder",
    "Instrumentation",
    "LabelledInstrumentation",
    "get_default",
    "set_default",
]


@dataclass
class Span:
    """One timed, attributed stage of the pipeline."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> None:
        """Attach or update attributes while the span is open."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Ring buffer of completed spans with structured export."""

    def __init__(self, capacity: int = 4096):
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._next_id = 1
        self._id_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def new_span(self, name: str, parent_id: int | None, **attrs) -> Span:
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=time.perf_counter(),
            attrs=dict(attrs),
        )

    def record(self, span: Span) -> None:
        if span.end_s is None:
            span.end_s = time.perf_counter()
        self._spans.append(span)

    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def span_names(self) -> set[str]:
        return {s.name for s in self._spans}

    def to_ndjson(self) -> str:
        """One JSON object per line, in completion order."""
        return "\n".join(
            json.dumps(s.to_dict(), default=str) for s in self._spans
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            [s.to_dict() for s in self._spans], indent=indent, default=str
        )

    def write_ndjson(self, path: str) -> int:
        """Write the buffer as NDJSON; returns the span count written."""
        text = self.to_ndjson()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()


class Instrumentation:
    """A registry + recorder pair behind one enable switch.

    Every instrumented component takes an optional ``obs`` argument and
    falls back to the global default, so one ``Instrumentation`` naturally
    spans the whole pipeline of a run: disk, FS1, FS2, CRS, locks, engine.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
        enabled: bool = True,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.enabled = enabled
        # Span nesting is per *thread*: concurrent shard workers each get
        # their own parent stack, so one worker closing a span can never
        # mis-parent (or pop) a span another worker has open.
        self._local = threading.local()
        self._null_counter = Counter("null")
        self._null_gauge = Gauge("null")
        self._null_histogram = Histogram("null")

    @property
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def enable(self) -> "Instrumentation":
        self.enabled = True
        return self

    def disable(self) -> "Instrumentation":
        self.enabled = False
        return self

    # -- metrics passthrough ----------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return self._null_counter
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        return self.registry.histogram(name, buckets=buckets, **labels)

    # -- tracing ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager timing one pipeline stage.

        Spans opened while another span of the *same instrumentation* is
        open become its children, giving per-retrieval trees like
        ``engine.retrieve > crs.retrieve > fs1.scan``.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        parent_id = self._stack[-1] if self._stack else None
        span = self.recorder.new_span(name, parent_id, **attrs)
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_s = time.perf_counter()
            self.recorder.record(span)

    def clear(self) -> None:
        self.registry.reset()
        self.recorder.clear()

    # -- label scoping -------------------------------------------------------

    def labelled(self, **labels: str) -> "LabelledInstrumentation":
        """A view of this instrumentation that stamps ``labels`` on
        every metric and span (e.g. ``obs.labelled(shard="3")``).

        The view shares this instrumentation's registry and recorder, so
        family totals still aggregate across all label combinations —
        ``registry.total("crs.retrievals")`` covers every shard — while
        each shard's share stays separately addressable.
        """
        return LabelledInstrumentation(
            self, {k: str(v) for k, v in labels.items()}
        )


class LabelledInstrumentation:
    """An :class:`Instrumentation` view adding fixed labels to all calls.

    Components take it anywhere an ``obs`` is accepted: it exposes the
    same ``counter``/``gauge``/``histogram``/``span`` surface plus the
    shared ``registry``/``recorder``/``enabled`` of its base, so a shard
    can be built with ``obs.labelled(shard="0")`` and every existing
    call site transparently becomes a per-shard time series.
    """

    def __init__(self, base: Instrumentation, labels: dict[str, str]):
        self._base = base
        self.labels = dict(labels)

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    @property
    def registry(self) -> MetricsRegistry:
        return self._base.registry

    @property
    def recorder(self) -> TraceRecorder:
        return self._base.recorder

    def labelled(self, **labels: str) -> "LabelledInstrumentation":
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return LabelledInstrumentation(self._base, merged)

    def counter(self, name: str, **labels: str) -> Counter:
        return self._base.counter(name, **{**self.labels, **labels})

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._base.gauge(name, **{**self.labels, **labels})

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        return self._base.histogram(
            name, buckets=buckets, **{**self.labels, **labels}
        )

    def span(self, name: str, **attrs):
        return self._base.span(name, **{**self.labels, **attrs})


#: Process-wide default, disabled until a driver opts in.
_DEFAULT = Instrumentation(enabled=False)


def get_default() -> Instrumentation:
    """The process-wide instrumentation components fall back to."""
    return _DEFAULT


def set_default(obs: Instrumentation) -> Instrumentation:
    """Replace the process-wide default; returns the previous one.

    Components capture the default at *construction*, so set it before
    building the knowledge base / CRS / machine you want instrumented.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = obs
    return previous
