"""Pipeline-wide observability: metrics registry + span tracing.

See :mod:`repro.obs.metrics` and :mod:`repro.obs.trace` for the two
halves; :class:`Instrumentation` bundles them and every instrumented
component (disk, FS1, FS2, CRS, locks, engine) accepts one via its
``obs`` argument, defaulting to the process-wide :func:`get_default`.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    Instrumentation,
    LabelledInstrumentation,
    Span,
    TraceRecorder,
    get_default,
    set_default,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "LabelledInstrumentation",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "get_default",
    "set_default",
]
