"""Dependency-free metrics: counters, gauges, fixed-bucket histograms.

The paper's whole argument is about *where retrieval time goes* — disk
streaming vs FS1 index scan vs FS2 partial unification vs host software.
A :class:`MetricsRegistry` aggregates that accounting across every
retrieval, client and transaction of a run, so mode comparisons and
bottleneck hunts no longer depend on eyeballing per-call
:class:`~repro.crs.RetrievalStats`.

Metric instruments are identified by a family name plus optional string
labels (``registry.counter("crs.retrievals", mode="fs1")``); each distinct
label combination is its own time series.  Everything is plain Python —
no third-party client libraries — and the registry serialises to a flat
``dict`` for JSON export or to aligned text for terminal reports.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: a coarse log scale wide enough
#: for candidate counts, byte volumes and microsecond-scale times alike.
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 10_000, 100_000)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _parse_snapshot_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert the ``name{k=v,...}`` encoding used by ``snapshot()``."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


@dataclass
class Counter:
    """A monotonically increasing count (float increments allowed).

    Updates are lock-protected: ``value += amount`` is read-modify-write,
    and concurrent shard workers must never lose increments (the stress
    suite asserts registry totals equal the sum of per-call stats).
    """

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (e.g. active transactions)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


@dataclass
class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow.

    ``buckets`` are inclusive upper bounds in increasing order; a sample
    larger than the last bound lands in the implicit ``+Inf`` bucket.
    """

    name: str
    labels: LabelKey = ()
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0
    min: float | None = None
    max: float | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[position] += 1
                    break
            else:
                self.counts[-1] += 1
            self.sum += value
            self.count += 1
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store for every instrument of one run.

    Thread-safe on creation (multi-client simulations may fan out); the
    instruments themselves are plain attribute updates, which is fine for
    the synchronous simulation and cheap enough for the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(
                    name, key[1], buckets=buckets or DEFAULT_BUCKETS
                )
                self._instruments[key] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(f"{name!r} is a {type(instrument).__name__}")
            return instrument

    def _get(self, kind, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind(name, key[1])
                self._instruments[key] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"{name!r} is a {type(instrument).__name__}, not a "
                    f"{kind.__name__}"
                )
            return instrument

    # -- reading ----------------------------------------------------------

    def __iter__(self):
        return iter(sorted(self._instruments.values(), key=lambda i: (i.name, i.labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge (0.0 if never touched)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a Histogram; read .sum/.count")
        return instrument.value

    def total(self, name: str) -> float:
        """Sum of a counter family across all label combinations."""
        return sum(
            i.value
            for (n, _), i in self._instruments.items()
            if n == name and isinstance(i, (Counter, Gauge))
        )

    def snapshot(self) -> dict[str, dict]:
        """A JSON-ready flat mapping of every instrument."""
        out: dict[str, dict] = {}
        for instrument in self:
            label_text = ",".join(f"{k}={v}" for k, v in instrument.labels)
            key = instrument.name + (f"{{{label_text}}}" if label_text else "")
            if isinstance(instrument, Histogram):
                out[key] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "min": instrument.min,
                    "max": instrument.max,
                    "mean": instrument.mean,
                    "buckets": dict(
                        zip([str(b) for b in instrument.buckets] + ["+Inf"],
                            instrument.counts)
                    ),
                }
            else:
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                out[key] = {"type": kind, "value": instrument.value}
        return out

    def merge_snapshot(
        self,
        snapshot: dict[str, dict],
        previous: dict[str, dict] | None = None,
        **labels: str,
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The aggregation transport for process workers: each worker keeps
        its own registry (instruments are not shareable across process
        boundaries) and the parent periodically pulls a snapshot and
        merges it here.  ``previous`` is the last snapshot already
        merged from the same source — counters and histograms advance by
        the *delta* since then, so repeated pulls never double-count;
        gauges are set to the latest value.  Extra ``labels`` (e.g.
        ``worker="3"``) are stamped on every merged series.

        A counter that went backwards (the worker restarted with a fresh
        registry) is credited its full current value.  Histogram bucket
        layouts are expected to match the local family (both sides run
        the same code); on a mismatch the buckets are skipped but
        count/sum/min/max still merge.
        """
        previous = previous or {}
        extra = {k: str(v) for k, v in labels.items()}
        for key, data in snapshot.items():
            name, parsed = _parse_snapshot_key(key)
            merged = {**parsed, **extra}
            prior = previous.get(key)
            kind = data["type"]
            if kind == "counter":
                delta = data["value"] - (prior["value"] if prior else 0.0)
                if delta < 0:
                    delta = data["value"]
                if delta > 0:
                    self.counter(name, **merged).inc(delta)
            elif kind == "gauge":
                self.gauge(name, **merged).set(data["value"])
            else:
                bounds = tuple(
                    float(b) for b in data["buckets"] if b != "+Inf"
                )
                hist = self.histogram(name, buckets=bounds, **merged)
                prev_count = prior["count"] if prior else 0
                count_delta = data["count"] - prev_count
                if count_delta < 0:  # source restarted
                    prior = None
                    count_delta = data["count"]
                if count_delta == 0:
                    continue
                prev_buckets = prior["buckets"] if prior else {}
                with hist._lock:
                    incoming = list(data["buckets"].items())
                    if len(incoming) == len(hist.counts):
                        for position, (bucket, count) in enumerate(incoming):
                            hist.counts[position] += count - prev_buckets.get(
                                bucket, 0
                            )
                    hist.sum += data["sum"] - (prior["sum"] if prior else 0.0)
                    hist.count += count_delta
                    for extreme, fold in (("min", min), ("max", max)):
                        value = data[extreme]
                        if value is None:
                            continue
                        current = getattr(hist, extreme)
                        setattr(
                            hist,
                            extreme,
                            value if current is None else fold(current, value),
                        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Aligned text dump, one line per instrument."""
        lines = []
        for key, data in sorted(self.snapshot().items()):
            if data["type"] == "histogram":
                lines.append(
                    f"{key:<44} count={data['count']:<8} mean={data['mean']:.3f} "
                    f"min={data['min']} max={data['max']}"
                )
            else:
                value = data["value"]
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{key:<44} {rendered}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
