"""The compiled FS2 fast path: plan-compiled partial test unification.

Microcoded mode steps the sequencer one control transfer at a time —
faithful, but every cycle costs an instruction decode, a condition-code
dictionary and a handler dispatch on the host.  Compiled mode translates
the Set-Query state into a **match plan** once (a flat sequence of
type-dispatched comparator nodes over the decoded query items) and runs
the level-3 + cross-binding algorithm directly over the raw clause
bytes, skipping the per-cycle sequencer entirely.

The simulated model is untouched:

* satisfier sets are identical — the matcher mirrors every branch of
  the microcoded datapath ops (``MATCH``/``ANON_SKIP``/``*VAR_*``/
  ``FINISH_COMPLEX``) over the same stream-consumption rules;
* ``op_counts`` and ``op_time_ns`` are identical by construction — the
  matcher drives the *same* :class:`TestUnificationEngine` instance
  through the same operations in the same order;
* ``micro_cycles`` is reproduced from a per-dispatch-class cycle-cost
  table derived **mechanically** from the assembled search program by
  :func:`derive_cycle_costs` — a symbolic walk over the WCS words, not
  a hand-maintained table — so a microprogram change propagates to the
  fast path or fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pif import tags
from ..pif.clausefile import _FLAG_HAS_NAMES
from ..pif.decoder import PIFDecodeError
from ..pif.encoder import EncodedArgs
from ..pif.symbols import SymbolTable
from ..terms import NIL, Int, Struct, Term, Var, make_list
from ..unify.match import HardwareOp
from .microcode import Condition, ExecOp, MicroProgram, SeqOp
from .tue import SideTerm, TestUnificationEngine

__all__ = [
    "CompiledMatcher",
    "CycleCosts",
    "PlanNode",
    "compile_plan",
    "derive_cycle_costs",
    "parse_record",
]

_MATCH = HardwareOp.MATCH

# Dispatch classes as plain ints (== the DispatchClass values), so the
# hot loop never touches the IntEnum machinery.
_CLS_CONC = 0
_CLS_ANON = 1
_CLS_DBV_FIRST = 2
_CLS_DBV_SUB = 3
_CLS_QV_FIRST = 4
_CLS_QV_SUB = 5

# Item kinds for the concrete comparator (<= 2 means simple).
_K_INT = 0
_K_ATOM = 1
_K_FLOAT = 2
_K_STRUCT = 3
_K_LIST = 4

_CATEGORY_CLASS = {
    tags.TagCategory.ANONYMOUS: _CLS_ANON,
    tags.TagCategory.FIRST_DB_VAR: _CLS_DBV_FIRST,
    tags.TagCategory.SUB_DB_VAR: _CLS_DBV_SUB,
    tags.TagCategory.FIRST_QUERY_VAR: _CLS_QV_FIRST,
    tags.TagCategory.SUB_QUERY_VAR: _CLS_QV_SUB,
}

_CATEGORY_KIND = {
    tags.TagCategory.INTEGER: _K_INT,
    tags.TagCategory.ATOM: _K_ATOM,
    tags.TagCategory.FLOAT: _K_FLOAT,
    tags.TagCategory.STRUCT_INLINE: _K_STRUCT,
    tags.TagCategory.STRUCT_PTR: _K_STRUCT,
    tags.TagCategory.TLIST_INLINE: _K_LIST,
    tags.TagCategory.ULIST_INLINE: _K_LIST,
    tags.TagCategory.TLIST_PTR: _K_LIST,
    tags.TagCategory.ULIST_PTR: _K_LIST,
}

# 256-entry per-tag lookup tables (None marks an unassigned tag value):
# dispatch class, item kind, encoded item length, and how many stream
# items directly follow an in-line item (cursor.inline_children).
_CLS: list[int | None] = [None] * 256
_KIND: list[int | None] = [None] * 256
_LEN: list[int | None] = [None] * 256
_CHILDREN: list[int | None] = [None] * 256

for _tag in range(256):
    try:
        _category = tags.tag_category(_tag)
    except ValueError:
        continue
    _CLS[_tag] = _CATEGORY_CLASS.get(_category, _CLS_CONC)
    _KIND[_tag] = _CATEGORY_KIND.get(_category)
    _LEN[_tag] = 8 if tags.is_pointer_tag(_tag) else 4
    _arity = _tag & tags.ARITY_MASK
    if _category == tags.TagCategory.STRUCT_INLINE:
        _CHILDREN[_tag] = _arity
    elif _category == tags.TagCategory.TLIST_INLINE:
        _CHILDREN[_tag] = _arity + 1 if _arity else 0
    elif _category == tags.TagCategory.ULIST_INLINE:
        _CHILDREN[_tag] = _arity + 1
    else:
        _CHILDREN[_tag] = 0
del _tag, _category, _arity


# -- cycle-cost derivation ---------------------------------------------------


@dataclass(frozen=True)
class CycleCosts:
    """Sequencer cycle counts for each control segment of the program.

    Every field is the number of instructions the microcoded loop would
    fetch along that segment; ``dispatch`` maps
    ``(db_class, query_class, hit, entered)`` to the cycles spent in the
    map-ROM routine the pair dispatches to (terminating at ``NEXT``,
    ``ELEM``, or the miss exit).
    """

    entry: int  # POLL (buffer ready) .. first ARG fetch
    arg_header: int  # ARG check + LOAD_PAIR + JMAP
    hit_exit: int  # ARG check (streams done) + SIGNAL_HIT
    next_to_arg: int  # NEXT at argument level, back to ARG
    next_to_elem: int  # NEXT inside an element loop
    elem_header: int  # ELEM check + LOAD_PAIR + JMAP
    finish_hit: int  # ELEM done + FINISH_COMPLEX (hit), back to ARG
    finish_miss: int  # ELEM done + FINISH_COMPLEX (miss) + SIGNAL_MISS
    dispatch: dict[tuple[int, int, bool, bool], int]


def derive_cycle_costs(program: MicroProgram) -> CycleCosts:
    """Walk the assembled program symbolically and count segment cycles.

    The microcoded loop counts one cycle per fetched instruction and
    stops once an outcome is signalled, so each segment is walked with
    its condition codes pinned and the count stops *at* the signalling
    instruction (the jump after it is never fetched) or *before* the
    next segment's entry label.  Raises :class:`ValueError` for programs
    without the standard labels or with segments that read unexpected
    conditions — compiled mode only accepts programs it can account for.
    """
    labels = program.labels
    for name in ("POLL", "ARG", "NEXT", "ELEM"):
        if name not in labels:
            raise ValueError(
                f"cannot derive cycle costs: program has no {name!r} label"
            )
    arg = labels["ARG"]
    nxt = labels["NEXT"]
    elem = labels["ELEM"]

    def walk(start: int, conds: dict[Condition, bool]) -> tuple[int, str]:
        conds = dict(conds)
        conds[Condition.ALWAYS] = True
        pc = start
        cycles = 0
        for _ in range(4 * len(program.words) + 4):
            instruction = program.instruction(pc)
            cycles += 1
            if instruction.exec_op == ExecOp.SIGNAL_HIT:
                return cycles, "hit"
            if instruction.exec_op == ExecOp.SIGNAL_MISS:
                return cycles, "miss"
            seq = instruction.seq
            if seq == SeqOp.JMAP:
                return cycles, "dispatch"
            if seq == SeqOp.CONT:
                target = pc + 1
            elif seq == SeqOp.JMP:
                target = instruction.address
            else:  # CJP
                try:
                    value = conds[instruction.condition]
                except KeyError:
                    raise ValueError(
                        "cycle-cost walk read unpinned condition "
                        f"{instruction.condition.name} at address {pc}"
                    ) from None
                target = instruction.address if value == instruction.polarity else pc + 1
            if target == arg:
                return cycles, "arg"
            if target == nxt:
                return cycles, "next"
            if target == elem:
                return cycles, "elem"
            pc = target
        raise ValueError("cycle-cost walk did not terminate")

    def segment(start: int, conds: dict[Condition, bool], expect: str) -> int:
        cycles, terminal = walk(start, conds)
        if terminal != expect:
            raise ValueError(
                f"segment from {start} ended at {terminal!r}, expected {expect!r}"
            )
        return cycles

    entry = segment(labels["POLL"], {Condition.BUFFER_READY: True}, "arg")
    arg_header = segment(arg, {Condition.ARGS_DONE: False}, "dispatch")
    hit_exit = segment(arg, {Condition.ARGS_DONE: True}, "hit")
    next_to_arg = segment(nxt, {Condition.IN_COMPLEX: False}, "arg")
    next_to_elem = segment(nxt, {Condition.IN_COMPLEX: True}, "elem")
    elem_header = segment(elem, {Condition.COUNTERS_DONE: False}, "dispatch")
    finish_hit = segment(
        elem, {Condition.COUNTERS_DONE: True, Condition.HIT: True}, "arg"
    )
    finish_miss = segment(
        elem, {Condition.COUNTERS_DONE: True, Condition.HIT: False}, "miss"
    )

    # The map-ROM routines, enumerated over the condition-code values a
    # dispatch can leave behind: (hit, entered) with entered => hit.
    dispatch: dict[tuple[int, int, bool, bool], int] = {}
    for (db_class, q_class), address in program.map_rom.items():
        for hit, entered in ((True, False), (True, True), (False, False)):
            cycles, _ = walk(
                address, {Condition.HIT: hit, Condition.ENTERED: entered}
            )
            dispatch[(int(db_class), int(q_class), hit, entered)] = cycles

    return CycleCosts(
        entry=entry,
        arg_header=arg_header,
        hit_exit=hit_exit,
        next_to_arg=next_to_arg,
        next_to_elem=next_to_elem,
        elem_header=elem_header,
        finish_hit=finish_hit,
        finish_miss=finish_miss,
        dispatch=dispatch,
    )


# -- the match plan ----------------------------------------------------------


class PlanNode:
    """One query term, pre-decoded for direct dispatch.

    ``children`` are the in-line stream children (structure arguments or
    list prefix elements) for the element loop; ``tail`` is an in-line
    list's tail node.  ``term`` is the materialised term — what the
    microcoded path would build with ``take_term`` when a db variable
    meets this argument.
    """

    __slots__ = (
        "tag",
        "content",
        "cls",
        "kind",
        "arity",
        "inline",
        "open_",
        "term",
        "var_name",
        "children",
        "tail",
    )

    tag: int
    content: int
    cls: int
    kind: int | None
    arity: int
    inline: bool
    open_: bool
    term: Term
    var_name: str | None
    children: tuple["PlanNode", ...]
    tail: "PlanNode | None"


def compile_plan(
    encoded: EncodedArgs, symbols: SymbolTable
) -> tuple[PlanNode, ...]:
    """Translate an encoded query into its match plan (one node per arg)."""
    data = encoded.stream
    heap = encoded.heap
    names = encoded.var_names
    nodes = []
    position = 0
    end = len(data)
    while position < end:
        node, position = _read_node(data, position, heap, names, symbols)
        nodes.append(node)
    return tuple(nodes)


def _read_node(
    data: bytes,
    position: int,
    heap: bytes,
    names: tuple[str, ...],
    symbols: SymbolTable,
) -> tuple[PlanNode, int]:
    tag = data[position]
    cls = _CLS[tag]
    if cls is None:
        raise PIFDecodeError(f"unassigned PIF tag 0x{tag:02x} in query stream")
    content = (data[position + 1] << 16) | (data[position + 2] << 8) | data[
        position + 3
    ]
    position += 4
    node = PlanNode()
    node.tag = tag
    node.content = content
    node.cls = cls
    node.kind = _KIND[tag]
    node.arity = tag & tags.ARITY_MASK
    node.inline = False
    node.open_ = False
    node.var_name = None
    node.children = ()
    node.tail = None

    category = tags.tag_category(tag)
    if category == tags.TagCategory.INTEGER:
        raw = ((tag & 0xF) << 24) | content
        if raw >= 1 << (tags.INT_INLINE_BITS - 1):
            raw -= 1 << tags.INT_INLINE_BITS
        node.term = Int(raw)
    elif category == tags.TagCategory.ATOM:
        node.term = symbols.atom_at(content)
    elif category == tags.TagCategory.FLOAT:
        node.term = symbols.float_at(content)
    elif category == tags.TagCategory.ANONYMOUS:
        node.term = Var("_")
    elif category in (
        tags.TagCategory.FIRST_QUERY_VAR,
        tags.TagCategory.SUB_QUERY_VAR,
        tags.TagCategory.FIRST_DB_VAR,
        tags.TagCategory.SUB_DB_VAR,
    ):
        name = names[content] if content < len(names) else f"_V{content}"
        node.var_name = name
        node.term = Var(name)
    elif category == tags.TagCategory.STRUCT_INLINE:
        node.inline = True
        children = []
        for _ in range(node.arity):
            child, position = _read_node(data, position, heap, names, symbols)
            children.append(child)
        node.children = tuple(children)
        node.term = Struct(
            symbols.atom_name_at(content), tuple(c.term for c in children)
        )
    elif category == tags.TagCategory.TLIST_INLINE:
        node.inline = True
        if node.arity == 0:
            node.term = NIL
        else:
            children = []
            for _ in range(node.arity):
                child, position = _read_node(data, position, heap, names, symbols)
                children.append(child)
            tail, position = _read_node(data, position, heap, names, symbols)
            node.children = tuple(children)
            node.tail = tail
            node.term = make_list([c.term for c in children], tail=tail.term)
    elif category == tags.TagCategory.ULIST_INLINE:
        node.inline = True
        node.open_ = True
        children = []
        for _ in range(node.arity):
            child, position = _read_node(data, position, heap, names, symbols)
            children.append(child)
        tail, position = _read_node(data, position, heap, names, symbols)
        node.children = tuple(children)
        node.tail = tail
        node.term = make_list([c.term for c in children], tail=tail.term)
    else:
        # Pointer forms: the term lives in the heap; the element loop
        # never enters them, so no children are planned.
        node.open_ = category == tags.TagCategory.ULIST_PTR
        node.term, position = _read_term(data, position - 4, heap, names, symbols)
    return node, position


def _read_term(
    data: bytes,
    position: int,
    heap: bytes,
    names: tuple[str, ...],
    symbols: SymbolTable,
) -> tuple[Term, int]:
    """Materialise one whole term from raw item bytes.

    The byte-level mirror of ``ItemCursor.take_term``: same sign
    extension, same symbol-table lookups, same ``_V<offset>`` fallback
    for unnamed variables, same heap layout for pointer forms.
    """
    tag = data[position]
    content = (data[position + 1] << 16) | (data[position + 2] << 8) | data[
        position + 3
    ]
    position += 4
    try:
        category = tags.tag_category(tag)
    except ValueError as exc:
        raise PIFDecodeError(str(exc)) from None
    if category == tags.TagCategory.INTEGER:
        raw = ((tag & 0xF) << 24) | content
        if raw >= 1 << (tags.INT_INLINE_BITS - 1):
            raw -= 1 << tags.INT_INLINE_BITS
        return Int(raw), position
    if category == tags.TagCategory.ATOM:
        return symbols.atom_at(content), position
    if category == tags.TagCategory.FLOAT:
        return symbols.float_at(content), position
    if category == tags.TagCategory.ANONYMOUS:
        return Var("_"), position
    if category in (
        tags.TagCategory.FIRST_QUERY_VAR,
        tags.TagCategory.SUB_QUERY_VAR,
        tags.TagCategory.FIRST_DB_VAR,
        tags.TagCategory.SUB_DB_VAR,
    ):
        name = names[content] if content < len(names) else f"_V{content}"
        return Var(name), position
    arity = tag & tags.ARITY_MASK
    if category == tags.TagCategory.STRUCT_INLINE:
        args = []
        for _ in range(arity):
            arg, position = _read_term(data, position, heap, names, symbols)
            args.append(arg)
        return Struct(symbols.atom_name_at(content), tuple(args)), position
    if category == tags.TagCategory.TLIST_INLINE:
        if arity == 0:
            return NIL, position
        elements = []
        for _ in range(arity):
            element, position = _read_term(data, position, heap, names, symbols)
            elements.append(element)
        tail, position = _read_term(data, position, heap, names, symbols)
        return make_list(elements, tail=tail), position
    if category == tags.TagCategory.ULIST_INLINE:
        elements = []
        for _ in range(arity):
            element, position = _read_term(data, position, heap, names, symbols)
            elements.append(element)
        tail, position = _read_term(data, position, heap, names, symbols)
        return make_list(elements, tail=tail), position
    # Pointer forms: a 4-byte extension points into the heap, whose blob
    # is a u32 element count followed by the element items (+ tail for
    # lists); nested extensions index the same heap.
    extension = int.from_bytes(data[position : position + 4], "big")
    position += 4
    if extension + 4 > len(heap):
        raise PIFDecodeError(f"heap pointer {extension} out of range")
    count = int.from_bytes(heap[extension : extension + 4], "big")
    cursor = extension + 4
    if category == tags.TagCategory.STRUCT_PTR:
        args = []
        for _ in range(count):
            arg, cursor = _read_term(heap, cursor, heap, names, symbols)
            args.append(arg)
        return Struct(symbols.atom_name_at(content), tuple(args)), position
    elements = []
    for _ in range(count):
        element, cursor = _read_term(heap, cursor, heap, names, symbols)
        elements.append(element)
    tail, cursor = _read_term(heap, cursor, heap, names, symbols)
    return make_list(elements, tail=tail), position


# -- clause record access ----------------------------------------------------


def parse_record(record: bytes) -> tuple[bytes, bytes, tuple[str, ...]]:
    """(head stream, heap, var names) straight off a serialised record.

    The lean mirror of ``CompiledClause.from_bytes`` for the fast path:
    no dataclass, no body-stream slice, names decoded only when the
    record's flag says they are present.  Accepts ``bytes`` or a
    ``memoryview`` over an mmap'd segment — slicing a memoryview is
    zero-copy, so the byte-walk never materialises the record.
    """
    flags = record[2]
    head_len = (record[3] << 8) | record[4]
    body_len = (record[5] << 8) | record[6]
    heap_len = (record[7] << 8) | record[8]
    head_end = 9 + head_len
    heap_start = head_end + body_len
    heap_end = heap_start + heap_len
    names: tuple[str, ...] = ()
    if flags & _FLAG_HAS_NAMES:
        position = heap_end
        count = record[position]
        position += 1
        parsed = []
        for _ in range(count):
            length = record[position]
            position += 1
            parsed.append(bytes(record[position : position + length]).decode("utf-8"))
            position += length
        names = tuple(parsed)
    return record[9:head_end], record[heap_start:heap_end], names


def _skip_term(data: bytes, position: int) -> int:
    """Advance past one whole in-line subtree (cursor.skip_term)."""
    remaining = 1
    while remaining:
        tag = data[position]
        position += _LEN[tag]
        remaining += _CHILDREN[tag] - 1
    return position


# -- the matcher -------------------------------------------------------------


class CompiledMatcher:
    """Run the level-3 + cross-binding match natively over clause bytes.

    The matcher shares the filter's :class:`TestUnificationEngine`, so
    every binding-memory operation lands in the same ``op_counts`` /
    ``op_time_ns`` accounting the microcoded path would produce, and
    charges ``micro_cycles`` from the :class:`CycleCosts` table at every
    control-flow step the sequencer would have taken.
    """

    def __init__(
        self,
        symbols: SymbolTable,
        tue: TestUnificationEngine,
        costs: CycleCosts,
    ):
        self.symbols = symbols
        self.tue = tue
        self.costs = costs

    def match(
        self,
        plan: tuple[PlanNode, ...],
        data: bytes,
        heap: bytes,
        var_names: tuple[str, ...],
        stats,
    ) -> bool:
        """One clause through the plan; returns the hit/miss outcome."""
        tue = self.tue
        symbols = self.symbols
        costs = self.costs
        dispatch = costs.dispatch
        next_to_arg = costs.next_to_arg
        cls_table = _CLS
        kind_table = _KIND
        n_names = len(var_names)

        # INIT_CLAUSE: both binding memories reset for every clause.
        tue.reset_db_memory()
        tue.reset_query_memory()

        cycles = costs.entry
        position = 0
        end = len(data)
        qi = 0
        qn = len(plan)
        outcome = True

        while True:
            # ARG: both streams exhausted => the clause is a satisfier.
            if position >= end and qi >= qn:
                cycles += costs.hit_exit
                break
            cycles += costs.arg_header
            tag = data[position]
            db_cls = cls_table[tag]
            if db_cls is None:
                raise PIFDecodeError(f"unassigned PIF tag 0x{tag:02x} in record")
            node = plan[qi]
            q_cls = node.cls

            # Map-ROM priority: anonymous, db-var cases, query-var
            # cases, then the concrete comparator.
            if db_cls == 1 or q_cls == 1:  # ANON_SKIP
                position = position + 4 if db_cls == 1 else _skip_term(data, position)
                qi += 1
                cycles += dispatch[(db_cls, q_cls, True, False)] + next_to_arg
                continue
            if db_cls == 2:  # DBVAR_FIRST
                offset = (
                    (data[position + 1] << 16)
                    | (data[position + 2] << 8)
                    | data[position + 3]
                )
                position += 4
                name = var_names[offset] if offset < n_names else f"_V{offset}"
                tue.var_first("db", name, SideTerm(node.term, "query"))
                qi += 1
                cycles += dispatch[(2, q_cls, True, False)] + next_to_arg
                continue
            if db_cls == 3:  # DBVAR_SUB
                offset = (
                    (data[position + 1] << 16)
                    | (data[position + 2] << 8)
                    | data[position + 3]
                )
                position += 4
                name = var_names[offset] if offset < n_names else f"_V{offset}"
                hit = tue.var_subsequent("db", name, SideTerm(node.term, "query"))
                qi += 1
                if hit:
                    cycles += dispatch[(3, q_cls, True, False)] + next_to_arg
                    continue
                cycles += dispatch[(3, q_cls, False, False)]
                outcome = False
                break
            if q_cls == 4:  # QVAR_FIRST
                term, position = _read_term(data, position, heap, var_names, symbols)
                tue.var_first("query", node.var_name, SideTerm(term, "db"))
                qi += 1
                cycles += dispatch[(db_cls, 4, True, False)] + next_to_arg
                continue
            if q_cls == 5:  # QVAR_SUB
                term, position = _read_term(data, position, heap, var_names, symbols)
                hit = tue.var_subsequent(
                    "query", node.var_name, SideTerm(term, "db")
                )
                qi += 1
                if hit:
                    cycles += dispatch[(db_cls, 5, True, False)] + next_to_arg
                    continue
                cycles += dispatch[(db_cls, 5, False, False)]
                outcome = False
                break

            # MATCH: the concrete/concrete comparator.
            tue.record_op(_MATCH)
            db_kind = kind_table[tag]
            q_kind = node.kind
            hit = False
            entered = False
            db_arity = tag & 0x1F
            if db_kind != q_kind:
                position = _skip_term(data, position)
                qi += 1
            elif db_kind <= 2:  # int / atom / float: one tag+content word
                content = (
                    (data[position + 1] << 16)
                    | (data[position + 2] << 8)
                    | data[position + 3]
                )
                position += 4
                qi += 1
                hit = tag == node.tag and content == node.content
            elif db_kind == 3:  # structures
                content = (
                    (data[position + 1] << 16)
                    | (data[position + 2] << 8)
                    | data[position + 3]
                )
                db_inline = (tag & 0xE0) == 0x60
                if content != node.content:
                    position = _skip_term(data, position)
                    qi += 1
                elif db_inline != node.inline or db_arity != node.arity:
                    position = _skip_term(data, position)
                    qi += 1
                elif not db_inline:
                    position += 8  # pointer pair: tag+content settled it
                    qi += 1
                    hit = True
                else:
                    position += 4
                    qi += 1
                    hit = True
                    entered = True
            else:  # lists
                base = tag & 0xE0
                db_open = base == 0xA0 or base == 0x80
                db_inline = base == 0xE0 or base == 0xA0
                closed_pair = not db_open and not node.open_
                if closed_pair and db_inline != node.inline:
                    position = _skip_term(data, position)
                    qi += 1
                elif closed_pair and db_inline and db_arity != node.arity:
                    position = _skip_term(data, position)
                    qi += 1
                elif not db_inline or not node.inline:
                    position = _skip_term(data, position)
                    qi += 1
                    hit = True
                elif db_arity == 0 and node.arity == 0:
                    position += 4  # [] vs []
                    qi += 1
                    hit = True
                else:
                    position += 4
                    qi += 1
                    hit = True
                    entered = True
            cycles += dispatch[(0, 0, hit, entered)]
            if not hit:
                outcome = False
                break
            if not entered:
                cycles += next_to_arg
                continue

            # -- element loop (level 3: one shallow level) ----------------
            elem_header = costs.elem_header
            next_to_elem = costs.next_to_elem
            db_count = db_arity
            q_count = node.arity
            children = node.children
            ci = 0
            is_list = db_kind == 4
            if is_list:
                db_tail = db_open or db_arity > 0
                q_tail = node.open_ or node.arity > 0
            loop_hit = True
            while db_count > 0 and q_count > 0:
                cycles += elem_header
                db_count -= 1
                q_count -= 1
                ctag = data[position]
                cdb_cls = cls_table[ctag]
                if cdb_cls is None:
                    raise PIFDecodeError(
                        f"unassigned PIF tag 0x{ctag:02x} in record"
                    )
                cnode = children[ci]
                cq_cls = cnode.cls
                ehit = True
                if cdb_cls == 1 or cq_cls == 1:  # ANON_SKIP
                    position = (
                        position + 4
                        if cdb_cls == 1
                        else _skip_term(data, position)
                    )
                    ci += 1
                elif cdb_cls == 2:  # DBVAR_FIRST
                    offset = (
                        (data[position + 1] << 16)
                        | (data[position + 2] << 8)
                        | data[position + 3]
                    )
                    position += 4
                    name = (
                        var_names[offset] if offset < n_names else f"_V{offset}"
                    )
                    tue.var_first("db", name, SideTerm(cnode.term, "query"))
                    ci += 1
                elif cdb_cls == 3:  # DBVAR_SUB
                    offset = (
                        (data[position + 1] << 16)
                        | (data[position + 2] << 8)
                        | data[position + 3]
                    )
                    position += 4
                    name = (
                        var_names[offset] if offset < n_names else f"_V{offset}"
                    )
                    ehit = tue.var_subsequent(
                        "db", name, SideTerm(cnode.term, "query")
                    )
                    ci += 1
                elif cq_cls == 4:  # QVAR_FIRST
                    term, position = _read_term(
                        data, position, heap, var_names, symbols
                    )
                    tue.var_first("query", cnode.var_name, SideTerm(term, "db"))
                    ci += 1
                elif cq_cls == 5:  # QVAR_SUB
                    term, position = _read_term(
                        data, position, heap, var_names, symbols
                    )
                    ehit = tue.var_subsequent(
                        "query", cnode.var_name, SideTerm(term, "db")
                    )
                    ci += 1
                else:  # MATCH, counters active: shallow verdicts only
                    tue.record_op(_MATCH)
                    cdb_kind = kind_table[ctag]
                    cq_kind = cnode.kind
                    ehit = False
                    carity = ctag & 0x1F
                    if cdb_kind != cq_kind:
                        position = _skip_term(data, position)
                        ci += 1
                    elif cdb_kind <= 2:
                        content = (
                            (data[position + 1] << 16)
                            | (data[position + 2] << 8)
                            | data[position + 3]
                        )
                        position += 4
                        ci += 1
                        ehit = ctag == cnode.tag and content == cnode.content
                    elif cdb_kind == 3:
                        content = (
                            (data[position + 1] << 16)
                            | (data[position + 2] << 8)
                            | data[position + 3]
                        )
                        cdb_inline = (ctag & 0xE0) == 0x60
                        if content != cnode.content:
                            position = _skip_term(data, position)
                            ci += 1
                        elif (
                            cdb_inline != cnode.inline or carity != cnode.arity
                        ):
                            position = _skip_term(data, position)
                            ci += 1
                        elif not cdb_inline:
                            position += 8
                            ci += 1
                            ehit = True
                        else:
                            # Depth >= 2: shallow only; skip the elements.
                            position = _skip_term(data, position)
                            ci += 1
                            ehit = True
                    else:
                        cbase = ctag & 0xE0
                        cdb_open = cbase == 0xA0 or cbase == 0x80
                        cdb_inline = cbase == 0xE0 or cbase == 0xA0
                        cclosed = not cdb_open and not cnode.open_
                        if cclosed and cdb_inline != cnode.inline:
                            position = _skip_term(data, position)
                            ci += 1
                        elif (
                            cclosed
                            and cdb_inline
                            and carity != cnode.arity
                        ):
                            position = _skip_term(data, position)
                            ci += 1
                        else:
                            # Shallow verdict already computed; skip.
                            position = _skip_term(data, position)
                            ci += 1
                            ehit = True
                cycles += dispatch[(cdb_cls, cq_cls, ehit, False)]
                if not ehit:
                    loop_hit = False
                    break
                cycles += next_to_elem
            if not loop_hit:
                outcome = False
                break

            # FINISH_COMPLEX: list tails / leftover skipping.
            fin_hit = True
            if is_list:
                if db_count == 0 and q_count == 0 and db_tail and q_tail:
                    # Both prefixes exhausted together: the tails meet.
                    tail_tag = data[position]
                    tail_node = node.tail
                    if (
                        tail_tag == tags.TAG_TLIST_INLINE_BASE
                        and tail_node.tag == tags.TAG_TLIST_INLINE_BASE
                    ):
                        position += 4  # [] vs []: nothing to compare
                    else:
                        term, position = _read_term(
                            data, position, heap, var_names, symbols
                        )
                        fin_hit = tue.dispatch_terms(
                            SideTerm(term, "db"),
                            SideTerm(tail_node.term, "query"),
                        )
                else:
                    # One counter reached zero first: skip, succeed.
                    for _ in range(db_count):
                        position = _skip_term(data, position)
                    if db_tail:
                        position = _skip_term(data, position)
            # Structures: the counters always exhaust together.
            if fin_hit:
                cycles += costs.finish_hit
                continue
            cycles += costs.finish_miss
            outcome = False
            break

        stats.micro_cycles += cycles
        return outcome
