"""The Test Unification Engine (paper section 3.3, Figure 5).

The TUE owns the two binding memories and the comparator:

* **DB Memory** — dual-ported, holds database-variable bindings; "reset to
  pointing to itself at the beginning of each clause input" (an empty slot
  models the self-pointer / unbound state);
* **Query Memory** — pre-loaded with the query at Set Query time; its
  variable slots receive database terms via QUERY_STORE.

Bindings are *side-tagged terms*: a slot holds either a concrete term or a
reference to a variable of either side (a cross binding).  Storing a whole
term models the hardware's pointer into the Double Buffer / Query Memory —
both retain their data for the duration of a clause match.

Comparisons of fetched bindings are folded into the fetch operation and
are *shallow* (the stored word is one tag+content pair): structures match
on functor and tag arity, lists on the open-list counter rule, and no
elements are ever descended into.  Every operation accrues its Table 1
execution time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..terms import NIL, Atom, Float, Int, Struct, Term, Var, list_parts
from ..unify.match import HardwareOp
from .timing import execution_time_ns

__all__ = ["SideTerm", "TestUnificationEngine"]

_INLINE_LIMIT = 31


@dataclass(frozen=True, slots=True)
class SideTerm:
    """A term together with the side ('db'/'query') its variables live on."""

    term: Term
    side: str


class TestUnificationEngine:
    """Binding memories, comparator, and the variable-case operations."""

    def __init__(self, cross_binding: bool = True):
        self.cross_binding = cross_binding
        self._query_memory: dict[str, SideTerm] = {}
        self._db_memory: dict[str, SideTerm] = {}
        self.op_counts: Counter = Counter()
        self.op_time_ns = 0

    # -- memories ------------------------------------------------------------

    def reset_db_memory(self) -> None:
        """Per-clause reset: every DB slot points to itself (unbound)."""
        self._db_memory.clear()

    def reset_query_memory(self) -> None:
        """Set Query time: binding slots start unbound."""
        self._query_memory.clear()

    def reset_accounting(self) -> None:
        self.op_counts = Counter()
        self.op_time_ns = 0

    def _store_of(self, side: str) -> dict[str, SideTerm]:
        return self._db_memory if side == "db" else self._query_memory

    def slot(self, side: str, name: str) -> SideTerm | None:
        return self._store_of(side).get(name)

    def record_op(self, op: HardwareOp) -> None:
        self.op_counts[op] += 1
        self.op_time_ns += execution_time_ns(op)

    # -- Figure 1 variable cases ----------------------------------------------

    def var_first(self, side: str, name: str, other: SideTerm) -> None:
        """Cases 5a/6a: store the opposite term in a fresh slot."""
        self.record_op(
            HardwareOp.DB_STORE if side == "db" else HardwareOp.QUERY_STORE
        )
        self._store_of(side)[name] = other
        term = other.term
        if isinstance(term, Var) and not term.is_anonymous():
            # Var-var pair: reciprocal cross binding (if that slot is free).
            other_store = self._store_of(other.side)
            if term.name not in other_store:
                self.record_op(
                    HardwareOp.QUERY_STORE if side == "db" else HardwareOp.DB_STORE
                )
                other_store[term.name] = SideTerm(Var(name), side)

    def var_subsequent(self, side: str, name: str, other: SideTerm) -> bool:
        """Cases 5b/5c (db) and 6b/6c (query): fetch and compare."""
        store = self._store_of(side)
        binding = store.get(name)
        if binding is None:
            # The first occurrence sat inside a skipped subtree; the slot is
            # still unbound, so this behaves as a store.
            self.var_first(side, name, other)
            return True
        if isinstance(binding.term, Var):
            if not self.cross_binding:
                self.record_op(
                    HardwareOp.DB_FETCH if side == "db" else HardwareOp.QUERY_FETCH
                )
                return True
            self.record_op(
                HardwareOp.DB_CROSS_BOUND_FETCH
                if side == "db"
                else HardwareOp.QUERY_CROSS_BOUND_FETCH
            )
            ultimate = self._deref(binding)
            if isinstance(ultimate.term, Var):
                if isinstance(other.term, Var):
                    other_ultimate = self._deref(other)
                    if (
                        isinstance(other_ultimate.term, Var)
                        and other_ultimate == ultimate
                    ):
                        return True
                self._store_of(ultimate.side)[ultimate.term.name] = other
                return True
            binding = ultimate
        else:
            self.record_op(
                HardwareOp.DB_FETCH if side == "db" else HardwareOp.QUERY_FETCH
            )
        # The fetched association meets the current term (folded compare).
        return self.dispatch_terms(binding, other, folded=True)

    def _deref(self, value: SideTerm) -> SideTerm:
        """Chase cross-binding references to the ultimate association."""
        visited: set[tuple[str, str]] = set()
        current = value
        while isinstance(current.term, Var):
            if current.term.is_anonymous():
                return current
            key = (current.side, current.term.name)
            if key in visited:
                return current  # reference cycle: mutually unbound
            visited.add(key)
            bound = self._store_of(current.side).get(current.term.name)
            if bound is None:
                return current
            current = bound
        return current

    # -- term-level dispatch (for fetched bindings and list tails) -----------

    def dispatch_terms(self, a: SideTerm, b: SideTerm, folded: bool = False) -> bool:
        """Figure 1 over two materialised terms.

        Used where the datapath compares values that are no longer raw
        stream items: fetched bindings and the tails of aligned lists.
        Complex comparisons here are always shallow.
        """
        if isinstance(a.term, Var) and a.term.is_anonymous():
            return True
        if isinstance(b.term, Var) and b.term.is_anonymous():
            return True
        db_first, other = (a, b) if a.side == "db" else (b, a)
        if isinstance(db_first.term, Var) and db_first.side == "db":
            return self.var_subsequent_or_first(db_first, other)
        if isinstance(other.term, Var):
            return self.var_subsequent_or_first(other, db_first)
        if isinstance(a.term, Var):  # both same side 'query' with a var
            return self.var_subsequent_or_first(a, b)
        if isinstance(b.term, Var):
            return self.var_subsequent_or_first(b, a)
        if not folded:
            self.record_op(HardwareOp.MATCH)
        return self.shallow_compare(a.term, b.term)

    def var_subsequent_or_first(self, var_side: SideTerm, other: SideTerm) -> bool:
        """Route a variable occurrence by slot state (store vs fetch)."""
        assert isinstance(var_side.term, Var)
        name = var_side.term.name
        if name in self._store_of(var_side.side):
            return self.var_subsequent(var_side.side, name, other)
        self.var_first(var_side.side, name, other)
        return True

    # -- the comparator ---------------------------------------------------

    def shallow_compare(self, a: Term, b: Term) -> bool:
        """One tag+content comparison (what the 8-bit comparator sees)."""
        a_kind = _kind(a)
        b_kind = _kind(b)
        if a_kind != b_kind:
            return False
        if a_kind == "int":
            assert isinstance(a, Int) and isinstance(b, Int)
            return a.value == b.value
        if a_kind == "atom":
            assert isinstance(a, Atom) and isinstance(b, Atom)
            return a.name == b.name
        if a_kind == "float":
            assert isinstance(a, Float) and isinstance(b, Float)
            return a.value == b.value
        if a_kind == "struct":
            assert isinstance(a, Struct) and isinstance(b, Struct)
            if a.functor != b.functor:
                return False
            return _saturated(a.arity) == _saturated(b.arity)
        # Lists: the open-list counter rule on tags.
        a_items, a_tail = list_parts(a)
        b_items, b_tail = list_parts(b)
        a_open = isinstance(a_tail, Var)
        b_open = isinstance(b_tail, Var)
        if a_open or b_open:
            if len(a_items) > _INLINE_LIMIT or len(b_items) > _INLINE_LIMIT:
                return True  # pointer form: tags cannot disagree decisively
            return True  # unlimited list: arities need not agree
        return _saturated(len(a_items)) == _saturated(len(b_items))


def _kind(term: Term) -> str:
    if isinstance(term, Int):
        return "int"
    if isinstance(term, Float):
        return "float"
    if isinstance(term, Struct):
        if term.functor == "." and term.arity == 2:
            return "list"
        return "struct"
    if isinstance(term, Atom):
        return "list" if term == NIL else "atom"
    raise TypeError(f"unexpected term {term!r}")


def _saturated(arity: int) -> tuple[bool, int]:
    """(in-line?, field) — the tag view of an arity (saturates at 31)."""
    return (arity <= _INLINE_LIMIT, min(arity, _INLINE_LIMIT))
