"""CLARE's host interface: the VMEbus address map and control register.

CLARE is memory mapped into the Sun host at ``0xffff7e00``-``0xffff7fff``
(128 K of the 24-bit VME space shared by FS1 and FS2, paper section 2.2).
An 8-bit control register selects the active filter and its mode:

* bit 2 (``b2``): 0 selects FS1, 1 selects FS2 (mutually exclusive);
* bits 0-1 (``b0 b1``): the FS2 operational mode —

  =================  ==  ==
  Operational mode   b0  b1
  =================  ==  ==
  Read Result         0   0
  Search              0   1
  Microprogramming    1   0
  Set Query           1   1
  =================  ==  ==

* bit 7 (``b7``): set by the hardware when a search found a match.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "CLARE_BASE_ADDRESS",
    "CLARE_END_ADDRESS",
    "FilterSelect",
    "OperationalMode",
    "ControlRegister",
]

CLARE_BASE_ADDRESS = 0xFFFF7E00
CLARE_END_ADDRESS = 0xFFFF7FFF

_B0 = 0x01
_B1 = 0x02
_B2 = 0x04
_B7 = 0x80


class FilterSelect(Enum):
    """Which filter board the shared address window talks to."""

    FS1 = 0
    FS2 = 1


class OperationalMode(Enum):
    """FS2 operational modes, encoded in control bits (b0, b1)."""

    READ_RESULT = (0, 0)
    SEARCH = (0, 1)
    MICROPROGRAMMING = (1, 0)
    SET_QUERY = (1, 1)

    @property
    def b0(self) -> int:
        return self.value[0]

    @property
    def b1(self) -> int:
        return self.value[1]


class ControlRegister:
    """The 8-bit CLARE control/status register."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def write(self, value: int) -> None:
        """Host write (bit 7 is hardware-owned status and is preserved)."""
        if not (0 <= value <= 0xFF):
            raise ValueError("control register is 8 bits wide")
        self._value = (value & 0x7F) | (self._value & _B7)

    @property
    def filter_select(self) -> FilterSelect:
        return FilterSelect.FS2 if self._value & _B2 else FilterSelect.FS1

    def select_filter(self, which: FilterSelect) -> None:
        if which is FilterSelect.FS2:
            self._value |= _B2
        else:
            self._value &= ~_B2 & 0xFF

    @property
    def mode(self) -> OperationalMode:
        b0 = 1 if self._value & _B0 else 0
        b1 = 1 if self._value & _B1 else 0
        return OperationalMode((b0, b1))

    def set_mode(self, mode: OperationalMode) -> None:
        self._value &= ~(_B0 | _B1) & 0xFF
        self._value |= (_B0 if mode.b0 else 0) | (_B1 if mode.b1 else 0)

    @property
    def match_found(self) -> bool:
        """Status bit b7, set by the hardware at the end of a search."""
        return bool(self._value & _B7)

    def set_match_found(self, found: bool) -> None:
        if found:
            self._value |= _B7
        else:
            self._value &= ~_B7 & 0xFF

    def __repr__(self) -> str:
        return (
            f"ControlRegister(0b{self._value:08b}, {self.filter_select.name}, "
            f"{self.mode.name}, match={self.match_found})"
        )


def in_clare_window(address: int) -> bool:
    """True if a VME address falls in CLARE's shared 128 K window."""
    return CLARE_BASE_ADDRESS <= address <= CLARE_END_ADDRESS
