"""FS2 datapath timing — reproduces Table 1 from device delays.

The paper derives the execution time of each of the seven hardware
operations from the propagation delays of the datapath components (the
timing boxes under Figures 6-12).  Data travels simultaneously along a
*database route* and a *query route*; the slower route bounds each cycle,
the comparator (or a memory write) adds its own delay, and multi-cycle
operations sum their governing legs.

Component delays (ns), read off the figure captions:

=================  ====
Double Buffer        20
Sel1..Sel6           20
Query Memory         35
DB Memory (read)     25
DB Memory (write)    20
Reg1..Reg3           20
Comparator           30
=================  ====

Each operation below lists its route legs verbatim from the figures; the
``execution_time_ns`` formulae mirror the paper's own arithmetic, e.g.
MATCH = query route (75) + comparison (30) = 105 ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..unify.match import HardwareOp

__all__ = [
    "DEVICE_DELAYS_NS",
    "Route",
    "OperationTiming",
    "OPERATION_TIMINGS",
    "execution_time_ns",
    "table1",
    "worst_case_op",
    "worst_case_rate_bytes_per_sec",
    "CLOCK_HZ",
]

#: The WCS clock: "An 8 MHz clock is used to synchronise the various parts".
CLOCK_HZ = 8_000_000

#: Propagation delays of the datapath devices, in nanoseconds.
DEVICE_DELAYS_NS: dict[str, int] = {
    "double_buffer": 20,
    "sel": 20,  # Sel1..Sel6 are identical selector stages
    "query_memory": 35,
    "db_memory_read": 25,
    "db_memory_write": 20,
    "reg": 20,  # Reg1..Reg3
    "comparator": 30,
    "micro_bits": 0,  # ub13-20 drive addresses directly
}


@dataclass(frozen=True)
class Route:
    """One leg of a datapath: an ordered chain of devices."""

    name: str
    devices: tuple[str, ...]

    def delay_ns(self, delays: dict[str, int] | None = None) -> int:
        table = DEVICE_DELAYS_NS if delays is None else delays
        return sum(table[device] for device in self.devices)


@dataclass(frozen=True)
class Cycle:
    """One microprogram cycle: parallel routes, bounded by the governing one.

    ``governing`` names the route whose delay the paper counts for this
    cycle (routes run in parallel; only the one feeding the next step
    matters).
    """

    db_route: Route | None
    query_route: Route | None
    governing: str  # "db", "query", or "max"

    def delay_ns(self, delays: dict[str, int] | None = None) -> int:
        db = self.db_route.delay_ns(delays) if self.db_route else 0
        query = self.query_route.delay_ns(delays) if self.query_route else 0
        if self.governing == "db":
            return db
        if self.governing == "query":
            return query
        return max(db, query)


@dataclass(frozen=True)
class OperationTiming:
    """The full timing specification of one hardware operation."""

    op: HardwareOp
    figure: int
    cycles: tuple[Cycle, ...]
    finish: str  # "comparator" or "db_memory_write"

    def execution_time_ns(self, delays: dict[str, int] | None = None) -> int:
        table = DEVICE_DELAYS_NS if delays is None else delays
        total = sum(cycle.delay_ns(table) for cycle in self.cycles)
        return total + table[self.finish]

    def cycle_count(self) -> int:
        return len(self.cycles)


def _route(name: str, *devices: str) -> Route:
    return Route(name, devices)


# Figure 6: MATCH.  db: Double Buffer -> Sel1 -> A-port (40ns);
# query: Sel6 -> Query Memory -> Sel3 -> B-port (75ns); + comparison 30.
_MATCH = OperationTiming(
    op=HardwareOp.MATCH,
    figure=6,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "sel"),
            query_route=_route("query", "sel", "query_memory", "sel"),
            governing="max",
        ),
    ),
    finish="comparator",
)

# Figure 7: DB_STORE.  db: Double Buffer -> Sel1 -> Sel2 (60ns, address);
# query: Sel6 -> Query Memory -> Reg3 (75ns, data); + DB Memory write 20.
_DB_STORE = OperationTiming(
    op=HardwareOp.DB_STORE,
    figure=7,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "sel", "sel"),
            query_route=_route("query", "sel", "query_memory", "reg"),
            governing="max",
        ),
    ),
    finish="db_memory_write",
)

# Figure 8: QUERY_STORE.  db: Double Buffer -> Sel1 -> Sel5 -> Sel4 (80ns,
# data); query: Sel6 (20ns, address); + Query Memory write 35.
_QUERY_STORE = OperationTiming(
    op=HardwareOp.QUERY_STORE,
    figure=8,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "sel", "sel", "sel"),
            query_route=_route("query", "sel"),
            governing="max",
        ),
    ),
    finish="query_memory",  # the write into the Query Memory
)

# Figure 9: DB_FETCH.  db: Double Buffer -> DB Memory(B) -> Sel1 (65ns);
# query: as MATCH (75ns); + comparison 30.
_DB_FETCH = OperationTiming(
    op=HardwareOp.DB_FETCH,
    figure=9,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "db_memory_read", "sel"),
            query_route=_route("query", "sel", "query_memory", "sel"),
            governing="max",
        ),
    ),
    finish="comparator",
)

# Figure 10: QUERY_FETCH (two cycles).  Cycle 1 query route: Sel6 -> Query
# Memory -> Sel3 -> Sel2 -> DB Memory A address (120ns per the figure);
# cycle 2: binding -> Sel3 -> B-port (20ns); + comparison 30.
_QUERY_FETCH = OperationTiming(
    op=HardwareOp.QUERY_FETCH,
    figure=10,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "sel"),
            query_route=_route(
                "query", "sel", "query_memory", "sel", "sel", "db_memory_read"
            ),
            governing="query",
        ),
        Cycle(
            db_route=None,
            query_route=_route("query", "sel"),
            governing="query",
        ),
    ),
    finish="comparator",
)

# Figure 11: DB_CROSS_BOUND_FETCH (two cycles).  Cycle 1 query route 75ns
# governs; cycle 2 database route DB Memory -> Reg1 -> ... 65ns; + 30.
_DB_CROSS_BOUND_FETCH = OperationTiming(
    op=HardwareOp.DB_CROSS_BOUND_FETCH,
    figure=11,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "db_memory_read", "reg"),
            query_route=_route("query", "sel", "query_memory", "sel"),
            governing="query",
        ),
        Cycle(
            db_route=_route("db", "reg", "db_memory_read", "sel"),
            query_route=None,
            governing="db",
        ),
    ),
    finish="comparator",
)

# Figure 12: QUERY_CROSS_BOUND_FETCH (three cycles).  Query routes govern:
# 95 + 65 + 45; + comparison 30 = 235ns.
_QUERY_CROSS_BOUND_FETCH = OperationTiming(
    op=HardwareOp.QUERY_CROSS_BOUND_FETCH,
    figure=12,
    cycles=(
        Cycle(
            db_route=_route("db", "double_buffer", "sel"),
            query_route=_route("query", "sel", "query_memory", "sel", "sel"),
            governing="query",
        ),
        Cycle(
            db_route=None,
            query_route=_route("query", "db_memory_read", "sel", "sel"),
            governing="query",
        ),
        Cycle(
            db_route=None,
            query_route=_route("query", "db_memory_read", "sel"),
            governing="query",
        ),
    ),
    finish="comparator",
)

OPERATION_TIMINGS: dict[HardwareOp, OperationTiming] = {
    t.op: t
    for t in (
        _MATCH,
        _DB_STORE,
        _QUERY_STORE,
        _DB_FETCH,
        _QUERY_FETCH,
        _DB_CROSS_BOUND_FETCH,
        _QUERY_CROSS_BOUND_FETCH,
    )
}

#: The paper's Table 1 values, for verification.
PAPER_TABLE1_NS: dict[HardwareOp, int] = {
    HardwareOp.MATCH: 105,
    HardwareOp.DB_STORE: 95,
    HardwareOp.QUERY_STORE: 115,
    HardwareOp.DB_FETCH: 105,
    HardwareOp.QUERY_FETCH: 170,
    HardwareOp.DB_CROSS_BOUND_FETCH: 170,
    HardwareOp.QUERY_CROSS_BOUND_FETCH: 235,
}


def execution_time_ns(op: HardwareOp) -> int:
    """Execution time of one hardware operation (Table 1)."""
    return OPERATION_TIMINGS[op].execution_time_ns()


def table1() -> list[tuple[int, str, int]]:
    """(figure, operation, execution time ns) rows, as printed in Table 1."""
    return [
        (t.figure, t.op.name, t.execution_time_ns())
        for t in OPERATION_TIMINGS.values()
    ]


def worst_case_op() -> HardwareOp:
    """The slowest operation (QUERY_CROSS_BOUND_FETCH in the paper)."""
    return max(OPERATION_TIMINGS, key=execution_time_ns)


def worst_case_rate_bytes_per_sec(bytes_per_op: int = 1) -> float:
    """The paper's worst-case filter rate figure (~4.25 MB/s).

    Section 4 derives the rate as one byte per worst-case operation time:
    1 / 235 ns = 4.25 M operations per second.
    """
    return bytes_per_op * 1e9 / execution_time_ns(worst_case_op())
