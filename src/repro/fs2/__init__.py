"""FS2: the second stage filter — microcoded partial test unification."""

from .buffer import BufferBankBusy, DoubleBuffer
from .control import (
    CLARE_BASE_ADDRESS,
    CLARE_END_ADDRESS,
    ControlRegister,
    FilterSelect,
    OperationalMode,
)
from .compiled import (
    CompiledMatcher,
    CycleCosts,
    PlanNode,
    compile_plan,
    derive_cycle_costs,
)
from .cursor import ItemCursor, inline_children
from .engine import FS2_MODES, FS2ProtocolError, FS2SearchStats, SecondStageFilter
from .microcode import (
    WCS_WORDS,
    WORD_BITS,
    Condition,
    DispatchClass,
    ExecOp,
    MicroInstruction,
    MicroProgram,
    SeqOp,
    assemble_search_program,
)
from .result import MAX_SATISFIERS, RM_BYTES, SLOT_BYTES, ResultMemory, ResultMemoryFull
from .stream import ClauseTiming, StreamingTimeline, simulate_streaming_search
from .timing import (
    CLOCK_HZ,
    DEVICE_DELAYS_NS,
    OPERATION_TIMINGS,
    execution_time_ns,
    table1,
    worst_case_op,
    worst_case_rate_bytes_per_sec,
)
from .tue import SideTerm, TestUnificationEngine
from .wcs import ElementCounters, MicroProgramController, WritableControlStore

__all__ = [
    "BufferBankBusy",
    "CLARE_BASE_ADDRESS",
    "CLARE_END_ADDRESS",
    "CLOCK_HZ",
    "ClauseTiming",
    "CompiledMatcher",
    "Condition",
    "ControlRegister",
    "CycleCosts",
    "DEVICE_DELAYS_NS",
    "DispatchClass",
    "DoubleBuffer",
    "ElementCounters",
    "ExecOp",
    "FS2_MODES",
    "FS2ProtocolError",
    "FS2SearchStats",
    "FilterSelect",
    "ItemCursor",
    "MAX_SATISFIERS",
    "MicroInstruction",
    "MicroProgram",
    "MicroProgramController",
    "OPERATION_TIMINGS",
    "OperationalMode",
    "PlanNode",
    "RM_BYTES",
    "ResultMemory",
    "ResultMemoryFull",
    "SLOT_BYTES",
    "SecondStageFilter",
    "SeqOp",
    "SideTerm",
    "StreamingTimeline",
    "TestUnificationEngine",
    "simulate_streaming_search",
    "WCS_WORDS",
    "WORD_BITS",
    "WritableControlStore",
    "assemble_search_program",
    "compile_plan",
    "derive_cycle_costs",
    "execution_time_ns",
    "inline_children",
    "table1",
    "worst_case_op",
    "worst_case_rate_bytes_per_sec",
]
