"""The Result Memory and its Address Generator (paper section 3.2).

The Result Memory holds 32 K bytes — "large enough to contain all clause
satisfiers of one disk track, the worst case of a single FS2 search call".
Its address is produced by two counters:

* a 6-bit counter forming the upper address bits, incremented whenever a
  clause satisfier is found (its final value *is* the satisfier count);
* a 9-bit counter forming the lower bits, reset after each clause — so
  every clause occupies one 512-byte slot.

Disk data is copied into the RM *in parallel* with the Double Buffer
transfer; when the clause turns out not to match, the slot is simply
re-used (the 6-bit counter is not incremented).
"""

from __future__ import annotations

__all__ = ["ResultMemory", "ResultMemoryFull", "RM_BYTES", "SLOT_BYTES", "MAX_SATISFIERS"]

RM_BYTES = 32 * 1024
SLOT_BYTES = 512  # 9-bit low counter
MAX_SATISFIERS = 64  # 6-bit high counter


class ResultMemoryFull(RuntimeError):
    """More satisfiers than the 6-bit counter can address."""


class ResultMemory:
    """32 KB result store addressed by the 6+9-bit counter pair."""

    def __init__(self) -> None:
        self._memory = bytearray(RM_BYTES)
        self._satisfier_counter = 0  # 6-bit
        self._byte_counter = 0  # 9-bit
        self._slot_lengths: list[int] = []
        # In-call stream position of each captured satisfier, so the
        # host can map result slots back to the records (and addresses)
        # it streamed in — a direct index, not a byte-equality walk.
        self._stream_index = -1
        self._positions: list[int] = []

    @property
    def satisfier_count(self) -> int:
        """The 6-bit counter value: number of captured satisfiers."""
        return self._satisfier_counter

    def begin_clause(self) -> None:
        """Reset the 9-bit counter for the next streaming clause."""
        self._byte_counter = 0

    def stream_byte(self, value: int) -> None:
        """One byte copied in parallel with the Double Buffer transfer."""
        if self._satisfier_counter >= MAX_SATISFIERS:
            raise ResultMemoryFull(
                f"all {MAX_SATISFIERS} Result Memory slots are captured"
            )
        if self._byte_counter >= SLOT_BYTES:
            raise ValueError("clause exceeds the 512-byte slot")
        address = (self._satisfier_counter << 9) | self._byte_counter
        self._memory[address] = value
        self._byte_counter += 1

    def stream_record(self, record: bytes) -> None:
        """Stream a whole record into the current slot (one DMA burst).

        Semantically ``begin_clause`` plus ``stream_byte`` per byte, but
        copied as one slice so the per-record host cost is flat.
        """
        self._stream_index += 1
        self.begin_clause()
        if not record:
            return
        if self._satisfier_counter >= MAX_SATISFIERS:
            raise ResultMemoryFull(
                f"all {MAX_SATISFIERS} Result Memory slots are captured"
            )
        base = self._satisfier_counter << 9
        if len(record) > SLOT_BYTES:
            # Same partial state the per-byte path leaves behind: the
            # slot fills up, then the overflow byte raises.
            self._memory[base : base + SLOT_BYTES] = record[:SLOT_BYTES]
            self._byte_counter = SLOT_BYTES
            raise ValueError("clause exceeds the 512-byte slot")
        self._memory[base : base + len(record)] = record
        self._byte_counter = len(record)

    def capture(self) -> None:
        """The clause matched: advance the 6-bit counter to keep its slot."""
        if self._satisfier_counter >= MAX_SATISFIERS:
            raise ResultMemoryFull(
                f"more than {MAX_SATISFIERS} satisfiers in one search call"
            )
        self._slot_lengths.append(self._byte_counter)
        self._positions.append(self._stream_index)
        self._satisfier_counter += 1

    def discard(self) -> None:
        """The clause missed: the slot will be overwritten (no-op)."""
        self._byte_counter = 0

    def read_results(self) -> list[bytes]:
        """Read Result mode: the captured clause records."""
        records = []
        for index, length in enumerate(self._slot_lengths):
            base = index << 9
            records.append(bytes(self._memory[base : base + length]))
        return records

    def satisfier_positions(self) -> list[int]:
        """In-call stream position of each captured slot, in slot order.

        ``satisfier_positions()[i]`` is the zero-based index, among the
        records streamed since the last reset, of the record now held in
        result slot ``i``.
        """
        return list(self._positions)

    def reset(self) -> None:
        self._satisfier_counter = 0
        self._byte_counter = 0
        self._slot_lengths.clear()
        self._stream_index = -1
        self._positions.clear()
