"""The FS2 second-stage filter: microprogram-driven partial test unification.

The engine follows the host protocol of paper section 3: the control
register selects FS2 and steps through Microprogramming mode (load the
search program into the WCS), Set Query mode (encode the query into the
Query Memory), Search mode (clause records stream through the Double
Buffer while the microprogram matches them and the Result Memory captures
satisfiers), and finally Read Result mode.

Execution is genuinely microcoded: every control transfer during a search
is a sequencer step over the assembled program, with dispatch through the
map ROM on the latched (db tag, query tag) classes and the two element
counters bounding complex-term loops.  The datapath operations consume PIF
items from the stream cursors and run through the Test Unification Engine,
which accrues the Table 1 execution times.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..pif import CompiledClause, PIFEncoder, tags
from ..pif.decoder import Item
from ..pif.encoder import EncodedArgs
from ..pif.symbols import SymbolTable
from ..terms import Term, functor_indicator
from ..unify.match import HardwareOp
from .buffer import DoubleBuffer
from .compiled import CompiledMatcher, PlanNode, compile_plan, derive_cycle_costs
from .compiled import parse_record as _parse_record
from .control import ControlRegister, FilterSelect, OperationalMode
from .cursor import ItemCursor
from .microcode import (
    Condition,
    DispatchClass,
    ExecOp,
    MicroProgram,
    SeqOp,
    assemble_search_program,
)
from .result import ResultMemory
from .timing import CLOCK_HZ
from .tue import SideTerm, TestUnificationEngine
from .wcs import ElementCounters, MicroProgramController, WritableControlStore

__all__ = ["FS2SearchStats", "SecondStageFilter", "FS2ProtocolError", "FS2_MODES"]

_WATCHDOG_BASE = 10_000

#: The two execution engines behind the same host protocol.
FS2_MODES = ("microcoded", "compiled")


class FS2ProtocolError(RuntimeError):
    """The host drove the mode protocol out of order."""


@dataclass
class FS2SearchStats:
    """Accounting for one FS2 search call."""

    clauses_examined: int = 0
    satisfiers: int = 0
    bytes_streamed: int = 0
    micro_cycles: int = 0
    op_counts: Counter = field(default_factory=Counter)
    op_time_ns: int = 0

    @property
    def false_drop_candidates(self) -> int:
        return self.clauses_examined - self.satisfiers

    @property
    def clock_time_ns(self) -> float:
        """Wall time of the microprogram at the 8 MHz WCS clock."""
        return self.micro_cycles * 1e9 / CLOCK_HZ


class SecondStageFilter:
    """The FS2 board: WCS + TUE + Double Buffer + Result Memory."""

    def __init__(
        self,
        symbols: SymbolTable,
        cross_binding: bool = True,
        obs: Instrumentation | None = None,
        mode: str = "microcoded",
        plan_cache_size: int = 128,
    ):
        if mode not in FS2_MODES:
            raise ValueError(f"unknown FS2 mode {mode!r}; expected {FS2_MODES}")
        self.symbols = symbols
        self.mode = mode
        self.obs = obs if obs is not None else _default_obs()
        self.control = ControlRegister()
        self.control.select_filter(FilterSelect.FS2)
        self.wcs = WritableControlStore()
        self.mpc = MicroProgramController()
        self.counters = ElementCounters()
        self.tue = TestUnificationEngine(cross_binding=cross_binding)
        self.buffer = DoubleBuffer()
        self.result = ResultMemory()
        self._program: MicroProgram | None = None
        self._query_encoded: EncodedArgs | None = None
        self._indicator: tuple[str, int] | None = None
        # Compiled fast path: the matcher (built at microprogram-load
        # time from the mechanically derived cycle costs), the current
        # match plan, and the per-(canonical goal key, indicator) LRU of
        # (encoded query, plan) pairs.
        self.plan_cache_size = plan_cache_size
        self._matcher: CompiledMatcher | None = None
        self._plan: tuple[PlanNode, ...] | None = None
        self._plan_cache: "OrderedDict[tuple, tuple[EncodedArgs, tuple[PlanNode, ...]]]" = (
            OrderedDict()
        )
        # Per-clause datapath state.
        self._db_cursor: ItemCursor | None = None
        self._q_cursor: ItemCursor | None = None
        self._latched: tuple[Item, Item] | None = None
        self._hit = True
        self._entered = False
        self._complex_kind: str | None = None
        self._db_tail_pending = False
        self._q_tail_pending = False
        self._clause_outcome: bool | None = None
        self._buffer_ready = False

    # -- host protocol -----------------------------------------------------

    def load_microprogram(self, program: MicroProgram | None = None) -> None:
        """Microprogramming mode: write the search program into the WCS."""
        self.control.set_mode(OperationalMode.MICROPROGRAMMING)
        program = program or assemble_search_program()
        self.wcs.load_program(program)
        self._program = program
        if self.mode == "compiled":
            # The cycle-cost table is derived from the words just loaded,
            # so a nonstandard program either accounts identically or is
            # rejected here rather than silently drifting.
            self._matcher = CompiledMatcher(
                self.symbols, self.tue, derive_cycle_costs(program)
            )

    def set_query(self, query: Term) -> None:
        """Set Query mode: encode the query into the Query Memory."""
        if not self.wcs.loaded:
            raise FS2ProtocolError("load the microprogram before the query")
        self.control.set_mode(OperationalMode.SET_QUERY)
        indicator = functor_indicator(query)
        if self._matcher is not None:
            self._set_query_compiled(query, indicator)
        else:
            encoder = PIFEncoder(self.symbols, side="query")
            self._query_encoded = encoder.encode_head(query)
        self._indicator = indicator
        self.tue.reset_query_memory()
        self.control.set_match_found(False)
        self.result.reset()

    def _set_query_compiled(self, query: Term, indicator: tuple[str, int]) -> None:
        """Probe the plan LRU; compile (and cache) on a miss.

        Keyed by the canonical goal key, so renamed-variable aliases of
        one retrieval share a plan: the match outcome and every stat are
        name-independent (names only key the TUE binding memories).
        """
        from ..crs.keys import canonical_goal_key  # local import avoids a cycle

        key = (canonical_goal_key(query), indicator)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache.move_to_end(key)
            self.obs.counter("fs2.plan_cache.hits").inc()
            self._query_encoded, self._plan = cached
            return
        self.obs.counter("fs2.plan_cache.misses").inc()
        encoder = PIFEncoder(self.symbols, side="query")
        encoded = encoder.encode_head(query)
        plan = compile_plan(encoded, self.symbols)
        self._query_encoded = encoded
        self._plan = plan
        self._plan_cache[key] = (encoded, plan)
        while len(self._plan_cache) > self.plan_cache_size:
            self._plan_cache.popitem(last=False)
            self.obs.counter("fs2.plan_cache.evictions").inc()

    def rearm(self) -> None:
        """Re-enter Set Query mode for the query already loaded.

        The cheap flush between chunked search calls over one goal: the
        Result Memory and Query Memory reset exactly as ``set_query``
        would, but the goal is neither re-encoded nor re-planned.
        """
        if self._query_encoded is None or self._indicator is None:
            raise FS2ProtocolError("set the query before re-arming")
        self.control.set_mode(OperationalMode.SET_QUERY)
        self.tue.reset_query_memory()
        self.control.set_match_found(False)
        self.result.reset()

    def search(
        self, records: Iterable[bytes], indicator: tuple[str, int] | None = None
    ) -> FS2SearchStats:
        """Search mode: stream clause records past the filter."""
        if self._query_encoded is None or self._indicator is None:
            raise FS2ProtocolError("set the query before searching")
        self.control.set_mode(OperationalMode.SEARCH)
        record_indicator = indicator or self._indicator
        stats = FS2SearchStats()
        self.tue.reset_accounting()
        self.buffer.reset()
        with self.obs.span(
            "fs2.search", indicator=f"{record_indicator[0]}/{record_indicator[1]}"
        ) as span:
            for record in records:
                # DMA: the record lands in the Double Buffer and, in parallel,
                # in the Result Memory's current slot.
                self.buffer.load(record)
                self.buffer.toggle()
                self.result.stream_record(record)
                stats.bytes_streamed += len(record)
                stats.clauses_examined += 1
                hit = self._run_clause(
                    self.buffer.consume_output(), record_indicator, stats
                )
                if hit:
                    self.result.capture()
                    stats.satisfiers += 1
                else:
                    self.result.discard()
            stats.op_counts = Counter(self.tue.op_counts)
            stats.op_time_ns = self.tue.op_time_ns
            self.control.set_match_found(stats.satisfiers > 0)
            span.set(
                clauses=stats.clauses_examined,
                satisfiers=stats.satisfiers,
                bytes=stats.bytes_streamed,
                micro_cycles=stats.micro_cycles,
                sim_time_s=stats.op_time_ns / 1e9,
            )
        self._account(stats)
        return stats

    def _account(self, stats: FS2SearchStats) -> None:
        obs = self.obs
        obs.counter("fs2.search_calls").inc()
        obs.counter("fs2.clauses_examined").inc(stats.clauses_examined)
        obs.counter("fs2.satisfiers").inc(stats.satisfiers)
        obs.counter("fs2.false_drops").inc(stats.false_drop_candidates)
        obs.counter("fs2.bytes_streamed").inc(stats.bytes_streamed)
        obs.counter("fs2.micro_cycles").inc(stats.micro_cycles)
        obs.counter("fs2.sim_time_s").inc(stats.op_time_ns / 1e9)
        for op, count in stats.op_counts.items():
            obs.counter("fs2.ops", op=getattr(op, "name", str(op))).inc(count)
        # Result-Memory occupancy: satisfier slots used by this call, out
        # of the 64 the 6-bit counter can address.
        obs.histogram(
            "fs2.rm_occupancy", buckets=(0, 1, 2, 4, 8, 16, 32, 48, 63, 64)
        ).observe(self.result.satisfier_count)
        if self._matcher is not None:
            obs.counter("fs2.compiled.search_calls").inc()
            obs.counter("fs2.compiled.clauses").inc(stats.clauses_examined)

    def read_results(self) -> list[bytes]:
        """Read Result mode: the captured satisfier records."""
        self.control.set_mode(OperationalMode.READ_RESULT)
        return self.result.read_results()

    # -- one clause through the microprogram ---------------------------------

    def _run_clause(
        self,
        record: bytes,
        indicator: tuple[str, int],
        stats: FS2SearchStats,
    ) -> bool:
        matcher = self._matcher
        if matcher is not None:
            if indicator != self._indicator:
                return False  # wrong predicate: never a satisfier
            head, heap, names = _parse_record(record)
            return matcher.match(self._plan, head, heap, names, stats)
        compiled, _ = CompiledClause.from_bytes(record, indicator)
        return self._match_compiled(compiled, stats)

    def match_compiled(self, compiled: CompiledClause) -> bool:
        """Match a single compiled clause (no streaming); for testing."""
        if self._query_encoded is None:
            raise FS2ProtocolError("set the query before matching")
        if self._matcher is not None:
            if compiled.indicator != self._indicator:
                return False
            return self._matcher.match(
                self._plan,
                compiled.head_stream,
                compiled.heap,
                compiled.var_names,
                FS2SearchStats(),
            )
        return self._match_compiled(compiled, FS2SearchStats())

    def _match_compiled(
        self, compiled: CompiledClause, stats: FS2SearchStats
    ) -> bool:
        assert self._query_encoded is not None and self._indicator is not None
        if compiled.indicator != self._indicator:
            return False  # wrong predicate: never a satisfier
        self._stage_clause(compiled)
        watchdog = _WATCHDOG_BASE + 100 * len(compiled.head_stream)
        self.mpc.reset(0)
        while self._clause_outcome is None:
            if watchdog <= 0:
                raise RuntimeError("FS2 microprogram watchdog expired")
            watchdog -= 1
            stats.micro_cycles += 1
            instruction = self.wcs.fetch(self.mpc.pc)
            self._execute(instruction.exec_op)
            map_target = None
            if instruction.seq == SeqOp.JMAP:
                map_target = self.wcs.map_address(*self._dispatch_pair())
            self.mpc.pc = self.mpc.next_address(
                instruction, self._conditions(), map_target
            )
        outcome = self._clause_outcome
        self._clause_outcome = None
        return bool(outcome)

    def _stage_clause(self, compiled: CompiledClause) -> None:
        assert self._query_encoded is not None
        self._db_cursor = ItemCursor(compiled.head_encoded, self.symbols)
        self._q_cursor = ItemCursor(self._query_encoded, self.symbols)
        self._latched = None
        self._hit = True
        self._entered = False
        self._complex_kind = None
        self._db_tail_pending = False
        self._q_tail_pending = False
        self._clause_outcome = None
        self._buffer_ready = True
        self.counters.clear()

    # -- condition codes -----------------------------------------------------

    def _conditions(self) -> dict[Condition, bool]:
        assert self._db_cursor is not None and self._q_cursor is not None
        return {
            Condition.ALWAYS: True,
            Condition.BUFFER_READY: self._buffer_ready,
            Condition.HIT: self._hit,
            Condition.ARGS_DONE: self._db_cursor.at_end()
            and self._q_cursor.at_end(),
            Condition.ENTERED: self._entered,
            Condition.IN_COMPLEX: self.counters.active,
            Condition.COUNTERS_DONE: self.counters.either_zero(),
        }

    def _dispatch_pair(self) -> tuple[DispatchClass, DispatchClass]:
        if self._latched is None:
            raise RuntimeError("JMAP before LOAD_PAIR")
        db_item, q_item = self._latched
        return _dispatch_class(db_item), _dispatch_class(q_item)

    # -- execute unit ----------------------------------------------------------

    def _execute(self, op: ExecOp) -> None:
        if op == ExecOp.NOP:
            return
        handler = {
            ExecOp.INIT_CLAUSE: self._exec_init_clause,
            ExecOp.LOAD_PAIR: self._exec_load_pair,
            ExecOp.MATCH: self._exec_match,
            ExecOp.ANON_SKIP: self._exec_anon_skip,
            ExecOp.DBVAR_FIRST: self._exec_dbvar_first,
            ExecOp.DBVAR_SUB: self._exec_dbvar_sub,
            ExecOp.QVAR_FIRST: self._exec_qvar_first,
            ExecOp.QVAR_SUB: self._exec_qvar_sub,
            ExecOp.FINISH_COMPLEX: self._exec_finish_complex,
            ExecOp.SIGNAL_HIT: self._exec_signal_hit,
            ExecOp.SIGNAL_MISS: self._exec_signal_miss,
        }[op]
        handler()

    def _exec_init_clause(self) -> None:
        self.tue.reset_db_memory()
        self.tue.reset_query_memory()
        self._buffer_ready = False  # the clause is being consumed now

    def _exec_load_pair(self) -> None:
        assert self._db_cursor is not None and self._q_cursor is not None
        self._latched = (self._db_cursor.peek(), self._q_cursor.peek())
        self._entered = False
        if self.counters.active:
            self.counters.decrement()

    def _exec_signal_hit(self) -> None:
        self._clause_outcome = True

    def _exec_signal_miss(self) -> None:
        self._clause_outcome = False

    # -- matching operations ---------------------------------------------------

    def _exec_match(self) -> None:
        db_item, q_item = self._require_latched()
        self.tue.record_op(HardwareOp.MATCH)
        db_kind = _item_kind(db_item)
        q_kind = _item_kind(q_item)
        if db_kind != q_kind:
            self._consume_subtrees()
            self._hit = False
            return
        if db_kind in ("int", "atom", "float"):
            self._take_items()
            self._hit = (db_item.tag == q_item.tag) and (
                db_item.content == q_item.content
            )
            return
        if db_kind == "struct":
            self._match_structs(db_item, q_item)
            return
        self._match_lists(db_item, q_item)

    def _match_structs(self, db_item: Item, q_item: Item) -> None:
        if db_item.content != q_item.content:  # functor symbols differ
            self._consume_subtrees()
            self._hit = False
            return
        db_inline = db_item.category == tags.TagCategory.STRUCT_INLINE
        q_inline = q_item.category == tags.TagCategory.STRUCT_INLINE
        if db_inline != q_inline or db_item.arity != q_item.arity:
            # In-line vs pointer (arity <= 31 vs > 31) or arity mismatch.
            self._consume_subtrees()
            self._hit = False
            return
        if not db_inline:
            self._take_items()  # pointer pair: tag+content settled it
            self._hit = True
            return
        if self.counters.active:
            # Element level (depth >= 2): shallow only; skip the elements.
            self._consume_subtrees()
            self._hit = True
            return
        # Enter the element loop.
        self._take_items()
        self.counters.load(db_item.arity, q_item.arity)
        self._complex_kind = "struct"
        self._db_tail_pending = False
        self._q_tail_pending = False
        self._entered = True
        self._hit = True

    def _match_lists(self, db_item: Item, q_item: Item) -> None:
        db_open = db_item.category in (
            tags.TagCategory.ULIST_INLINE,
            tags.TagCategory.ULIST_PTR,
        )
        q_open = q_item.category in (
            tags.TagCategory.ULIST_INLINE,
            tags.TagCategory.ULIST_PTR,
        )
        db_inline = db_item.category in (
            tags.TagCategory.TLIST_INLINE,
            tags.TagCategory.ULIST_INLINE,
        )
        q_inline = q_item.category in (
            tags.TagCategory.TLIST_INLINE,
            tags.TagCategory.ULIST_INLINE,
        )
        closed_pair = not db_open and not q_open
        if closed_pair and db_inline != q_inline:
            # A <=31-element terminated list can never equal a >31 one.
            self._consume_subtrees()
            self._hit = False
            return
        if closed_pair and db_inline and db_item.arity != q_item.arity:
            self._consume_subtrees()
            self._hit = False
            return
        if not db_inline or not q_inline:
            # Pointer form on at least one side: tag-level verdict only.
            self._consume_subtrees()
            self._hit = True
            return
        if self.counters.active:
            # Element level: shallow verdict (already computed), skip.
            self._consume_subtrees()
            self._hit = True
            return
        if db_item.arity == 0 and q_item.arity == 0:
            self._take_items()  # [] vs []
            self._hit = True
            return
        # Enter the element loop with the unlimited-list counter rule.
        self._take_items()
        self.counters.load(db_item.arity, q_item.arity)
        self._complex_kind = "list"
        self._db_tail_pending = db_open or db_item.arity > 0
        self._q_tail_pending = q_open or q_item.arity > 0
        self._entered = True
        self._hit = True

    def _exec_finish_complex(self) -> None:
        assert self._db_cursor is not None and self._q_cursor is not None
        db_left = self.counters.db
        q_left = self.counters.query
        kind = self._complex_kind
        db_tail = self._db_tail_pending
        q_tail = self._q_tail_pending
        self.counters.clear()
        self._complex_kind = None
        self._db_tail_pending = False
        self._q_tail_pending = False
        self._hit = True
        if kind == "struct":
            return  # counters always exhaust together; nothing follows
        if db_left == 0 and q_left == 0 and db_tail and q_tail:
            # Both prefixes exhausted together: the tails meet.
            db_tail_item = self._db_cursor.peek()
            q_tail_item = self._q_cursor.peek()
            if (
                db_tail_item.tag == tags.TAG_TLIST_INLINE_BASE
                and q_tail_item.tag == tags.TAG_TLIST_INLINE_BASE
            ):
                self._take_items()  # [] vs []: nothing to compare
                return
            db_term = self._db_cursor.take_term()
            q_term = self._q_cursor.take_term()
            self._hit = self.tue.dispatch_terms(
                SideTerm(db_term, "db"), SideTerm(q_term, "query")
            )
            return
        # One counter reached zero first: skip the leftovers, succeed.
        for _ in range(db_left):
            self._db_cursor.skip_term()
        if db_tail:
            self._db_cursor.skip_term()
        for _ in range(q_left):
            self._q_cursor.skip_term()
        if q_tail:
            self._q_cursor.skip_term()

    def _exec_anon_skip(self) -> None:
        db_item, q_item = self._require_latched()
        assert self._db_cursor is not None and self._q_cursor is not None
        if db_item.category == tags.TagCategory.ANONYMOUS:
            self._db_cursor.take()
        else:
            self._db_cursor.skip_term()
        if q_item.category == tags.TagCategory.ANONYMOUS:
            self._q_cursor.take()
        else:
            self._q_cursor.skip_term()

    def _exec_dbvar_first(self) -> None:
        db_item, _ = self._require_latched()
        assert self._db_cursor is not None and self._q_cursor is not None
        self._db_cursor.take()
        name = self._db_cursor.var_name(db_item.content)
        other = SideTerm(self._q_cursor.take_term(), "query")
        self.tue.var_first("db", name, other)

    def _exec_dbvar_sub(self) -> None:
        db_item, _ = self._require_latched()
        assert self._db_cursor is not None and self._q_cursor is not None
        self._db_cursor.take()
        name = self._db_cursor.var_name(db_item.content)
        other = SideTerm(self._q_cursor.take_term(), "query")
        self._hit = self.tue.var_subsequent("db", name, other)

    def _exec_qvar_first(self) -> None:
        _, q_item = self._require_latched()
        assert self._db_cursor is not None and self._q_cursor is not None
        self._q_cursor.take()
        name = self._q_cursor.var_name(q_item.content)
        other = SideTerm(self._db_cursor.take_term(), "db")
        self.tue.var_first("query", name, other)

    def _exec_qvar_sub(self) -> None:
        _, q_item = self._require_latched()
        assert self._db_cursor is not None and self._q_cursor is not None
        self._q_cursor.take()
        name = self._q_cursor.var_name(q_item.content)
        other = SideTerm(self._db_cursor.take_term(), "db")
        self._hit = self.tue.var_subsequent("query", name, other)

    # -- consumption helpers --------------------------------------------------

    def _require_latched(self) -> tuple[Item, Item]:
        if self._latched is None:
            raise RuntimeError("datapath op before LOAD_PAIR")
        return self._latched

    def _take_items(self) -> None:
        assert self._db_cursor is not None and self._q_cursor is not None
        self._db_cursor.take()
        self._q_cursor.take()

    def _consume_subtrees(self) -> None:
        assert self._db_cursor is not None and self._q_cursor is not None
        self._db_cursor.skip_term()
        self._q_cursor.skip_term()


def _dispatch_class(item: Item) -> DispatchClass:
    category = item.category
    if category == tags.TagCategory.ANONYMOUS:
        return DispatchClass.ANONYMOUS
    if category == tags.TagCategory.FIRST_DB_VAR:
        return DispatchClass.FIRST_DB_VAR
    if category == tags.TagCategory.SUB_DB_VAR:
        return DispatchClass.SUB_DB_VAR
    if category == tags.TagCategory.FIRST_QUERY_VAR:
        return DispatchClass.FIRST_QUERY_VAR
    if category == tags.TagCategory.SUB_QUERY_VAR:
        return DispatchClass.SUB_QUERY_VAR
    return DispatchClass.CONCRETE


def _item_kind(item: Item) -> str:
    category = item.category
    if category == tags.TagCategory.INTEGER:
        return "int"
    if category == tags.TagCategory.ATOM:
        return "atom"
    if category == tags.TagCategory.FLOAT:
        return "float"
    if category in (tags.TagCategory.STRUCT_INLINE, tags.TagCategory.STRUCT_PTR):
        return "struct"
    return "list"
