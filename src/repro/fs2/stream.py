"""Co-simulation of the disk DMA feeding the FS2 through the Double Buffer.

"While disk data is transferring to the Double Buffer ... data stored
previously in the other bank are subjected to partial test unification"
(section 3.2): transfer of clause *n+1* overlaps the match of clause *n*.
This module folds real per-clause match times (Table 1 operation costs
accrued by the simulator) against real per-record transfer times (drive
rate) into a pipeline timeline — the precise version of the paper's
section 4 argument that the filter never throttles the disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..disk import DriveModel, FUJITSU_M2351A
from .engine import SecondStageFilter

__all__ = ["ClauseTiming", "StreamingTimeline", "simulate_streaming_search"]


@dataclass(frozen=True)
class ClauseTiming:
    """One clause through the pipe: transfer in, match, verdict."""

    index: int
    record_bytes: int
    transfer_ns: float
    match_ns: float
    hit: bool


@dataclass
class StreamingTimeline:
    """The whole search call's timing under both buffering disciplines."""

    clauses: list[ClauseTiming] = field(default_factory=list)
    satisfiers: int = 0

    @property
    def total_transfer_ns(self) -> float:
        return sum(c.transfer_ns for c in self.clauses)

    @property
    def total_match_ns(self) -> float:
        return sum(c.match_ns for c in self.clauses)

    @property
    def double_buffered_ns(self) -> float:
        """Pipelined: clause n+1 transfers while clause n matches."""
        if not self.clauses:
            return 0.0
        total = self.clauses[0].transfer_ns
        for previous, current in zip(self.clauses, self.clauses[1:]):
            total += max(previous.match_ns, current.transfer_ns)
        total += self.clauses[-1].match_ns
        return total

    @property
    def single_buffered_ns(self) -> float:
        """Sequential: each clause transfers, then matches."""
        return self.total_transfer_ns + self.total_match_ns

    @property
    def overlap_speedup(self) -> float:
        if self.double_buffered_ns == 0:
            return 1.0
        return self.single_buffered_ns / self.double_buffered_ns

    @property
    def match_bound_clauses(self) -> int:
        """How often the filter (not the disk) governed a pipeline slot."""
        bound = 0
        for previous, current in zip(self.clauses, self.clauses[1:]):
            if previous.match_ns > current.transfer_ns:
                bound += 1
        return bound


def simulate_streaming_search(
    fs2: SecondStageFilter,
    records: Iterable[bytes],
    indicator: tuple[str, int],
    drive: DriveModel = FUJITSU_M2351A,
) -> StreamingTimeline:
    """Stream records through a prepared FS2, timing every pipeline slot.

    The filter must already have its microprogram and query loaded.  Match
    times are the Table 1 operation costs the simulator accrues per
    clause; transfer times follow the drive's sustained rate.
    """
    from ..pif import CompiledClause

    timeline = StreamingTimeline()
    rate = drive.transfer_rate_bytes_per_sec
    for index, record in enumerate(records):
        before_ns = fs2.tue.op_time_ns
        compiled, _ = CompiledClause.from_bytes(record, indicator)
        hit = fs2.match_compiled(compiled)
        match_ns = fs2.tue.op_time_ns - before_ns
        timeline.clauses.append(
            ClauseTiming(
                index=index,
                record_bytes=len(record),
                transfer_ns=len(record) / rate * 1e9,
                match_ns=match_ns,
                hit=hit,
            )
        )
        if hit:
            timeline.satisfiers += 1
    return timeline
