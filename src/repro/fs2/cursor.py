"""Item cursors: the FS2's view of a PIF stream.

The hardware walks the clause in the Double Buffer item by item; the
cursor is that walk.  Beyond sequential item access it supports the two
datapath idioms the microcode needs:

* ``skip_term`` — consume a whole in-line subtree without comparison
  (what a variable or anonymous match does to the stream).  Arbitrary
  nesting needs only one counter: the *remaining* count absorbs each
  in-line complex item's child count.
* ``take_term`` — consume a subtree and hand back the term it denotes.
  Functionally this models latching a *pointer* to the buffered term
  (the Double Buffer retains the clause for the whole match, and the
  Query Memory holds the whole query, so such pointers are physical).
"""

from __future__ import annotations

from ..pif import EncodedArgs, tags
from ..pif.decoder import Item, PIFDecodeError, _read_item
from ..pif.symbols import SymbolTable
from ..terms import NIL, Int, Struct, Term, Var, make_list

__all__ = ["ItemCursor", "inline_children"]


def inline_children(item: Item) -> int:
    """How many stream items directly follow an in-line item.

    Structures contribute their arity; lists contribute their prefix
    elements plus the tail item (except the bare ``[]``); pointer forms
    keep their elements in the heap, so nothing follows in the stream.
    """
    category = item.category
    if category == tags.TagCategory.STRUCT_INLINE:
        return item.arity
    if category == tags.TagCategory.TLIST_INLINE:
        return item.arity + 1 if item.arity else 0
    if category == tags.TagCategory.ULIST_INLINE:
        return item.arity + 1
    return 0


class ItemCursor:
    """Sequential reader over one encoded argument stream."""

    def __init__(self, encoded: EncodedArgs, symbols: SymbolTable):
        self._data = encoded.stream
        self._heap = encoded.heap
        self._var_names = encoded.var_names
        self._symbols = symbols
        self._position = 0
        self.items_consumed = 0

    def at_end(self) -> bool:
        return self._position >= len(self._data)

    def peek(self) -> Item:
        """The next item, without consuming it."""
        if self.at_end():
            raise PIFDecodeError("cursor at end of stream")
        item, _ = _read_item(self._data, self._position)
        return item

    def take(self) -> Item:
        """Consume and return the next item."""
        if self.at_end():
            raise PIFDecodeError("cursor at end of stream")
        item, self._position = _read_item(self._data, self._position)
        self.items_consumed += 1
        return item

    def skip_term(self) -> int:
        """Consume one whole term (subtree); returns items consumed."""
        remaining = 1
        consumed = 0
        while remaining:
            item = self.take()
            consumed += 1
            remaining += inline_children(item) - 1
        return consumed

    def take_term(self) -> Term:
        """Consume one whole term and materialise it."""
        item = self.take()
        return self._materialise(item)

    # -- materialisation -----------------------------------------------------

    def _materialise(self, item: Item) -> Term:
        category = item.category
        if category == tags.TagCategory.INTEGER:
            raw = ((item.tag & 0xF) << 24) | item.content
            if raw >= 1 << (tags.INT_INLINE_BITS - 1):
                raw -= 1 << tags.INT_INLINE_BITS
            return Int(raw)
        if category == tags.TagCategory.ATOM:
            return self._symbols.atom_at(item.content)
        if category == tags.TagCategory.FLOAT:
            return self._symbols.float_at(item.content)
        if category == tags.TagCategory.ANONYMOUS:
            return Var("_")
        if category in (
            tags.TagCategory.FIRST_QUERY_VAR,
            tags.TagCategory.SUB_QUERY_VAR,
            tags.TagCategory.FIRST_DB_VAR,
            tags.TagCategory.SUB_DB_VAR,
        ):
            return Var(self._var_name(item.content))
        if category == tags.TagCategory.STRUCT_INLINE:
            functor = self._symbols.atom_name_at(item.content)
            args = tuple(self.take_term() for _ in range(item.arity))
            return Struct(functor, args)
        if category == tags.TagCategory.TLIST_INLINE:
            if item.arity == 0:
                return NIL
            elements = [self.take_term() for _ in range(item.arity)]
            tail = self.take_term()
            return make_list(elements, tail=tail)
        if category == tags.TagCategory.ULIST_INLINE:
            elements = [self.take_term() for _ in range(item.arity)]
            tail = self.take_term()
            return make_list(elements, tail=tail)
        # Pointer forms: the term lives in the heap.
        if category == tags.TagCategory.STRUCT_PTR:
            assert item.extension is not None
            functor = self._symbols.atom_name_at(item.content)
            count, reader = self._heap_cursor(item.extension)
            args = tuple(reader.take_term() for _ in range(count))
            return Struct(functor, args)
        if category in (tags.TagCategory.TLIST_PTR, tags.TagCategory.ULIST_PTR):
            assert item.extension is not None
            count, reader = self._heap_cursor(item.extension)
            elements = [reader.take_term() for _ in range(count)]
            tail = reader.take_term()
            return make_list(elements, tail=tail)
        raise PIFDecodeError(f"cannot materialise tag 0x{item.tag:02x}")

    def _heap_cursor(self, offset: int) -> tuple[int, "ItemCursor"]:
        if offset + 4 > len(self._heap):
            raise PIFDecodeError(f"heap pointer {offset} out of range")
        count = int.from_bytes(self._heap[offset : offset + 4], "big")
        sub = ItemCursor(
            EncodedArgs(
                indicator=("$heap", 0),
                stream=self._heap[offset + 4 :],
                heap=self._heap,
                var_names=self._var_names,
            ),
            self._symbols,
        )
        return count, sub

    def var_name(self, offset: int) -> str:
        """The variable name behind a variable item's offset field."""
        if offset < len(self._var_names):
            return self._var_names[offset]
        return f"_V{offset}"

    # Backwards-compatible internal alias.
    _var_name = var_name
