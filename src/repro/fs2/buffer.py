"""The Double Buffer (paper section 3.2, Figure 4).

Two identical memory banks alternate between *input* (accepting the clause
currently streaming from disk) and *output* (holding the previous clause,
being matched by the TUE).  A toggle flip-flop swaps the roles whenever the
input bank fills; its two non-overlapping clock phases are modelled by the
explicit :meth:`toggle`.

The model exposes the overlap the hardware buys: while clause *n* is being
matched, clause *n+1* is being transferred, so search time per clause is
``max(transfer, match)`` rather than their sum (the single-buffer ablation
benchmark flips this off).
"""

from __future__ import annotations

__all__ = ["DoubleBuffer", "BufferBankBusy"]


class BufferBankBusy(RuntimeError):
    """Raised when a bank is loaded before its previous content was taken."""


class DoubleBuffer:
    """Two-bank clause buffer with explicit role toggling."""

    def __init__(self, bank_bytes: int = 512):
        self.bank_bytes = bank_bytes
        self._banks: list[bytes | None] = [None, None]
        self._input_bank = 0
        self.loads = 0
        self.toggles = 0

    @property
    def input_bank(self) -> int:
        return self._input_bank

    @property
    def output_bank(self) -> int:
        return 1 - self._input_bank

    def load(self, record: bytes) -> None:
        """Stream one clause record into the input bank."""
        if len(record) > self.bank_bytes:
            raise ValueError(
                f"record of {len(record)} bytes exceeds the "
                f"{self.bank_bytes}-byte bank"
            )
        if self._banks[self._input_bank] is not None:
            raise BufferBankBusy(
                "input bank still holds an unconsumed clause; toggle first"
            )
        self._banks[self._input_bank] = record
        self.loads += 1

    def toggle(self) -> None:
        """Swap bank roles (the flip-flop clock edge)."""
        self._input_bank = 1 - self._input_bank
        self.toggles += 1

    def output(self) -> bytes | None:
        """The clause available for matching (None before the pipe fills)."""
        return self._banks[self.output_bank]

    def consume_output(self) -> bytes:
        """Take the output clause, freeing the bank for the next transfer."""
        record = self._banks[self.output_bank]
        if record is None:
            raise BufferBankBusy("output bank is empty")
        self._banks[self.output_bank] = None
        return record

    def reset(self) -> None:
        self._banks = [None, None]
        self._input_bank = 0
