"""The Writable Control Store and Micro Program Controller (Figure 3).

The WCS is a bank of fast bipolar RAM holding up to 2048 microinstructions
of 64 bits.  In Microprogramming mode it appears as ordinary memory to the
host and is loaded with the assembled search program; during a search it is
read-only and addressed by the MPC.  The MPC's next address comes from its
internal counter (CONT), the branch field (JMP/CJP), or the Map ROM
(JMAP), whose address port is driven by the type fields on the db-data and
Q-data buses.  Two counters track the elements remaining while matching
lists and structures.
"""

from __future__ import annotations

from .microcode import (
    WCS_WORDS,
    Condition,
    DispatchClass,
    MicroInstruction,
    MicroProgram,
    SeqOp,
)

__all__ = ["WritableControlStore", "MicroProgramController", "ElementCounters"]


class WritableControlStore:
    """2048 x 64-bit microprogram RAM plus the Map ROM."""

    def __init__(self) -> None:
        self._ram = [0] * WCS_WORDS
        self._map_rom: dict[tuple[DispatchClass, DispatchClass], int] = {}
        self.loaded = False

    def load_program(self, program: MicroProgram) -> None:
        """Microprogramming mode: write the program into the fast RAM."""
        if len(program.words) > WCS_WORDS:
            raise ValueError("program exceeds the 2048-word control store")
        self._ram[: len(program.words)] = program.words
        for address in range(len(program.words), WCS_WORDS):
            self._ram[address] = 0
        self._map_rom = dict(program.map_rom)
        self.loaded = True

    def fetch(self, address: int) -> MicroInstruction:
        if not (0 <= address < WCS_WORDS):
            raise ValueError(f"microprogram address {address} out of range")
        return MicroInstruction.decode(self._ram[address])

    def map_address(self, db_class: DispatchClass, q_class: DispatchClass) -> int:
        """Map ROM lookup on the latched type pair."""
        try:
            return self._map_rom[(db_class, q_class)]
        except KeyError:
            raise ValueError(
                f"map ROM has no vector for ({db_class.name}, {q_class.name})"
            ) from None


class MicroProgramController:
    """The 2910-style sequencer: computes the next microprogram address."""

    def __init__(self) -> None:
        self.pc = 0

    def reset(self, address: int = 0) -> None:
        self.pc = address

    def next_address(
        self,
        instruction: MicroInstruction,
        conditions: dict[Condition, bool],
        map_target: int | None,
    ) -> int:
        if instruction.seq == SeqOp.CONT:
            return self.pc + 1
        if instruction.seq == SeqOp.JMP:
            return instruction.address
        if instruction.seq == SeqOp.CJP:
            value = conditions.get(instruction.condition, False)
            if instruction.condition == Condition.ALWAYS:
                value = True
            if value == instruction.polarity:
                return instruction.address
            return self.pc + 1
        if instruction.seq == SeqOp.JMAP:
            if map_target is None:
                raise ValueError("JMAP with no latched type pair")
            return map_target
        raise ValueError(f"unknown sequencer op {instruction.seq}")


class ElementCounters:
    """The WCS's two element counters (database and query sides)."""

    def __init__(self) -> None:
        self.db = 0
        self.query = 0
        self.active = False

    def load(self, db_count: int, query_count: int) -> None:
        self.db = db_count
        self.query = query_count
        self.active = True

    def decrement(self) -> None:
        self.db -= 1
        self.query -= 1

    def either_zero(self) -> bool:
        return self.db <= 0 or self.query <= 0

    def clear(self) -> None:
        self.db = 0
        self.query = 0
        self.active = False
