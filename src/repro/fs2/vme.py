"""The VMEbus memory-mapped window onto CLARE.

"CLARE is memory mapped into the /dev/vme24d16, SUN's user space, using
the mmap() system call" (paper section 2.2): the host drives the boards
with plain loads and stores into the 128 K window at 0xffff7e00.  This
module emulates that register file, byte by byte:

========================  =======================================
window offset             register
========================  =======================================
0x0000                    8-bit control register (r/w)
0x0100 + 8n .. +8n+7      WCS word n (64 bits, little endian, w)
0x4100 ...                Query Memory (w: raw PIF stream bytes)
0x8100 ...                Result Memory (r: captured slot bytes)
========================  =======================================

The offsets are this reproduction's allocation of the window (the paper
gives only the window itself).  Reads and writes outside the window
raise :class:`BusError`, as a VME bus error would.
"""

from __future__ import annotations

from .control import CLARE_BASE_ADDRESS, ControlRegister
from .microcode import WCS_WORDS
from .result import ResultMemory
from .wcs import WritableControlStore

__all__ = ["BusError", "VMEWindow", "CONTROL_OFFSET", "WCS_OFFSET", "RM_OFFSET"]

CONTROL_OFFSET = 0x0000
WCS_OFFSET = 0x0100
WCS_BYTES = WCS_WORDS * 8
QUERY_OFFSET = WCS_OFFSET + WCS_BYTES  # 0x4100
QUERY_BYTES = 16 * 1024
RM_OFFSET = QUERY_OFFSET + QUERY_BYTES  # 0x8100
RM_BYTES_WINDOW = 32 * 1024


class BusError(RuntimeError):
    """Access outside the CLARE window or to a write-only/read-only region."""


class VMEWindow:
    """Byte-addressed access to the CLARE register file."""

    def __init__(
        self,
        control: ControlRegister,
        wcs: WritableControlStore,
        result: ResultMemory,
    ):
        self.control = control
        self.wcs = wcs
        self.result = result
        self._query_bytes = bytearray(QUERY_BYTES)
        self._wcs_bytes = bytearray(WCS_BYTES)

    # -- address translation ------------------------------------------------
    #
    # The paper states the shared space is "128k bytes in total" yet quotes
    # the range ffff7e00-ffff7fff (512 bytes) — the two cannot both hold.
    # We take the 128 K at face value (a flat window from the quoted base),
    # which is what the register file needs; real hardware would bank the
    # 512-byte range.  Documented in EXPERIMENTS.md.

    WINDOW_BYTES = 128 * 1024

    @classmethod
    def _offset(cls, address: int) -> int:
        if not (
            CLARE_BASE_ADDRESS <= address < CLARE_BASE_ADDRESS + cls.WINDOW_BYTES
        ):
            raise BusError(f"address 0x{address:08x} outside the CLARE window")
        return address - CLARE_BASE_ADDRESS

    def write(self, address: int, value: int) -> None:
        """One byte store from the host."""
        if not (0 <= value <= 0xFF):
            raise BusError("byte stores only")
        offset = self._offset(address)
        if offset == CONTROL_OFFSET:
            self.control.write(value)
            return
        if WCS_OFFSET <= offset < WCS_OFFSET + WCS_BYTES:
            self._wcs_bytes[offset - WCS_OFFSET] = value
            self._flush_wcs_word((offset - WCS_OFFSET) // 8)
            return
        if QUERY_OFFSET <= offset < QUERY_OFFSET + QUERY_BYTES:
            self._query_bytes[offset - QUERY_OFFSET] = value
            return
        raise BusError(f"offset 0x{offset:05x} is not writable")

    def read(self, address: int) -> int:
        """One byte load by the host."""
        offset = self._offset(address)
        if offset == CONTROL_OFFSET:
            return self.control.value
        if RM_OFFSET <= offset < RM_OFFSET + RM_BYTES_WINDOW:
            return self.result._memory[offset - RM_OFFSET]
        if WCS_OFFSET <= offset < WCS_OFFSET + WCS_BYTES:
            return self._wcs_bytes[offset - WCS_OFFSET]
        raise BusError(f"offset 0x{offset:05x} is not readable")

    # -- block helpers (what mmap-based host code actually does) -------------

    def write_block(self, address: int, data: bytes) -> None:
        for position, byte in enumerate(data):
            self.write(address + position, byte)

    def read_block(self, address: int, length: int) -> bytes:
        return bytes(self.read(address + i) for i in range(length))

    def load_program_words(self, words: tuple[int, ...]) -> None:
        """Store a microprogram through the window (Microprogramming mode)."""
        for index, word in enumerate(words):
            self.write_block(
                CLARE_BASE_ADDRESS + WCS_OFFSET + index * 8,
                word.to_bytes(8, "little"),
            )

    def query_stream(self, length: int) -> bytes:
        """The query bytes the host has stored so far."""
        return bytes(self._query_bytes[:length])

    # -- internals --------------------------------------------------------------

    def _flush_wcs_word(self, index: int) -> None:
        word = int.from_bytes(
            self._wcs_bytes[index * 8 : index * 8 + 8], "little"
        )
        self.wcs._ram[index] = word
        self.wcs.loaded = True
