"""FS2 microinstructions and the microassembler.

The Writable Control Store holds up to 2048 instructions of 64 bits
(paper section 3.1).  Each instruction pairs a *sequencer* action (what
the AMD 2910-style Micro Program Controller does next) with an *execute*
action (which datapath operation fires this cycle).  The encoding:

====  ======  ==========================================
bits  field   meaning
====  ======  ==========================================
0-3   seq     CONT / JMP / CJP / JMAP
4-15  addr    branch target (11 bits used of 12)
16-20 cond    condition-code select for CJP
21    pol     condition polarity (1 = branch when false)
24-31 exec    datapath operation code
====  ======  ==========================================

"When a query is posed, it is translated into microprogram instructions.
These instructions are loaded into the FS2 while it is set to
Microprogramming mode."  :func:`assemble_search_program` produces that
program: the polling loop, the argument loop, the map-ROM dispatch
targets for every type-pair category, the element loop for complex
terms, and the hit/miss exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = [
    "SeqOp",
    "Condition",
    "ExecOp",
    "MicroInstruction",
    "MicroProgram",
    "DispatchClass",
    "assemble_search_program",
    "WCS_WORDS",
    "WORD_BITS",
]

WCS_WORDS = 2048
WORD_BITS = 64


class SeqOp(IntEnum):
    """Sequencer actions (2910-style subset)."""

    CONT = 0  # fall through to the next address
    JMP = 1  # unconditional branch
    CJP = 2  # branch when the selected condition (xor polarity) holds
    JMAP = 3  # dispatch through the map ROM on the latched type pair


class Condition(IntEnum):
    """Condition-code register bits the sequencer can test."""

    ALWAYS = 0
    BUFFER_READY = 1  # CC bit 0 in the paper: a clause is ready to examine
    HIT = 2  # comparator outcome of the last operation
    ARGS_DONE = 3  # both item streams exhausted
    ENTERED = 4  # the last MATCH opened a complex-term element loop
    IN_COMPLEX = 5  # the element loop is active
    COUNTERS_DONE = 6  # either element counter reached zero


class ExecOp(IntEnum):
    """Datapath operations the execute field can fire."""

    NOP = 0
    INIT_CLAUSE = 1  # reset DB Memory, cursors, counters, hit latch
    LOAD_PAIR = 2  # latch the next db/query items (feeds the map ROM)
    MATCH = 3  # concrete/concrete comparison (may enter a complex pair)
    ANON_SKIP = 4  # anonymous variable: skip the other side
    DBVAR_FIRST = 5  # case 5a (+ reciprocal store for var-var pairs)
    DBVAR_SUB = 6  # cases 5b/5c (fetch, possibly cross-bound)
    QVAR_FIRST = 7  # case 6a
    QVAR_SUB = 8  # cases 6b/6c
    FINISH_COMPLEX = 9  # tails / leftover skipping at loop end
    SIGNAL_HIT = 10  # clause is a satisfier: capture in Result Memory
    SIGNAL_MISS = 11  # clause rejected: discard


class DispatchClass(IntEnum):
    """Map-ROM input classes derived from an item's type tag."""

    CONCRETE = 0
    ANONYMOUS = 1
    FIRST_DB_VAR = 2
    SUB_DB_VAR = 3
    FIRST_QUERY_VAR = 4
    SUB_QUERY_VAR = 5


@dataclass(frozen=True)
class MicroInstruction:
    """One decoded 64-bit control word."""

    seq: SeqOp = SeqOp.CONT
    address: int = 0
    condition: Condition = Condition.ALWAYS
    polarity: bool = True  # branch when condition == polarity
    exec_op: ExecOp = ExecOp.NOP

    def encode(self) -> int:
        word = int(self.seq) & 0xF
        word |= (self.address & 0xFFF) << 4
        word |= (int(self.condition) & 0x1F) << 16
        word |= (0 if self.polarity else 1) << 21
        word |= (int(self.exec_op) & 0xFF) << 24
        return word

    @classmethod
    def decode(cls, word: int) -> "MicroInstruction":
        return cls(
            seq=SeqOp(word & 0xF),
            address=(word >> 4) & 0xFFF,
            condition=Condition((word >> 16) & 0x1F),
            polarity=not ((word >> 21) & 1),
            exec_op=ExecOp((word >> 24) & 0xFF),
        )


@dataclass(frozen=True)
class MicroProgram:
    """An assembled program: words plus the map-ROM dispatch table."""

    words: tuple[int, ...]
    labels: dict[str, int]
    map_rom: dict[tuple[DispatchClass, DispatchClass], int]

    def __len__(self) -> int:
        return len(self.words)

    def instruction(self, address: int) -> MicroInstruction:
        return MicroInstruction.decode(self.words[address])


def disassemble(program: MicroProgram) -> list[str]:
    """Human-readable listing of an assembled microprogram."""
    address_labels = {address: name for name, address in program.labels.items()}
    lines = []
    for address, word in enumerate(program.words):
        instruction = MicroInstruction.decode(word)
        label = address_labels.get(address, "")
        parts = []
        if instruction.exec_op != ExecOp.NOP:
            parts.append(f"EXEC {instruction.exec_op.name}")
        if instruction.seq == SeqOp.CONT:
            parts.append("CONT")
        elif instruction.seq == SeqOp.JMP:
            target = address_labels.get(instruction.address, str(instruction.address))
            parts.append(f"JMP {target}")
        elif instruction.seq == SeqOp.CJP:
            target = address_labels.get(instruction.address, str(instruction.address))
            polarity = "" if instruction.polarity else "!"
            parts.append(f"CJP {polarity}{instruction.condition.name} -> {target}")
        elif instruction.seq == SeqOp.JMAP:
            parts.append("JMAP")
        lines.append(f"{address:4d}  {label:<10} {'; '.join(parts)}")
    return lines


class _Assembler:
    """Two-pass label-resolving assembler."""

    def __init__(self) -> None:
        self._lines: list[tuple[MicroInstruction, str | None]] = []
        self.labels: dict[str, int] = {}

    def label(self, name: str) -> None:
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self._lines)

    def emit(
        self,
        seq: SeqOp = SeqOp.CONT,
        target: str | None = None,
        condition: Condition = Condition.ALWAYS,
        polarity: bool = True,
        exec_op: ExecOp = ExecOp.NOP,
    ) -> None:
        instruction = MicroInstruction(
            seq=seq, condition=condition, polarity=polarity, exec_op=exec_op
        )
        self._lines.append((instruction, target))

    def assemble(
        self, map_targets: dict[tuple[DispatchClass, DispatchClass], str]
    ) -> MicroProgram:
        words = []
        for instruction, target in self._lines:
            if target is not None:
                try:
                    address = self.labels[target]
                except KeyError:
                    raise ValueError(f"undefined label {target!r}") from None
                instruction = MicroInstruction(
                    seq=instruction.seq,
                    address=address,
                    condition=instruction.condition,
                    polarity=instruction.polarity,
                    exec_op=instruction.exec_op,
                )
            words.append(instruction.encode())
        if len(words) > WCS_WORDS:
            raise ValueError(f"program of {len(words)} words exceeds the WCS")
        map_rom = {pair: self.labels[label] for pair, label in map_targets.items()}
        return MicroProgram(words=tuple(words), labels=dict(self.labels), map_rom=map_rom)


def assemble_search_program() -> MicroProgram:
    """The standard partial-test-unification search microprogram."""
    asm = _Assembler()

    # Polling routine: "the MPC is engaged in a polling routine [that]
    # repeatedly monitors the zeroth bit of the conditional code".
    asm.label("POLL")
    asm.emit(SeqOp.CJP, "POLL", Condition.BUFFER_READY, polarity=False)
    asm.emit(exec_op=ExecOp.INIT_CLAUSE)

    # Argument loop.
    asm.label("ARG")
    asm.emit(SeqOp.CJP, "HIT_EXIT", Condition.ARGS_DONE)
    asm.emit(exec_op=ExecOp.LOAD_PAIR)
    asm.emit(SeqOp.JMAP)

    # Dispatch targets (map ROM).
    asm.label("M_CONC")
    asm.emit(exec_op=ExecOp.MATCH)
    asm.emit(SeqOp.CJP, "FAIL_EXIT", Condition.HIT, polarity=False)
    asm.emit(SeqOp.CJP, "ELEM", Condition.ENTERED)
    asm.emit(SeqOp.JMP, "NEXT")

    asm.label("M_ANON")
    asm.emit(exec_op=ExecOp.ANON_SKIP)
    asm.emit(SeqOp.JMP, "NEXT")

    asm.label("M_DBV_FIRST")
    asm.emit(exec_op=ExecOp.DBVAR_FIRST)
    asm.emit(SeqOp.JMP, "NEXT")

    asm.label("M_DBV_SUB")
    asm.emit(exec_op=ExecOp.DBVAR_SUB)
    asm.emit(SeqOp.CJP, "FAIL_EXIT", Condition.HIT, polarity=False)
    asm.emit(SeqOp.JMP, "NEXT")

    asm.label("M_QV_FIRST")
    asm.emit(exec_op=ExecOp.QVAR_FIRST)
    asm.emit(SeqOp.JMP, "NEXT")

    asm.label("M_QV_SUB")
    asm.emit(exec_op=ExecOp.QVAR_SUB)
    asm.emit(SeqOp.CJP, "FAIL_EXIT", Condition.HIT, polarity=False)
    asm.emit(SeqOp.JMP, "NEXT")

    # Return to the loop we came from.
    asm.label("NEXT")
    asm.emit(SeqOp.CJP, "ELEM", Condition.IN_COMPLEX)
    asm.emit(SeqOp.JMP, "ARG")

    # Element loop for in-line complex terms (single level: level 3).
    asm.label("ELEM")
    asm.emit(SeqOp.CJP, "ELEM_DONE", Condition.COUNTERS_DONE)
    asm.emit(exec_op=ExecOp.LOAD_PAIR)
    asm.emit(SeqOp.JMAP)

    asm.label("ELEM_DONE")
    asm.emit(exec_op=ExecOp.FINISH_COMPLEX)
    asm.emit(SeqOp.CJP, "FAIL_EXIT", Condition.HIT, polarity=False)
    asm.emit(SeqOp.JMP, "ARG")

    # Exits.
    asm.label("FAIL_EXIT")
    asm.emit(exec_op=ExecOp.SIGNAL_MISS)
    asm.emit(SeqOp.JMP, "POLL")

    asm.label("HIT_EXIT")
    asm.emit(exec_op=ExecOp.SIGNAL_HIT)
    asm.emit(SeqOp.JMP, "POLL")

    # Map ROM: priority order is Figure 1's -- anonymous skips first, then
    # database-variable cases, then query-variable cases, then concrete.
    map_targets: dict[tuple[DispatchClass, DispatchClass], str] = {}
    for db_class in DispatchClass:
        for q_class in DispatchClass:
            map_targets[(db_class, q_class)] = _routine_for(db_class, q_class)
    return asm.assemble(map_targets)


def _routine_for(db_class: DispatchClass, q_class: DispatchClass) -> str:
    if DispatchClass.ANONYMOUS in (db_class, q_class):
        return "M_ANON"
    if db_class == DispatchClass.FIRST_DB_VAR:
        return "M_DBV_FIRST"
    if db_class == DispatchClass.SUB_DB_VAR:
        return "M_DBV_SUB"
    if q_class == DispatchClass.FIRST_QUERY_VAR:
        return "M_QV_FIRST"
    if q_class == DispatchClass.SUB_QUERY_VAR:
        return "M_QV_SUB"
    return "M_CONC"
