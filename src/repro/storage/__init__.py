"""Clause storage: modules, predicate stores, the knowledge base."""

from .kb import KnowledgeBase, PredicateStore, UnknownPredicateError
from .module import DEFAULT_LARGE_THRESHOLD_BYTES, Module, Residency
from .persist import PersistenceError, kb_fingerprint, load_kb, save_kb
from .wal import (
    DurabilityOptions,
    DurableStore,
    RecoveredState,
    WalError,
    WalRecord,
    WriteAheadLog,
    wal_dump,
)

__all__ = [
    "DEFAULT_LARGE_THRESHOLD_BYTES",
    "DurabilityOptions",
    "DurableStore",
    "KnowledgeBase",
    "Module",
    "PersistenceError",
    "PredicateStore",
    "RecoveredState",
    "Residency",
    "UnknownPredicateError",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "kb_fingerprint",
    "load_kb",
    "save_kb",
    "wal_dump",
]
