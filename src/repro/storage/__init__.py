"""Clause storage: modules, predicate stores, the knowledge base."""

from .kb import KnowledgeBase, PredicateStore, UnknownPredicateError
from .module import DEFAULT_LARGE_THRESHOLD_BYTES, Module, Residency
from .persist import PersistenceError, kb_fingerprint, load_kb, save_kb

__all__ = [
    "DEFAULT_LARGE_THRESHOLD_BYTES",
    "KnowledgeBase",
    "Module",
    "PersistenceError",
    "PredicateStore",
    "Residency",
    "UnknownPredicateError",
    "kb_fingerprint",
    "load_kb",
    "save_kb",
]
