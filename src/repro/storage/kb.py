"""The integrated knowledge base.

One Prolog system manages everything: facts and rules of a predicate live
together, in the user-specified order, in one compiled clause file per
``functor/arity`` (mixed relations are a design goal of the PDBM project,
paper section 1).  Each clause file gets an SCW+MB secondary index; both
can be placed on the simulated disk for predicates whose module is
disk resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..disk import DiskSim
from ..obs import Instrumentation
from ..pif import ClauseFile, CompiledClause, SymbolTable
from ..scw import CodewordScheme, DEFAULT_SCHEME, SecondaryIndexFile
from ..terms import (
    Clause,
    Term,
    clause_from_term,
    functor_indicator,
    read_program,
)
from .module import Module, Residency

__all__ = ["KnowledgeBase", "PredicateStore", "UnknownPredicateError"]


class UnknownPredicateError(KeyError):
    """Query against a predicate with no clauses."""


@dataclass
class PredicateStore:
    """One predicate: its clause file, index, and module membership."""

    indicator: tuple[str, int]
    clause_file: ClauseFile
    module_name: str
    scheme: CodewordScheme
    _index: SecondaryIndexFile | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.clause_file)

    @property
    def index(self) -> SecondaryIndexFile:
        """The SCW+MB secondary index (rebuilt lazily after updates)."""
        if self._index is None:
            self._index = SecondaryIndexFile.build(self.clause_file, self.scheme)
        return self._index

    def invalidate_index(self) -> None:
        self._index = None

    def clauses(self) -> list[Clause]:
        """All clauses, decoded, in user order."""
        return [
            self.clause_file.decode_clause(i) for i in range(len(self.clause_file))
        ]

    def compiled_bytes(self) -> int:
        return self.clause_file.size_bytes()

    def extent_name(self) -> str:
        name, arity = self.indicator
        return f"clauses:{name}/{arity}"

    def index_extent_name(self) -> str:
        name, arity = self.indicator
        return f"index:{name}/{arity}"


class KnowledgeBase:
    """The single Prolog view over all modules, predicates and clauses."""

    def __init__(
        self,
        scheme: CodewordScheme = DEFAULT_SCHEME,
        disk: DiskSim | None = None,
        obs: Instrumentation | None = None,
    ):
        self.symbols = SymbolTable()
        self.scheme = scheme
        self.disk = disk if disk is not None else DiskSim(obs=obs)
        self._predicates: dict[tuple[str, int], PredicateStore] = {}
        self._modules: dict[str, Module] = {"user": Module("user")}
        #: bumped on every clause addition/removal; caches key on it.
        self.version = 0
        #: per-predicate (generation, clause count) as of the last disk
        #: write, so retrieval paths can tell a fresh extent from one
        #: that predates an assert/retract.  Appends keep the clause
        #: file's generation but grow the count; every other mutation
        #: replaces the file under a new generation — either way the key
        #: changes and the extent must be rewritten before its bytes are
        #: trusted again.
        self._disk_synced: dict[tuple[str, int], tuple[int, int]] = {}

    # -- modules --------------------------------------------------------------

    def module(self, name: str) -> Module:
        if name not in self._modules:
            self._modules[name] = Module(name)
        return self._modules[name]

    def modules(self) -> list[Module]:
        return list(self._modules.values())

    def residency(self, indicator: tuple[str, int]) -> str:
        """Where this predicate's clauses live (memory or disk)."""
        store = self._store(indicator)
        return self.module(store.module_name).residency(store.compiled_bytes())

    # -- loading clauses --------------------------------------------------------

    def consult_text(self, text: str, module: str = "user") -> int:
        """Load ``.``-terminated clauses from source text."""
        count = 0
        for term in read_program(text):
            self.add_clause(clause_from_term(term), module=module)
            count += 1
        return count

    def consult_clauses(self, clauses: Iterable[Clause], module: str = "user") -> int:
        count = 0
        for clause in clauses:
            self.add_clause(clause, module=module)
            count += 1
        return count

    def add_clause(self, clause: Clause, module: str = "user") -> CompiledClause:
        """Append a clause (``assertz`` order: end of its procedure)."""
        store = self._store_or_create(clause.indicator, module)
        compiled = store.clause_file.append(clause)
        # Appends update a live index incrementally; anything else (see
        # asserta/retract) rebuilds lazily.
        if store._index is not None:
            store._index.add(clause.head, store.clause_file.last_address())
        self.version += 1
        return compiled

    def assertz(self, clause_or_term: Clause | Term, module: str = "user") -> None:
        self.add_clause(_as_clause(clause_or_term), module=module)

    def asserta(self, clause_or_term: Clause | Term, module: str = "user") -> None:
        """Prepend a clause, preserving the ordering semantics of Prolog."""
        clause = _as_clause(clause_or_term)
        store = self._store_or_create(clause.indicator, module)
        existing = store.clauses()
        fresh = ClauseFile(clause.indicator, self.symbols)
        fresh.append(clause)
        for old in existing:
            fresh.append(old)
        store.clause_file = fresh
        store.invalidate_index()
        self.version += 1

    def retract(self, clause_or_term: Clause | Term) -> bool:
        """Remove the first clause *unifying* with the given template.

        Standard Prolog semantics: the template's head and body unify
        against each stored clause (standardised apart); the first match
        is removed.
        """
        return self.retract_matching(clause_or_term) is not None

    def retract_matching(self, clause_or_term: Clause | Term) -> Clause | None:
        """Like :meth:`retract` but returns the removed clause."""
        from ..terms import rename_apart
        from ..unify import unify

        clause = _as_clause(clause_or_term)
        store = self._predicates.get(clause.indicator)
        if store is None:
            return None
        template = clause.to_term()
        existing = store.clauses()
        for position, candidate in enumerate(existing):
            renamed = rename_apart(candidate.to_term())
            if unify(template, renamed) is not None:
                fresh = ClauseFile(clause.indicator, self.symbols)
                for keep in existing[:position] + existing[position + 1 :]:
                    fresh.append(keep)
                store.clause_file = fresh
                store.invalidate_index()
                self.version += 1
                return candidate
        return None

    def remove_exact(self, clause: Clause) -> bool:
        """Remove the first *structurally identical* clause, if present.

        Replication replay needs this instead of :meth:`retract`: a
        retract template unifies, so replaying it on a replica could
        remove a *different* (more general) clause than the primary
        removed.  Shipping the clause the primary actually removed and
        matching it by structural equality keeps replicas byte-identical.
        """
        store = self._predicates.get(clause.indicator)
        if store is None:
            return False
        existing = store.clauses()
        for position, candidate in enumerate(existing):
            if candidate == clause:
                fresh = ClauseFile(clause.indicator, self.symbols)
                for keep in existing[:position] + existing[position + 1 :]:
                    fresh.append(keep)
                store.clause_file = fresh
                store.invalidate_index()
                self.version += 1
                return True
        return False

    # -- access -----------------------------------------------------------------

    def predicates(self) -> list[tuple[str, int]]:
        return list(self._predicates)

    def has_predicate(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._predicates

    def store(self, indicator: tuple[str, int]) -> PredicateStore:
        return self._store(indicator)

    def store_for_goal(self, goal: Term) -> PredicateStore:
        return self._store(functor_indicator(goal))

    def clauses(self, indicator: tuple[str, int]) -> list[Clause]:
        return self._store(indicator).clauses()

    def clause_count(self) -> int:
        return sum(len(s) for s in self._predicates.values())

    def size_bytes(self) -> int:
        """Total compiled clause file volume."""
        return sum(s.compiled_bytes() for s in self._predicates.values())

    def __iter__(self) -> Iterator[PredicateStore]:
        return iter(self._predicates.values())

    # -- disk placement ---------------------------------------------------------

    def sync_to_disk(self) -> list[str]:
        """Write disk-resident predicates' files and indexes to the disk.

        Returns the extent names written.  Memory-resident predicates are
        not written — they are consulted directly.
        """
        written = []
        for store in self._predicates.values():
            if self.residency(store.indicator) != Residency.DISK:
                continue
            # Clause files start on track boundaries so per-track FS2
            # search calls line up with the physical layout.
            self.disk.write_extent(
                store.extent_name(), store.clause_file.to_bytes(), align_track=True
            )
            self.disk.write_extent(store.index_extent_name(), store.index.to_bytes())
            self.mark_disk_synced(store.indicator)
            written.extend([store.extent_name(), store.index_extent_name()])
        return written

    def disk_sync_key(self, indicator: tuple[str, int]) -> tuple[int, int]:
        """The freshness key the on-disk extents of a predicate must match."""
        store = self._store(indicator)
        return (store.clause_file.generation, len(store.clause_file))

    def disk_synced_key(self, indicator: tuple[str, int]) -> tuple[int, int] | None:
        """The freshness key recorded at the last extent write, if any."""
        return self._disk_synced.get(indicator)

    def mark_disk_synced(self, indicator: tuple[str, int]) -> None:
        """Record that the predicate's extents match its current clauses."""
        self._disk_synced[indicator] = self.disk_sync_key(indicator)

    # -- internals ----------------------------------------------------------------

    def _store(self, indicator: tuple[str, int]) -> PredicateStore:
        try:
            return self._predicates[indicator]
        except KeyError:
            name, arity = indicator
            raise UnknownPredicateError(f"unknown predicate {name}/{arity}") from None

    def _store_or_create(
        self, indicator: tuple[str, int], module: str
    ) -> PredicateStore:
        store = self._predicates.get(indicator)
        if store is None:
            store = PredicateStore(
                indicator=indicator,
                clause_file=ClauseFile(indicator, self.symbols),
                module_name=module,
                scheme=self.scheme,
            )
            self._predicates[indicator] = store
            self.module(module).add_procedure(indicator)
        return store


def _as_clause(clause_or_term: Clause | Term) -> Clause:
    if isinstance(clause_or_term, Clause):
        return clause_or_term
    return clause_from_term(clause_or_term)
