"""`repro.storage.wal` — write-ahead log + crash-consistent clause store.

The engine's mutations (assertz/asserta/retract) are in-memory clause
file rewrites; ``save_kb`` snapshots are whole-KB and caller-driven.
This module closes the durability gap between the two with the classic
log-structured recipe:

* **WAL**: every acked mutation is first appended to an append-only log
  segment (``wal-<baseseq>.log``) as a self-contained, CRC-framed
  record.  Appends are *staged* in memory while the engine's shard lock
  is held (so log order is exactly seq order) and made durable by
  **fsync-batched group commit**: the first waiter becomes the flusher
  for everything staged so far, later waiters ride the same fsync.
* **Snapshots + compaction**: a background (or on-demand) compaction
  folds the log into a fresh ``save_kb`` snapshot per shard under the
  engine's shard locks, rotates the WAL at the pinned seq, fsyncs the
  snapshot tree, and flips the ``CURRENT`` pointer atomically
  (write-tmp, fsync, rename, fsync-dir).  Old segments and snapshots
  are garbage-collected only after the flip.
* **Recovery**: load the ``CURRENT`` snapshot, then replay every WAL
  record with ``seq > snapshot_seq`` in order.  A torn/truncated tail
  (crash mid-append) is detected by the length/CRC framing, discarded,
  and physically truncated before new appends continue.

Record framing (little-endian)::

    u32 body_len | u32 crc32(body) | body
    body = u64 seq | u8 op | u8 write_id? | u16 module_len | module
         | u16 write_id_len | write_id | u32 sym_len | symbol table
         | u16 name_len | functor name | u16 arity | u16 rec_len
         | compiled clause record

Each record carries its own (tiny) symbol table, so a segment can be
replayed — or shipped to a replica — without any shared state.  The
``crash point`` hooks (:func:`install_crash_point`) let the test
harness SIGKILL the process at the exact boundaries that matter:
before/after fsync, after WAL rotation, after the snapshot tree is
synced, and after the ``CURRENT`` flip.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import shutil
import signal
import struct
import threading
import zlib
from dataclasses import dataclass, field

from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..pif import CompiledClause, SymbolTable, compile_clause
from ..pif.clausefile import decode_compiled
from ..terms import Clause, functor_indicator

__all__ = [
    "DurabilityOptions",
    "DurableStore",
    "RecoveredState",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "clear_crash_points",
    "install_crash_point",
    "wal_dump",
]

_MAGIC = b"RWAL"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBQ")  # magic, version, base_seq
_FRAME = struct.Struct("<II")  # body length, crc32(body)
_CURRENT = "CURRENT"
_STORE_META = "store.json"
_SNAPSHOT_META = "meta.json"
_WRITE_IDS = "write_ids.json"

_OPS = ("assertz", "asserta", "retract")
_OP_CODE = {op: code for code, op in enumerate(_OPS)}


class WalError(RuntimeError):
    """Corrupt or inconsistent write-ahead-log state (beyond a torn tail)."""


# -- crash-point injection ----------------------------------------------------
#
# The crash-recovery suite runs the engine in a subprocess with one of
# these points armed and SIGKILLs it at the exact boundary — no cleanup
# handlers, no buffered flushes, the closest a test gets to pulling the
# plug.  Production code never arms them; the dict stays empty.

_crash_points: dict[str, int] = {}


def install_crash_point(point: str, hits: int = 1) -> None:
    """SIGKILL this process the ``hits``-th time ``point`` is reached."""
    _crash_points[point] = hits


def clear_crash_points() -> None:
    _crash_points.clear()


def _maybe_crash(point: str) -> None:
    remaining = _crash_points.get(point)
    if remaining is None:
        return
    if remaining <= 1:
        os.kill(os.getpid(), signal.SIGKILL)
    _crash_points[point] = remaining - 1


# -- record codec -------------------------------------------------------------


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: the storage-level twin of ``MutationRecord``."""

    seq: int
    op: str
    clause: Clause
    module: str = "user"
    write_id: str | None = None


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: ``u32 len | u32 crc | body`` (self-contained)."""
    if record.op not in _OP_CODE:
        raise WalError(f"op {record.op!r} is not WAL-encodable")
    symbols = SymbolTable()
    compiled = compile_clause(record.clause, symbols)
    sym_blob = symbols.to_bytes()
    rec_blob = compiled.to_bytes()
    name, arity = compiled.indicator
    name_blob = name.encode("utf-8")
    module_blob = record.module.encode("utf-8")
    id_blob = (record.write_id or "").encode("utf-8")
    body = bytearray()
    body += struct.pack("<QBB", record.seq, _OP_CODE[record.op],
                        1 if record.write_id is not None else 0)
    body += struct.pack("<H", len(module_blob)) + module_blob
    body += struct.pack("<H", len(id_blob)) + id_blob
    body += struct.pack("<I", len(sym_blob)) + sym_blob
    body += struct.pack("<H", len(name_blob)) + name_blob
    body += struct.pack("<HH", arity, len(rec_blob)) + rec_blob
    return _FRAME.pack(len(body), zlib.crc32(bytes(body))) + bytes(body)


def _decode_body(body: bytes) -> WalRecord:
    seq, op_code, has_id = struct.unpack_from("<QBB", body, 0)
    offset = 10
    if op_code >= len(_OPS):
        raise WalError(f"unknown WAL op code {op_code}")

    def take_text(width: str) -> str:
        nonlocal offset
        size = struct.Struct(width)
        (length,) = size.unpack_from(body, offset)
        offset += size.size
        text = body[offset:offset + length].decode("utf-8")
        offset += length
        return text

    module = take_text("<H")
    write_id = take_text("<H")
    (sym_len,) = struct.unpack_from("<I", body, offset)
    offset += 4
    symbols = SymbolTable.from_bytes(body[offset:offset + sym_len])
    offset += sym_len
    name = take_text("<H")
    arity, rec_len = struct.unpack_from("<HH", body, offset)
    offset += 4
    compiled, _ = CompiledClause.from_bytes(
        body[offset:offset + rec_len], (name, arity)
    )
    clause = decode_compiled(compiled, symbols)
    return WalRecord(
        seq=seq,
        op=_OPS[op_code],
        clause=clause,
        module=module,
        write_id=write_id if has_id else None,
    )


def _segment_name(base_seq: int) -> str:
    return f"wal-{base_seq:020d}.log"


def _segment_base(path: pathlib.Path) -> int:
    stem = path.name[len("wal-"):-len(".log")]
    try:
        return int(stem)
    except ValueError as exc:
        raise WalError(f"malformed WAL segment name {path.name!r}") from exc


def _list_segments(directory: pathlib.Path) -> list[pathlib.Path]:
    return sorted(directory.glob("wal-*.log"), key=_segment_base)


@dataclass
class _SegmentScan:
    base_seq: int
    records: list[WalRecord]
    valid_bytes: int  # offset of the first torn/invalid byte (= durable end)
    torn: bool  # a torn tail was found (short frame or CRC mismatch)


def _scan_segment(path: pathlib.Path) -> _SegmentScan:
    """Parse one segment, stopping (not raising) at a torn tail."""
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        # A crash can tear even the header of a freshly rotated segment.
        return _SegmentScan(_segment_base(path), [], 0, True)
    magic, version, base_seq = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC or version != _FORMAT_VERSION:
        raise WalError(f"{path.name}: bad WAL header")
    if base_seq != _segment_base(path):
        raise WalError(f"{path.name}: header base_seq {base_seq} mismatch")
    records: list[WalRecord] = []
    offset = _HEADER.size
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return _SegmentScan(base_seq, records, offset, True)
        body_len, crc = _FRAME.unpack_from(data, offset)
        body = data[offset + _FRAME.size:offset + _FRAME.size + body_len]
        if len(body) < body_len or zlib.crc32(body) != crc:
            return _SegmentScan(base_seq, records, offset, True)
        records.append(_decode_body(body))
        offset += _FRAME.size + body_len
    return _SegmentScan(base_seq, records, offset, False)


def _fsync_path(path: pathlib.Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(root: pathlib.Path) -> None:
    """fsync every file then every directory under ``root`` (and root)."""
    for base, dirs, files in os.walk(root):
        for name in files:
            _fsync_path(pathlib.Path(base) / name)
    for base, dirs, files in os.walk(root, topdown=False):
        _fsync_path(pathlib.Path(base))


def _atomic_replace(tmp: pathlib.Path, final: pathlib.Path) -> None:
    _fsync_path(tmp)
    os.replace(tmp, final)
    _fsync_path(final.parent)


# -- the write-ahead log ------------------------------------------------------


class WriteAheadLog:
    """Segment writer with group commit; one per :class:`DurableStore`.

    ``stage`` is called in seq order (the engine stages under the lock
    that assigns seqs); ``wait_durable`` is called after the shard lock
    is released.  The first waiter that finds no flush in flight swaps
    the staging buffer out and commits it — write, flush, fsync per the
    policy — while later waiters block on the condition variable and
    are released in one batch when the commit lands.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        flush: str = "fsync",
        obs: Instrumentation | None = None,
    ):
        if flush not in ("fsync", "os", "none"):
            raise ValueError("flush policy must be 'fsync', 'os' or 'none'")
        self.directory = pathlib.Path(directory)
        self.flush_policy = flush
        self.obs = obs if obs is not None else _default_obs()
        self._cond = threading.Condition()
        self._staged: list[bytes] = []
        self._staged_seq = 0  # seq of the newest staged record
        self._durable_seq = 0  # everything ≤ this has been committed
        self._flushing = False
        self._file: io.BufferedWriter | None = None
        self._base_seq = 0
        #: appended volume since the last rotation (compaction trigger).
        self.bytes_since_rotate = 0
        self.records_since_rotate = 0

    # -- opening -------------------------------------------------------------

    def open_at(self, durable_seq: int, valid_bytes: int | None) -> None:
        """Attach to the newest segment (truncating its torn tail) or
        create the first one; appends continue at ``durable_seq + 1``."""
        segments = _list_segments(self.directory)
        if not segments:
            self._create_segment(durable_seq)
        else:
            path = segments[-1]
            if valid_bytes is not None:
                with open(path, "r+b") as handle:
                    handle.truncate(max(valid_bytes, 0))
            if valid_bytes is not None and valid_bytes < _HEADER.size:
                # The segment lost even its header to the tear; rewrite.
                path.unlink()
                self._create_segment(_segment_base(path))
            else:
                self._file = open(path, "ab")
                self._base_seq = _segment_base(path)
        with self._cond:
            self._staged_seq = durable_seq
            self._durable_seq = durable_seq

    def _create_segment(self, base_seq: int) -> None:
        path = self.directory / _segment_name(base_seq)
        self._file = open(path, "wb")
        self._file.write(_HEADER.pack(_MAGIC, _FORMAT_VERSION, base_seq))
        self._file.flush()
        os.fsync(self._file.fileno())
        _fsync_path(self.directory)
        self._base_seq = base_seq
        self.bytes_since_rotate = 0
        self.records_since_rotate = 0

    # -- appending -----------------------------------------------------------

    def stage(self, record: WalRecord) -> None:
        """Queue one encoded record (caller serialises seq order)."""
        frame = encode_record(record)
        with self._cond:
            if record.seq <= self._staged_seq:
                raise WalError(
                    f"stage out of order: {record.seq} after "
                    f"{self._staged_seq}"
                )
            self._staged.append(frame)
            self._staged_seq = record.seq
            self.bytes_since_rotate += len(frame)
            self.records_since_rotate += 1
        _maybe_crash("wal.staged")
        self.obs.counter("wal.appends").inc()
        self.obs.counter("wal.append_bytes").inc(len(frame))

    def wait_durable(self, seq: int) -> None:
        """Block until record ``seq`` is committed per the flush policy."""
        while True:
            with self._cond:
                if self._durable_seq >= seq:
                    return
                if self._flushing:
                    self._cond.wait()
                    continue
                batch = self._staged
                batch_seq = self._staged_seq
                self._staged = []
                self._flushing = True
            try:
                self._commit(batch)
            finally:
                with self._cond:
                    self._durable_seq = max(self._durable_seq, batch_seq)
                    self._flushing = False
                    self._cond.notify_all()

    def _commit(self, batch: list[bytes]) -> None:
        assert self._file is not None, "WAL not opened"
        if batch:
            self._file.write(b"".join(batch))
        if self.flush_policy != "none":
            self._file.flush()
        _maybe_crash("wal.pre_fsync")
        if self.flush_policy == "fsync":
            os.fsync(self._file.fileno())
            self.obs.counter("wal.fsyncs").inc()
        _maybe_crash("wal.post_fsync")
        self.obs.histogram(
            "wal.batch_records", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128)
        ).observe(len(batch))

    # -- rotation and reads ---------------------------------------------------

    def rotate(self, base_seq: int) -> None:
        """Seal the active segment and start ``wal-<base_seq>.log``.

        Called with the engine's shard locks held (no concurrent
        stages).  Whatever is still staged is flushed *and fsynced* into
        the old segment regardless of policy — rotation is the boundary
        recovery relies on to confine torn tails to the newest segment.
        """
        with self._cond:
            while self._flushing:
                self._cond.wait()
            batch = self._staged
            batch_seq = self._staged_seq
            self._staged = []
            self._flushing = True
        try:
            assert self._file is not None
            if batch:
                self._file.write(b"".join(batch))
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._create_segment(base_seq)
        finally:
            with self._cond:
                self._durable_seq = max(self._durable_seq, batch_seq)
                self._flushing = False
                self._cond.notify_all()

    def records_since(self, seq: int) -> list[WalRecord]:
        """Every durable-or-staged record with ``seq`` greater, from disk.

        Staged bytes are pushed into the file (no fsync — this is a
        read-back path, durability still rides the caller's policy)
        so the scan sees a contiguous prefix of everything staged.
        """
        with self._cond:
            while self._flushing:
                self._cond.wait()
            batch = self._staged
            self._staged = []
            if batch:
                assert self._file is not None
                self._file.write(b"".join(batch))
            assert self._file is not None
            self._file.flush()
        out: list[WalRecord] = []
        for path in _list_segments(self.directory):
            scan = _scan_segment(path)
            if scan.torn:
                raise WalError(f"{path.name}: torn segment in a live store")
            out.extend(r for r in scan.records if r.seq > seq)
        return out

    def purge_below(self, base_seq: int) -> int:
        """Delete sealed segments fully covered by the ``base_seq`` snapshot."""
        removed = 0
        for path in _list_segments(self.directory):
            if _segment_base(path) < base_seq:
                path.unlink()
                removed += 1
        return removed

    def close(self) -> None:
        if self._file is None:
            return
        self.wait_durable(self._staged_seq)
        self._file.close()
        self._file = None


# -- the durable store --------------------------------------------------------


@dataclass
class DurabilityOptions:
    """Knobs for one durable engine (see ``serve --durability``)."""

    directory: str | pathlib.Path
    #: "fsync" (group-committed fsync per ack), "os" (flush to the OS,
    #: survive process death but not power loss), "none" (buffered).
    flush: str = "fsync"
    #: compaction triggers: WAL volume since the last snapshot.
    compact_min_bytes: int = 4 * 1024 * 1024
    compact_min_records: int = 4096
    #: run the background compaction thread (off for harness-driven tests).
    auto_compact: bool = True
    #: how often the background thread re-checks the compaction triggers.
    compact_interval_s: float = 0.25

    @classmethod
    def coerce(
        cls, value: "DurabilityOptions | str | pathlib.Path"
    ) -> "DurabilityOptions":
        if isinstance(value, cls):
            return value
        return cls(directory=value)


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.open` found on disk."""

    snapshot_seq: int = 0
    snapshot_dir: pathlib.Path | None = None
    shard_dirs: list[pathlib.Path] = field(default_factory=list)
    write_ids: list[str] = field(default_factory=list)
    records: list[WalRecord] = field(default_factory=list)
    #: torn-tail records discarded (and truncated) during the scan.
    discarded_bytes: int = 0

    @property
    def empty(self) -> bool:
        return self.snapshot_seq == 0 and not self.records


class DurableStore:
    """One engine's durable state: snapshots + WAL under one directory.

    Layout::

        <dir>/store.json                   # num_shards / policy / format
        <dir>/CURRENT                      # name of the live snapshot
        <dir>/snapshot-<seq>/meta.json
        <dir>/snapshot-<seq>/write_ids.json
        <dir>/snapshot-<seq>/shard<k>/...  # one save_kb tree per shard
        <dir>/wal-<baseseq>.log            # sealed + active segments
    """

    def __init__(
        self,
        options: DurabilityOptions | str | pathlib.Path,
        *,
        obs: Instrumentation | None = None,
        meta: dict | None = None,
    ):
        self.options = DurabilityOptions.coerce(options)
        self.directory = pathlib.Path(self.options.directory)
        self.obs = obs if obs is not None else _default_obs()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.meta = self._reconcile_meta(meta or {})
        self.snapshot_seq = 0
        self._wal = WriteAheadLog(
            self.directory, flush=self.options.flush, obs=self.obs
        )
        self._opened = False

    def _reconcile_meta(self, meta: dict) -> dict:
        """Persist the store's shape on first open; verify it after."""
        meta_path = self.directory / _STORE_META
        if meta_path.exists():
            stored = json.loads(meta_path.read_text(encoding="utf-8"))
            for key, value in meta.items():
                if key in stored and stored[key] != value:
                    raise WalError(
                        f"store {self.directory} was written with "
                        f"{key}={stored[key]!r}, engine expects {value!r}"
                    )
            return stored
        stored = dict(meta)
        stored["format"] = _FORMAT_VERSION
        tmp = meta_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(stored, indent=2), encoding="utf-8")
        _atomic_replace(tmp, meta_path)
        return stored

    # -- recovery -------------------------------------------------------------

    def open(self) -> RecoveredState:
        """Scan disk state, truncate torn tails, arm the writer."""
        state = RecoveredState()
        current = self.directory / _CURRENT
        if current.exists():
            snapshot_name = current.read_text(encoding="utf-8").strip()
            snapshot_dir = self.directory / snapshot_name
            meta_path = snapshot_dir / _SNAPSHOT_META
            if not meta_path.exists():
                raise WalError(
                    f"CURRENT points at {snapshot_name} but it has no "
                    f"{_SNAPSHOT_META}"
                )
            snap_meta = json.loads(meta_path.read_text(encoding="utf-8"))
            state.snapshot_seq = int(snap_meta["seq"])
            state.snapshot_dir = snapshot_dir
            state.shard_dirs = sorted(
                snapshot_dir.glob("shard*"),
                key=lambda p: int(p.name[len("shard"):]),
            )
            ids_path = snapshot_dir / _WRITE_IDS
            if ids_path.exists():
                state.write_ids = json.loads(
                    ids_path.read_text(encoding="utf-8")
                )
        self.snapshot_seq = state.snapshot_seq

        expected = state.snapshot_seq
        last_valid_bytes: int | None = None
        segments = _list_segments(self.directory)
        for position, path in enumerate(segments):
            scan = _scan_segment(path)
            if scan.torn and position != len(segments) - 1:
                raise WalError(
                    f"{path.name}: torn tail in a sealed segment — "
                    "rotation fsyncs should make this impossible"
                )
            for record in scan.records:
                if record.seq <= state.snapshot_seq:
                    continue  # already folded into the snapshot
                if record.seq != expected + 1:
                    raise WalError(
                        f"{path.name}: seq {record.seq} after {expected} — "
                        "non-contiguous WAL"
                    )
                state.records.append(record)
                expected = record.seq
            if position == len(segments) - 1:
                last_valid_bytes = scan.valid_bytes
                if scan.torn:
                    state.discarded_bytes = (
                        path.stat().st_size - scan.valid_bytes
                    )
        self._wal.open_at(expected, last_valid_bytes)
        self._opened = True
        if state.records:
            self.obs.counter("wal.replay.records").inc(len(state.records))
        if state.discarded_bytes:
            self.obs.counter("wal.replay.discarded_bytes").inc(
                state.discarded_bytes
            )
        return state

    # -- the write path (delegated) -------------------------------------------

    def stage(self, record: WalRecord) -> None:
        self._wal.stage(record)

    def wait_durable(self, seq: int) -> None:
        self._wal.wait_durable(seq)

    def records_since(self, seq: int) -> list[WalRecord]:
        """Log-shipping read: records after ``seq`` from the durable log.

        Returns an empty list when ``seq`` predates the oldest retained
        segment (the caller falls back to a snapshot).
        """
        if seq < self.snapshot_seq:
            return []
        return self._wal.records_since(seq)

    def should_compact(self) -> bool:
        return (
            self._wal.bytes_since_rotate >= self.options.compact_min_bytes
            or self._wal.records_since_rotate
            >= self.options.compact_min_records
        )

    @property
    def wal_bytes_since_compact(self) -> int:
        return self._wal.bytes_since_rotate

    @property
    def wal_records_since_compact(self) -> int:
        return self._wal.records_since_rotate

    # -- compaction -----------------------------------------------------------

    def begin_compaction(self, seq: int) -> pathlib.Path:
        """Pin the snapshot dir and rotate the WAL (engine locks held).

        The caller writes one ``save_kb`` tree per shard plus the
        write-id sidecar into the returned directory, releases its
        locks, then calls :meth:`finish_compaction`.
        """
        if seq < self.snapshot_seq:
            raise WalError(
                f"compaction seq {seq} behind snapshot {self.snapshot_seq}"
            )
        snapshot_dir = self.directory / f"snapshot-{seq:020d}"
        if snapshot_dir.exists():
            # Leftover from a compaction that crashed before its flip.
            shutil.rmtree(snapshot_dir)
        snapshot_dir.mkdir()
        self._wal.rotate(seq)
        _maybe_crash("compact.rotated")
        return snapshot_dir

    def write_snapshot_meta(
        self, snapshot_dir: pathlib.Path, seq: int, write_ids: list[str]
    ) -> None:
        (snapshot_dir / _WRITE_IDS).write_text(
            json.dumps(write_ids), encoding="utf-8"
        )
        (snapshot_dir / _SNAPSHOT_META).write_text(
            json.dumps({"seq": seq, **self.meta}), encoding="utf-8"
        )

    def finish_compaction(self, seq: int, snapshot_dir: pathlib.Path) -> None:
        """fsync the tree, flip ``CURRENT``, GC old segments/snapshots."""
        _fsync_tree(snapshot_dir)
        _fsync_path(self.directory)
        _maybe_crash("compact.synced")
        tmp = self.directory / (_CURRENT + ".tmp")
        tmp.write_text(snapshot_dir.name + "\n", encoding="utf-8")
        _atomic_replace(tmp, self.directory / _CURRENT)
        _maybe_crash("compact.flipped")
        self.snapshot_seq = seq
        self._wal.purge_below(seq)
        for stale in self.directory.glob("snapshot-*"):
            if stale.name != snapshot_dir.name:
                shutil.rmtree(stale, ignore_errors=True)
        self.obs.counter("wal.compactions").inc()

    def close(self) -> None:
        if self._opened:
            self._wal.close()


# -- offline inspection (the ``repro wal-dump`` verb) -------------------------


def wal_dump(directory: str | pathlib.Path) -> str:
    """A human-readable dump of a durable store's on-disk state."""
    root = pathlib.Path(directory)
    lines: list[str] = [f"durable store {root}"]
    meta_path = root / _STORE_META
    if meta_path.exists():
        lines.append(f"  meta: {meta_path.read_text(encoding='utf-8').strip()}")
    current = root / _CURRENT
    snapshot_seq = 0
    if current.exists():
        name = current.read_text(encoding="utf-8").strip()
        snap_meta = root / name / _SNAPSHOT_META
        if snap_meta.exists():
            snapshot_seq = int(
                json.loads(snap_meta.read_text(encoding="utf-8"))["seq"]
            )
        lines.append(f"  CURRENT -> {name} (seq {snapshot_seq})")
    else:
        lines.append("  CURRENT -> (none)")
    for path in _list_segments(root):
        scan = _scan_segment(path)
        live = sum(1 for r in scan.records if r.seq > snapshot_seq)
        tail = " TORN-TAIL" if scan.torn else ""
        lines.append(
            f"  {path.name}: {len(scan.records)} records "
            f"({live} past snapshot){tail}"
        )
        for record in scan.records:
            marker = " " if record.seq > snapshot_seq else "*"
            wid = record.write_id or "-"
            lines.append(
                f"    {marker}{record.seq:>8} {record.op:<8} "
                f"[{record.module}] {record.clause} id={wid}"
            )
    return "\n".join(lines)
