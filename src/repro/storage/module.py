"""Prolog-X style modules.

"Using Prolog-X, clauses are compiled and stored in modules, each module
containing one or more procedures.  Modules are then classified into two
types depending on their size, viz small modules which are loaded into
main memory when required, and large modules which are disk resident"
(paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Module", "Residency", "DEFAULT_LARGE_THRESHOLD_BYTES"]

#: Modules beyond this compiled size become disk resident.  The paper's
#: benchmarks [7] found ~60k clauses to be the in-memory breaking point on
#: a 4 MB Sun3/160; with ~40-byte records that is around 2.4 MB, but the
#: threshold is deliberately configurable per knowledge base.
DEFAULT_LARGE_THRESHOLD_BYTES = 2 * 1024 * 1024


class Residency:
    """Where a module's clauses live: main memory or disk."""

    MEMORY = "memory"
    DISK = "disk"


@dataclass
class Module:
    """A named group of procedures with a size-based residency class."""

    name: str
    large_threshold_bytes: int = DEFAULT_LARGE_THRESHOLD_BYTES
    pinned_residency: str | None = None
    indicators: set[tuple[str, int]] = field(default_factory=set)

    def add_procedure(self, indicator: tuple[str, int]) -> None:
        self.indicators.add(indicator)

    def residency(self, compiled_bytes: int) -> str:
        """Memory or disk, by compiled size (unless pinned)."""
        if self.pinned_residency is not None:
            return self.pinned_residency
        if compiled_bytes > self.large_threshold_bytes:
            return Residency.DISK
        return Residency.MEMORY

    def pin(self, residency: str) -> None:
        if residency not in (Residency.MEMORY, Residency.DISK):
            raise ValueError(f"unknown residency {residency!r}")
        self.pinned_residency = residency
