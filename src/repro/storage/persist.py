"""Knowledge-base persistence: real files on the host filesystem.

A saved knowledge base is a directory:

* ``symbols.bin`` — the shared symbol table;
* ``manifest.txt`` — one line per predicate: ``name/arity<TAB>module``
  plus module residency pins;
* ``<name>_<arity>.clauses`` — each predicate's compiled clause file
  image (the same bytes that stream through CLARE);
* ``<name>_<arity>.index`` — its secondary index image (rebuilt on load
  if absent; the codeword scheme parameters are stored in the manifest).

This realises the premise of the paper's title: the knowledge base lives
in secondary storage and is *not* re-consulted from source.
"""

from __future__ import annotations

import os
import pathlib

from ..pif import ClauseFile, CompiledClause, SymbolTable
from ..scw import CodewordScheme
from .kb import KnowledgeBase, PredicateStore

__all__ = ["save_kb", "load_kb", "kb_fingerprint", "PersistenceError"]

_MANIFEST = "manifest.txt"
_SYMBOLS = "symbols.bin"


class PersistenceError(RuntimeError):
    """Raised on malformed saved knowledge bases."""


def _predicate_stem(indicator: tuple[str, int]) -> str:
    name, arity = indicator
    safe = "".join(c if c.isalnum() else f"_{ord(c):02x}_" for c in name)
    return f"{safe}_{arity}"


def _assign_stems(kb: KnowledgeBase) -> dict[tuple[str, int], str]:
    """A unique file stem per predicate, collision-checked up front.

    The escaped stem is not injective in general (distinct names can
    escape alike, and case-only differences — ``foo/1`` vs ``Foo/1`` —
    collide on case-insensitive filesystems), so stems are deduplicated
    case-insensitively with a deterministic ``__N`` suffix.  The
    manifest records the assigned stem, and :func:`load_kb` trusts the
    manifest — never re-derives the stem — so a disambiguated save
    round-trips exactly.
    """
    stems: dict[tuple[str, int], str] = {}
    taken: set[str] = set()
    for store in kb:
        base = _predicate_stem(store.indicator)
        stem, suffix = base, 1
        while stem.casefold() in taken:
            suffix += 1
            stem = f"{base}__{suffix}"
        taken.add(stem.casefold())
        stems[store.indicator] = stem
    return stems


def _write_file(path: pathlib.Path, data: bytes, *, durable: bool) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())


def _fsync_dir(path: pathlib.Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_kb(
    kb: KnowledgeBase,
    directory: str | pathlib.Path,
    *,
    durable: bool = True,
) -> list[str]:
    """Write the knowledge base to ``directory``; returns files written.

    The manifest is written last, via a temporary file renamed into
    place, so a reader never observes a manifest naming data files that
    are absent or incomplete.  With ``durable`` (the default) every data
    file and the directory itself are fsynced *before* the manifest
    rename, and the rename is fsynced after — a crash at any point
    leaves either no manifest or a manifest whose data files are fully
    on disk.  Callers that provide their own tree-wide sync (the WAL
    store's compaction) pass ``durable=False`` to skip the per-file
    fsyncs.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    stems = _assign_stems(kb)

    _write_file(path / _SYMBOLS, kb.symbols.to_bytes(), durable=durable)
    written.append(_SYMBOLS)

    lines = [
        f"scheme\t{kb.scheme.width}\t{kb.scheme.bits_per_key}\t"
        f"{kb.scheme.max_args}\t{kb.scheme.max_depth}"
    ]
    for module in kb.modules():
        pin = module.pinned_residency or "-"
        lines.append(
            f"module\t{module.name}\t{module.large_threshold_bytes}\t{pin}"
        )
    for store in kb:
        name, arity = store.indicator
        stem = stems[store.indicator]
        lines.append(f"predicate\t{name}\t{arity}\t{store.module_name}\t{stem}")
        clause_path = path / f"{stem}.clauses"
        _write_file(clause_path, store.clause_file.to_bytes(), durable=durable)
        written.append(clause_path.name)
        index_path = path / f"{stem}.index"
        _write_file(index_path, store.index.to_bytes(), durable=durable)
        written.append(index_path.name)

    manifest_body = ("\n".join(lines) + "\n").encode("utf-8")
    if durable:
        _fsync_dir(path)
    tmp_path = path / (_MANIFEST + ".tmp")
    _write_file(tmp_path, manifest_body, durable=durable)
    os.replace(tmp_path, path / _MANIFEST)
    if durable:
        _fsync_dir(path)
    written.append(_MANIFEST)
    return written


def load_kb(directory: str | pathlib.Path) -> KnowledgeBase:
    """Reconstruct a knowledge base saved by :func:`save_kb`."""
    path = pathlib.Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise PersistenceError(f"no {_MANIFEST} in {path}")
    symbols = SymbolTable.from_bytes((path / _SYMBOLS).read_bytes())

    scheme = CodewordScheme()
    modules: list[tuple[str, int, str]] = []
    predicates: list[tuple[str, int, str, str]] = []
    for line_number, line in enumerate(
        manifest_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        fields = line.split("\t")
        kind = fields[0]
        if kind == "scheme":
            scheme = CodewordScheme(
                width=int(fields[1]),
                bits_per_key=int(fields[2]),
                max_args=int(fields[3]),
                max_depth=int(fields[4]),
            )
        elif kind == "module":
            modules.append((fields[1], int(fields[2]), fields[3]))
        elif kind == "predicate":
            predicates.append((fields[1], int(fields[2]), fields[3], fields[4]))
        else:
            raise PersistenceError(
                f"{_MANIFEST}:{line_number}: unknown entry {kind!r}"
            )

    seen_stems: dict[str, tuple[str, int]] = {}
    for name, arity, _, stem in predicates:
        prior = seen_stems.setdefault(stem, (name, arity))
        if prior != (name, arity):
            # Two predicates sharing one clause file means the save
            # silently overwrote one with the other (pre-collision-check
            # writer); loading either image as both would corrupt the KB.
            raise PersistenceError(
                f"manifest maps both {prior[0]}/{prior[1]} and "
                f"{name}/{arity} to clause file stem {stem!r}"
            )

    kb = KnowledgeBase(scheme=scheme)
    kb.symbols = symbols
    for name, threshold, pin in modules:
        module = kb.module(name)
        module.large_threshold_bytes = threshold
        if pin != "-":
            module.pin(pin)
    for name, arity, module_name, stem in predicates:
        indicator = (name, arity)
        clause_path = path / f"{stem}.clauses"
        if not clause_path.exists():
            raise PersistenceError(f"missing clause file {clause_path.name}")
        image = clause_path.read_bytes()
        clause_file = _clause_file_from_image(image, indicator, symbols)
        store = PredicateStore(
            indicator=indicator,
            clause_file=clause_file,
            module_name=module_name,
            scheme=scheme,
        )
        kb._predicates[indicator] = store
        kb.module(module_name).add_procedure(indicator)
    return kb


def kb_fingerprint(kb: KnowledgeBase) -> dict[str, list[str]]:
    """A content fingerprint: predicate → its clauses as strings, in order.

    Two knowledge bases with equal fingerprints answer every retrieval
    identically (same clause population, same within-predicate order).
    Migration and replica-resync tests compare fingerprints to prove a
    snapshot + catch-up delta reconstructed the source exactly; the
    string form makes mismatches directly readable in assertion diffs.
    """
    fingerprint: dict[str, list[str]] = {}
    for store in kb:
        name, arity = store.indicator
        fingerprint[f"{name}/{arity}"] = [
            str(clause) for clause in store.clauses()
        ]
    return fingerprint


def _clause_file_from_image(
    image: bytes, indicator: tuple[str, int], symbols: SymbolTable
) -> ClauseFile:
    """Rebuild a ClauseFile from its serialised record stream."""
    from ..pif.clausefile import decode_compiled

    clause_file = ClauseFile(indicator, symbols)
    offset = 0
    while offset < len(image):
        compiled, offset = CompiledClause.from_bytes(image, indicator, offset)
        clause_file.append(decode_compiled(compiled, symbols))
    return clause_file
