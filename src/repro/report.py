"""Query-run reports: where did retrieval time go?

Formats a :class:`~repro.engine.PrologMachine`'s aggregate statistics and
(when retrieval tracing is on) the per-goal retrieval breakdown into the
kind of report the PDBM project's benchmark campaign would have printed.
"""

from __future__ import annotations

from .crs import RetrievalStats, SearchMode
from .engine import PrologMachine
from .terms import Term, term_to_string

__all__ = ["format_query_report", "format_retrieval"]


def format_retrieval(goal: Term, stats: RetrievalStats) -> str:
    """One trace line: goal, mode, volumes, time split."""
    parts = [
        f"{term_to_string(goal):<36}",
        f"mode={stats.mode.value:<8}",
        f"scanned={stats.clauses_total:<6}",
        f"candidates={stats.final_candidates:<5}",
        f"filter={stats.filter_time_s * 1e3:8.3f}ms",
    ]
    if stats.fs1_candidates is not None:
        parts.insert(3, f"fs1_cands={stats.fs1_candidates:<6}")
    return "  ".join(parts)


def format_query_report(machine: PrologMachine, title: str = "query report") -> str:
    """A multi-line report of everything the machine retrieved so far."""
    stats = machine.stats
    lines = [title, "=" * len(title)]
    lines.append(f"retrievals        : {stats.retrievals}")
    lines.append(f"clauses scanned   : {stats.clauses_scanned}")
    lines.append(f"candidates passed : {stats.candidates}")
    if stats.clauses_scanned:
        ratio = stats.candidates / stats.clauses_scanned
        lines.append(f"filter selectivity: {100 * ratio:.2f}%")
    lines.append(f"modelled filter   : {stats.filter_time_s * 1e3:.3f} ms")
    if stats.mode_uses:
        lines.append("search modes:")
        for mode in SearchMode:
            if mode in stats.mode_uses:
                lines.append(f"  {mode.value:<9}: {stats.mode_uses[mode]} uses")
    if machine.trace:
        lines.append("")
        lines.append(f"last {len(machine.trace)} retrievals:")
        for goal, retrieval in machine.trace:
            if retrieval is not None:
                lines.append("  " + format_retrieval(goal, retrieval))
    return "\n".join(lines)
