"""Query-run reports: where did retrieval time go?

Reporting sits on top of the observability layer (:mod:`repro.obs`):
the :class:`~repro.obs.MetricsRegistry` aggregates stage-level counters
across the whole pipeline — disk, FS1, FS2, host software, locks — and
this module is one consumer of that registry (the CLI's ``stats``
command and the NDJSON trace export are others).  The per-machine
:class:`~repro.engine.QueryStats` view of the same run is kept for the
classic per-goal trace report.
"""

from __future__ import annotations

from .crs import RetrievalStats, SearchMode
from .engine import PrologMachine
from .obs import Instrumentation, MetricsRegistry
from .terms import Term, term_to_string

__all__ = [
    "format_query_report",
    "format_retrieval",
    "format_metrics",
    "format_net_report",
    "format_shard_report",
    "headline_counters",
    "shard_breakdown",
]


def format_retrieval(goal: Term, stats: RetrievalStats) -> str:
    """One trace line: goal, mode, volumes, time split."""
    parts = [
        f"{term_to_string(goal):<36}",
        f"mode={stats.mode.value:<8}",
        f"scanned={stats.clauses_total:<6}",
        f"candidates={stats.final_candidates:<5}",
        f"filter={stats.filter_time_s * 1e3:8.3f}ms",
    ]
    if stats.fs1_candidates is not None:
        parts.insert(3, f"fs1_cands={stats.fs1_candidates:<6}")
    return "  ".join(parts)


def format_query_report(machine: PrologMachine, title: str = "query report") -> str:
    """A multi-line report of everything the machine retrieved so far."""
    stats = machine.stats
    lines = [title, "=" * len(title)]
    lines.append(f"retrievals        : {stats.retrievals}")
    lines.append(f"clauses scanned   : {stats.clauses_scanned}")
    lines.append(f"candidates passed : {stats.candidates}")
    if stats.clauses_scanned:
        ratio = stats.candidates / stats.clauses_scanned
        lines.append(f"filter selectivity: {100 * ratio:.2f}%")
    lines.append(f"modelled filter   : {stats.filter_time_s * 1e3:.3f} ms")
    if stats.mode_uses:
        lines.append("search modes:")
        for mode in SearchMode:
            if mode in stats.mode_uses:
                lines.append(f"  {mode.value:<9}: {stats.mode_uses[mode]} uses")
    if machine.trace:
        lines.append("")
        lines.append(f"last {len(machine.trace)} retrievals:")
        for goal, retrieval in machine.trace:
            if retrieval is not None:
                lines.append("  " + format_retrieval(goal, retrieval))
    if machine.obs.enabled and len(machine.obs.registry):
        lines.append("")
        lines.append(format_metrics(machine.obs, title="pipeline metrics"))
    return "\n".join(lines)


def headline_counters(registry: MetricsRegistry) -> dict[str, float]:
    """The counters every report leads with, present even when zero."""
    return {
        "retrievals": registry.total("crs.retrievals"),
        "cache_hits": registry.total("crs.cache.hits"),
        "cache_misses": registry.total("crs.cache.misses"),
        "fs1_searches": registry.total("fs1.searches"),
        "fs2_search_calls": registry.total("fs2.search_calls"),
        "fs2_plan_cache_hits": registry.total("fs2.plan_cache.hits"),
        "fs2_plan_cache_misses": registry.total("fs2.plan_cache.misses"),
        "fs2_compiled_clauses": registry.total("fs2.compiled.clauses"),
        "disk_bytes": registry.total("disk.bytes_read"),
        "lock_waits": registry.total("locks.waits"),
        "deadlocks": registry.total("locks.deadlocks"),
        "txn_commits": registry.total("txn.commits"),
        "txn_aborts": registry.total("txn.aborts"),
    }


#: The per-shard counter families the cluster report itemises.
_SHARD_STAGES = (
    ("retrievals", "crs.retrievals"),
    ("clauses", "crs.clauses_scanned"),
    ("candidates", "crs.candidates_returned"),
    ("disk_s", "disk.sim_time_s"),
    ("fs1_s", "fs1.sim_time_s"),
    ("fs2_s", "fs2.sim_time_s"),
    ("software_s", "software.sim_time_s"),
)


def shard_breakdown(registry: MetricsRegistry) -> dict[str, dict[str, float]]:
    """Per-shard totals of the stage counters, keyed by shard label.

    Every engine-level counter a shard emits carries its ``shard`` label
    (see :meth:`repro.obs.Instrumentation.labelled`); this folds each
    family per shard, summing across its other labels (e.g. mode).
    """
    shards: dict[str, dict[str, float]] = {}
    for instrument in registry:
        labels = dict(instrument.labels)
        shard = labels.get("shard")
        if shard is None or not hasattr(instrument, "value"):
            continue
        for stage, family in _SHARD_STAGES:
            if instrument.name == family:
                row = shards.setdefault(shard, {s: 0.0 for s, _ in _SHARD_STAGES})
                row[stage] += instrument.value
    return shards


def format_shard_report(registry: MetricsRegistry) -> str:
    """The cluster view: per-shard work split and the batch speedup.

    The speedup line compares the parallel-disk wall clock
    (max-over-shards) with what one device running the same work in
    sequence would cost — the measured gain over a 1-shard cluster.
    """
    lines = ["shard breakdown", "=" * len("shard breakdown")]
    shards = shard_breakdown(registry)
    if not shards:
        lines.append("(no shard-labelled metrics recorded)")
        return "\n".join(lines)
    header = f"{'shard':<6}" + "".join(
        f"{stage:>12}" for stage, _ in _SHARD_STAGES
    )
    lines.append(header)
    for shard in sorted(shards, key=lambda s: (len(s), s)):
        row = shards[shard]
        cells = []
        for stage, _ in _SHARD_STAGES:
            value = row[stage]
            if stage.endswith("_s"):
                cells.append(f"{value:>12.6f}")
            else:
                cells.append(f"{value:>12g}")
        lines.append(f"{shard:<6}" + "".join(cells))
    wall = registry.total("cluster.wall_clock_s")
    device = registry.total("cluster.device_time_s")
    batch_wall = registry.total("cluster.batch.wall_clock_s")
    batch_serial = registry.total("cluster.batch.serial_time_s")
    if device > 0.0 and wall > 0.0:
        lines.append(
            f"retrieval wall clock: {wall:.6f}s over {device:.6f}s device "
            f"time ({device / wall:.2f}x vs 1 shard)"
        )
    if batch_wall > 0.0:
        lines.append(
            f"batch wall clock    : {batch_wall:.6f}s over {batch_serial:.6f}s "
            f"serial ({batch_serial / batch_wall:.2f}x vs 1 shard)"
        )
    broadcasts = registry.total("cluster.broadcasts")
    single = registry.total("cluster.single_shard")
    if broadcasts or single:
        lines.append(
            f"routing             : {single:g} single-shard, "
            f"{broadcasts:g} broadcast"
        )
    return "\n".join(lines)


def format_net_report(registry: MetricsRegistry) -> str:
    """The serving view: admission control, errors, bytes, latency.

    Rendered by ``repro.cli serve`` at drain time so an operator sees
    what the admission controller actually did — how much load was
    accepted, how much was shed with ``SERVER_BUSY``, and how many
    requests spent their deadline in the queue.
    """
    lines = ["net serving", "=" * len("net serving")]
    accepted = registry.total("net.accepted")
    connections = registry.total("net.connections")
    if accepted == 0 and connections == 0:
        lines.append("(no network activity recorded)")
        return "\n".join(lines)
    lines.append(
        "accepted={:g}  busy_rejected={:g}  deadline_expired={:g}  "
        "drains={:g}".format(
            accepted,
            registry.total("net.busy_rejected"),
            registry.total("net.deadline_expired"),
            registry.total("net.drains"),
        )
    )
    lines.append(
        "connections={:g}  disconnects={:g}  bad_frames={:g}  "
        "truncated_frames={:g}  send_failures={:g}".format(
            connections,
            registry.total("net.disconnects"),
            registry.total("net.bad_frames"),
            registry.total("net.truncated_frames"),
            registry.total("net.send_failures"),
        )
    )
    lines.append(
        "bytes in/out={:g}/{:g}".format(
            registry.total("net.bytes_in"), registry.total("net.bytes_out")
        )
    )
    for instrument in registry:
        if instrument.name == "net.request_ms" and getattr(
            instrument, "count", 0
        ):
            lines.append(
                "request latency: n={} mean={:.3f}ms min={:.3f}ms "
                "max={:.3f}ms".format(
                    instrument.count,
                    instrument.mean,
                    instrument.min,
                    instrument.max,
                )
            )
    return "\n".join(lines)


def format_metrics(
    source: Instrumentation | MetricsRegistry, title: str = "pipeline metrics"
) -> str:
    """Render a metrics registry: headline counters, stage times, dump.

    The stage-time block is the registry's answer to the paper's mode
    comparison: modelled seconds attributed to the disk stream, the FS1
    index scan, the FS2 partial unification, and host software.
    """
    registry = source.registry if isinstance(source, Instrumentation) else source
    head = headline_counters(registry)
    lines = [title, "=" * len(title)]
    lines.append(
        "retrievals={:g}  cache hits/misses={:g}/{:g}  "
        "fs1 searches={:g}  fs2 search calls={:g}".format(
            head["retrievals"],
            head["cache_hits"],
            head["cache_misses"],
            head["fs1_searches"],
            head["fs2_search_calls"],
        )
    )
    lines.append(
        "fs2 plan cache hits/misses={:g}/{:g}  compiled clauses={:g}".format(
            head["fs2_plan_cache_hits"],
            head["fs2_plan_cache_misses"],
            head["fs2_compiled_clauses"],
        )
    )
    lines.append(
        "lock waits={:g}  deadlocks={:g}  txn commits/aborts={:g}/{:g}".format(
            head["lock_waits"],
            head["deadlocks"],
            head["txn_commits"],
            head["txn_aborts"],
        )
    )
    lines.append("stage sim time (s):")
    for stage, counter in (
        ("disk", "disk.sim_time_s"),
        ("fs1", "fs1.sim_time_s"),
        ("fs2", "fs2.sim_time_s"),
        ("software", "software.sim_time_s"),
    ):
        lines.append(f"  {stage:<9}: {registry.total(counter):.6f}")
    if len(registry):
        lines.append("registry:")
        for line in registry.render().splitlines():
            lines.append("  " + line)
    return "\n".join(lines)
