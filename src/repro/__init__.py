"""CLARE — a type-driven engine for Prolog clause retrieval over a large
knowledge base.

Python reproduction of Wong & Williams (ISCA 1989).  The package models the
full PDBM stack: Prolog terms and unification, the PIF compiled-clause
format, the two CLARE filter stages (FS1 superimposed-codeword index search
and FS2 partial test unification), the disk subsystem, disk-resident clause
storage, the Clause Retrieval Server, and an integrated Prolog interpreter.

Quickstart::

    from repro import KnowledgeBase, PrologMachine

    kb = KnowledgeBase()
    kb.consult_text("parent(tom, bob). parent(bob, ann).")
    kb.consult_text("grand(X, Z) :- parent(X, Y), parent(Y, Z).")
    machine = PrologMachine(kb)
    for solution in machine.solve_text("grand(tom, Who)"):
        print(solution["Who"])
"""

__version__ = "1.0.0"

# Lazy attribute loading (PEP 562) keeps `import repro.terms` cheap and free
# of cross-subpackage import cycles.
_EXPORTS = {
    "KnowledgeBase": ("repro.storage", "KnowledgeBase"),
    "Residency": ("repro.storage", "Residency"),
    "PrologMachine": ("repro.engine", "PrologMachine"),
    "ClauseRetrievalServer": ("repro.crs", "ClauseRetrievalServer"),
    "CRSFrontEnd": ("repro.crs", "CRSFrontEnd"),
    "SearchMode": ("repro.crs", "SearchMode"),
    "SecondStageFilter": ("repro.fs2", "SecondStageFilter"),
    "FirstStageFilter": ("repro.scw", "FirstStageFilter"),
    "CodewordScheme": ("repro.scw", "CodewordScheme"),
    "DiskSim": ("repro.disk", "DiskSim"),
    "SymbolTable": ("repro.pif", "SymbolTable"),
    "PIFEncoder": ("repro.pif", "PIFEncoder"),
    "PIFDecoder": ("repro.pif", "PIFDecoder"),
    "read_term": ("repro.terms", "read_term"),
    "read_program": ("repro.terms", "read_program"),
    "term_to_string": ("repro.terms", "term_to_string"),
    "unify": ("repro.unify", "unify"),
    "unifiable": ("repro.unify", "unifiable"),
    "partial_match": ("repro.unify", "partial_match"),
    "MatchLevel": ("repro.unify", "MatchLevel"),
    "table1": ("repro.fs2", "table1"),
    "CLARE": ("repro.clare", "CLARE"),
    "save_kb": ("repro.storage", "save_kb"),
    "load_kb": ("repro.storage", "load_kb"),
    "format_query_report": ("repro.report", "format_query_report"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
