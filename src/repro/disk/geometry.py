"""Disk geometry: tracks, sectors, cylinders.

The Result Memory is sized to "contain all clause satisfiers of one disk
track — the worst case of a single FS2 search call", so track capacity is
a first-class quantity here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskGeometry"]


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout of a drive."""

    bytes_per_sector: int
    sectors_per_track: int
    tracks_per_cylinder: int  # == number of heads
    cylinders: int

    def __post_init__(self) -> None:
        for name in (
            "bytes_per_sector",
            "sectors_per_track",
            "tracks_per_cylinder",
            "cylinders",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def track_bytes(self) -> int:
        return self.bytes_per_sector * self.sectors_per_track

    @property
    def cylinder_bytes(self) -> int:
        return self.track_bytes * self.tracks_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.cylinder_bytes * self.cylinders

    @property
    def total_tracks(self) -> int:
        return self.tracks_per_cylinder * self.cylinders

    def locate(self, byte_offset: int) -> tuple[int, int, int]:
        """(cylinder, track, byte-in-track) of a linear byte address."""
        if not (0 <= byte_offset < self.capacity_bytes):
            raise ValueError(f"offset {byte_offset} beyond disk capacity")
        cylinder, rest = divmod(byte_offset, self.cylinder_bytes)
        track, within = divmod(rest, self.track_bytes)
        return cylinder, track, within
