"""The simulated disk subsystem: drives, geometry, streaming DMA."""

from .dma import DiskFullError, DiskSim, Extent, TransferStats
from .drive import FUJITSU_M2351A, MICROPOLIS_1325, DriveModel
from .geometry import DiskGeometry

__all__ = [
    "DiskFullError",
    "DiskGeometry",
    "DiskSim",
    "DriveModel",
    "Extent",
    "FUJITSU_M2351A",
    "MICROPOLIS_1325",
    "TransferStats",
]
