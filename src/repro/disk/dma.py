"""The simulated disk: named extents, streaming reads, DMA accounting.

Clause files and secondary index files live as *extents* — contiguous byte
ranges on the simulated drive.  A streaming read models the paper's setup:
"the DMA begin and end addresses of the disk transfer command block ...
is specified to be the FS2 address space", i.e. the disk controller feeds
the filter directly, so the filter sees records at disk transfer rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from .drive import DriveModel, FUJITSU_M2351A

__all__ = ["DiskSim", "Extent", "TransferStats", "DiskFullError"]


class DiskFullError(RuntimeError):
    """No space left for a new extent."""


@dataclass(frozen=True)
class Extent:
    """A contiguous allocation on the drive."""

    name: str
    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class TransferStats:
    """Timing breakdown of one streaming read."""

    bytes_transferred: int = 0
    seeks: int = 0
    seek_time_s: float = 0.0
    transfer_time_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        return self.seek_time_s + self.transfer_time_s


class DiskSim:
    """A drive holding named extents with modelled access timing."""

    def __init__(
        self,
        drive: DriveModel = FUJITSU_M2351A,
        obs: Instrumentation | None = None,
    ):
        self.drive = drive
        self.obs = obs if obs is not None else _default_obs()
        self._extents: dict[str, Extent] = {}
        self._data: dict[str, bytes] = {}
        self._next_free = 0

    # -- allocation ---------------------------------------------------------

    def write_extent(
        self, name: str, data: bytes, align_track: bool = False
    ) -> Extent:
        """Store (or replace) a named extent.

        With ``align_track`` a *new* allocation starts on a track boundary,
        so per-track FS2 search calls line up with physical tracks (the
        Result Memory is sized to one track, paper section 3.2).
        """
        existing = self._extents.get(name)
        if existing is not None and len(data) <= existing.length:
            self._data[name] = data
            extent = Extent(name, existing.start, len(data))
            self._extents[name] = extent
            return extent
        start = self._next_free
        if align_track:
            track_bytes = self.drive.geometry.track_bytes
            remainder = start % track_bytes
            if remainder:
                start += track_bytes - remainder
        if start + len(data) > self.drive.geometry.capacity_bytes:
            raise DiskFullError(
                f"no room for {len(data)} bytes of {name!r} on {self.drive.name}"
            )
        extent = Extent(name, start, len(data))
        self._next_free = start + len(data)
        self._extents[name] = extent
        self._data[name] = data
        return extent

    def extent(self, name: str) -> Extent:
        try:
            return self._extents[name]
        except KeyError:
            raise KeyError(f"no extent named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._extents

    def used_bytes(self) -> int:
        return self._next_free

    # -- reads ---------------------------------------------------------------

    def read_extent(self, name: str) -> tuple[bytes, TransferStats]:
        """One contiguous read of a whole extent."""
        with self.obs.span("disk.read", extent=name, kind="extent") as span:
            data = self._data[self.extent(name).name]
            stats = TransferStats(
                bytes_transferred=len(data),
                seeks=1,
                seek_time_s=self.drive.access_time_s(),
                transfer_time_s=self.drive.transfer_time_s(len(data)),
            )
            span.set(bytes=len(data), seeks=1, sim_time_s=stats.total_time_s)
        self._account(stats)
        return data, stats

    def stream_records(
        self, name: str, offsets: Iterable[tuple[int, int]] | None = None
    ) -> tuple[Iterator[bytes], TransferStats]:
        """Stream records of an extent, as the DMA would feed CLARE.

        ``offsets`` is an iterable of (start, length) pairs *within* the
        extent; None streams the whole extent as one record.  Selective
        reads (FS1 candidate fetches) pay one positioning cost per
        non-contiguous jump; a full scan pays a single seek.
        """
        with self.obs.span("disk.read", extent=name, kind="stream") as span:
            data = self._data[self.extent(name).name]
            stats = TransferStats()
            if offsets is None:
                pairs: list[tuple[int, int]] = [(0, len(data))]
            else:
                pairs = list(offsets)
            records: list[bytes] = []
            previous_end: int | None = None
            for start, length in pairs:
                if start != previous_end:
                    stats.seeks += 1
                    stats.seek_time_s += self.drive.access_time_s()
                records.append(data[start : start + length])
                stats.bytes_transferred += length
                stats.transfer_time_s += self.drive.transfer_time_s(length)
                previous_end = start + length
            span.set(
                records=len(records),
                bytes=stats.bytes_transferred,
                seeks=stats.seeks,
                sim_time_s=stats.total_time_s,
            )
        self._account(stats)
        return iter(records), stats

    def _account(self, stats: TransferStats) -> None:
        obs = self.obs
        obs.counter("disk.reads").inc()
        obs.counter("disk.bytes_read").inc(stats.bytes_transferred)
        obs.counter("disk.seeks").inc(stats.seeks)
        obs.counter("disk.sim_time_s").inc(stats.total_time_s)

    def track_of(self, name: str, offset_in_extent: int = 0) -> tuple[int, int]:
        """(cylinder, track) holding a byte of the extent."""
        extent = self.extent(name)
        cylinder, track, _ = self.drive.geometry.locate(extent.start + offset_in_extent)
        return cylinder, track
