"""Drive parameter sets and the transfer-timing model.

The paper's target platform mounts either "a SCSI based disk system, e.g.
Micropolis 1325, or a SMD based disk system, e.g. Fujitsu M2351A", the
latter peaking at circa 2 MB/s.  Parameter values below follow the
published data sheets of those mid-1980s drives (rounded; the reproduction
only relies on the *orders* — CLARE must outrun the faster one).
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import DiskGeometry

__all__ = ["DriveModel", "MICROPOLIS_1325", "FUJITSU_M2351A"]


@dataclass(frozen=True)
class DriveModel:
    """One disk drive: geometry plus timing parameters."""

    name: str
    geometry: DiskGeometry
    transfer_rate_bytes_per_sec: float
    average_seek_s: float
    rpm: float

    def __post_init__(self) -> None:
        if self.transfer_rate_bytes_per_sec <= 0:
            raise ValueError("transfer rate must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")

    @property
    def rotation_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def average_rotational_latency_s(self) -> float:
        return self.rotation_s / 2

    def access_time_s(self, with_seek: bool = True) -> float:
        """Positioning cost before a transfer starts."""
        latency = self.average_rotational_latency_s
        if with_seek:
            latency += self.average_seek_s
        return latency

    def transfer_time_s(self, nbytes: int) -> float:
        return nbytes / self.transfer_rate_bytes_per_sec

    def read_time_s(self, nbytes: int, with_seek: bool = True) -> float:
        """One contiguous read: position once, then stream."""
        return self.access_time_s(with_seek) + self.transfer_time_s(nbytes)


#: SCSI option: Micropolis 1325 (8" era 69 MB Winchester, ~1 MB/s to host).
MICROPOLIS_1325 = DriveModel(
    name="Micropolis 1325 (SCSI)",
    geometry=DiskGeometry(
        bytes_per_sector=512,
        sectors_per_track=17,
        tracks_per_cylinder=8,
        cylinders=1024,
    ),
    transfer_rate_bytes_per_sec=1_000_000,
    average_seek_s=0.028,
    rpm=3600,
)

#: SMD option: Fujitsu M2351A "Eagle" (474 MB, ~2 MB/s peak — the fast
#: case of the paper's section 4 argument).
FUJITSU_M2351A = DriveModel(
    name="Fujitsu M2351A (SMD)",
    geometry=DiskGeometry(
        bytes_per_sector=512,
        sectors_per_track=40,
        tracks_per_cylinder=20,
        cylinders=842,
    ),
    transfer_rate_bytes_per_sec=2_000_000,
    average_seek_s=0.018,
    rpm=3961,
)
