"""Full unification.

This is the *final* stage of clause retrieval in the PDBM system: CLARE's
two filter stages only identify *potential* unifiers; every candidate clause
is subjected to full unification by the host Prolog system.  It is also the
ground-truth oracle for the filter-soundness property: a filter must never
reject a clause that ``unify`` accepts.
"""

from __future__ import annotations

from ..terms import Struct, Term, Var
from .bindings import Bindings

__all__ = ["unify", "unifiable", "occurs_in"]


def occurs_in(var: Var, term: Term, bindings: Bindings) -> bool:
    """True if ``var`` occurs in ``term`` under ``bindings`` (occurs check)."""
    stack = [term]
    while stack:
        current = bindings.walk(stack.pop())
        if isinstance(current, Var):
            if current == var:
                return True
        elif isinstance(current, Struct):
            stack.extend(current.args)
    return False


def unify(
    left: Term,
    right: Term,
    bindings: Bindings | None = None,
    occurs_check: bool = False,
) -> Bindings | None:
    """Unify two terms; return the extended bindings, or None on failure.

    When ``bindings`` is given it is extended *in place* on success and
    rolled back to its entry state on failure (standard trail behaviour).
    Without ``occurs_check`` the behaviour matches normal Prolog (a
    variable may capture a term containing itself is prevented only for
    the direct ``X = X`` case by the identical-variable shortcut).
    """
    if bindings is None:
        bindings = Bindings()
    mark = bindings.mark()
    stack: list[tuple[Term, Term]] = [(left, right)]
    # Coinductive guard for rational trees: without an occurs check a
    # variable may be bound to a term containing itself, and unifying two
    # such cyclic terms (X = f(X) against Y = f(Y)) would re-derive the
    # same pair forever.  ``walk`` returns the stored term objects, so an
    # identity pair that comes around again is already being proved and
    # can be assumed (greatest-fixpoint semantics, as in SWI/YAP).
    in_progress: set[tuple[int, int]] | None = None
    while stack:
        a, b = stack.pop()
        a = bindings.walk(a)
        b = bindings.walk(b)
        if a is b or a == b:
            continue
        if isinstance(a, Var):
            if occurs_check and occurs_in(a, b, bindings):
                bindings.undo_to(mark)
                return None
            bindings.bind(a, b)
            continue
        if isinstance(b, Var):
            if occurs_check and occurs_in(b, a, bindings):
                bindings.undo_to(mark)
                return None
            bindings.bind(b, a)
            continue
        if isinstance(a, Struct) and isinstance(b, Struct):
            if a.functor != b.functor or a.arity != b.arity:
                bindings.undo_to(mark)
                return None
            pair = (id(a), id(b))
            if in_progress is None:
                in_progress = set()
            elif pair in in_progress:
                continue
            in_progress.add(pair)
            stack.extend(zip(a.args, b.args))
            continue
        # Distinct constants (or constant vs compound).
        bindings.undo_to(mark)
        return None
    return bindings


def unifiable(left: Term, right: Term, occurs_check: bool = False) -> bool:
    """True if the two terms unify (bindings are discarded)."""
    return unify(left, right, occurs_check=occurs_check) is not None
