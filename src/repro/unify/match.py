"""Partial test unification — the Figure 1 algorithm at match levels 1-5.

The paper investigates five levels of partial matching between a query
argument and a database (clause head) argument, differing in how deeply the
two terms are compared:

* **Level 1** — type (tag) only.  Since a PIF tag encodes arity for complex
  terms and the most significant nibble for in-line integers, "type only"
  still discriminates arity and coarse integer magnitude.
* **Level 2** — type and content, *ignoring* complex structures: simple
  terms compare values/symbols; structures and lists compare tag + content
  (functor symbol and arity) without descending into their elements.
* **Level 3** — type and content, catering for *first level* structures:
  the top-level elements of a structure/list are compared by level-2 rules.
* **Level 4** — type and content with *full* structures (unbounded depth).
* **Level 5** — level 4 plus variable cross-binding checks.

CLARE's FS2 implements **level 3 extended with cross-binding checks** (the
paper judged level 4/5 hardware too costly).  The variable machinery
(Figure 1 cases 5 and 6) is shared by levels 2-5: first occurrences of
query/database variables are stored (DB_STORE / QUERY_STORE), subsequent
occurrences are fetched and compared (DB_FETCH / QUERY_FETCH), and when a
fetched association is itself a variable the *ultimate* association is
chased (DB_CROSS_BOUND_FETCH / QUERY_CROSS_BOUND_FETCH) when cross-binding
checks are enabled.

Every matcher here is **conservative**: it never rejects a clause whose
head fully unifies with the query (the filter-soundness invariant).  It may
accept non-unifiers — those are the *false drops* the paper quantifies.

The matcher also counts hardware-operation invocations so that benchmarks
can cost a search with the Table 1 execution times.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import IntEnum

from ..terms import (
    CONS,
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    functor_indicator,
    list_parts,
    rename_apart,
    variables,
)

__all__ = [
    "MatchLevel",
    "HardwareOp",
    "MatchOutcome",
    "PartialMatcher",
    "partial_match",
    "match_clause_head",
]

#: Arity limit for in-line complex terms (5-bit arity field in the PIF tag).
INLINE_ARITY_LIMIT = 31


class MatchLevel(IntEnum):
    """The five matching depths investigated in the paper (section 2.2)."""

    TYPE_ONLY = 1
    TYPE_AND_CONTENT = 2
    FIRST_LEVEL_STRUCTURES = 3
    FULL_STRUCTURES = 4
    FULL_WITH_CROSS_BINDING = 5


class HardwareOp(IntEnum):
    """The seven FS2 hardware operations (paper sections 3.3.1-3.3.7)."""

    MATCH = 1
    DB_STORE = 2
    QUERY_STORE = 3
    DB_FETCH = 4
    QUERY_FETCH = 5
    DB_CROSS_BOUND_FETCH = 6
    QUERY_CROSS_BOUND_FETCH = 7


@dataclass
class MatchOutcome:
    """Result of matching one clause head: decision plus op accounting."""

    hit: bool
    ops: Counter = field(default_factory=Counter)

    def op_count(self) -> int:
        return sum(self.ops.values())


class _Stores:
    """Variable binding stores (DB Memory / Query Memory model).

    One store per side; a binding value is either a non-variable
    :class:`Term` or a :class:`Var` (a cross-binding reference).
    """

    __slots__ = ("db", "query", "active")

    def __init__(self) -> None:
        self.db: dict[Var, Term] = {}
        self.query: dict[Var, Term] = {}
        # Fetch-comparisons in progress: a repeated (var, term) comparison
        # means the bindings are cyclic (rational-tree unification without
        # occurs check); coinductively, the repeat succeeds.
        self.active: set[tuple[str, Var, Term]] = set()

    def store_for(self, var: Var, db_vars: frozenset[Var]) -> dict[Var, Term]:
        return self.db if var in db_vars else self.query

    def deref(self, var: Var, db_vars: frozenset[Var]) -> Term:
        """Chase cross-binding references to the ultimate association.

        Returns an unbound variable (possibly ``var`` itself, or the cycle
        representative when references form a loop) or a non-variable term.
        """
        visited: set[Var] = set()
        current: Term = var
        while isinstance(current, Var):
            if current in visited:
                return current  # reference cycle == mutually unbound
            visited.add(current)
            store = self.store_for(current, db_vars)
            bound = store.get(current)
            if bound is None:
                return current
            current = bound
        return current


class PartialMatcher:
    """Match one query against many clause heads at a given level.

    The query is analysed once (its variables form the "query side"); each
    call to :meth:`match_head` models streaming one clause past the filter:
    the DB store is reset per clause, and query-variable slots are
    re-stored at each first occurrence, exactly as the hardware's static
    1st-QV/Sub-QV typing implies.
    """

    def __init__(
        self,
        query: Term,
        level: MatchLevel | int = MatchLevel.FIRST_LEVEL_STRUCTURES,
        cross_binding: bool = True,
    ):
        self.level = MatchLevel(level)
        if self.level == MatchLevel.FULL_WITH_CROSS_BINDING:
            cross_binding = True
        self.cross_binding = cross_binding
        self.query = query
        self.indicator = functor_indicator(query)
        self._query_vars = frozenset(
            v for v in variables(query) if not v.is_anonymous()
        )

    # -- public API --------------------------------------------------------

    def match_head(self, head: Term) -> MatchOutcome:
        """Test one clause head; returns the hit decision and op counts."""
        if functor_indicator(head) != self.indicator:
            return MatchOutcome(hit=False)
        if self._query_vars & {v for v in variables(head) if not v.is_anonymous()}:
            # Same variable names on both sides: standardise the clause apart,
            # as the clause compiler would have done.
            head = rename_apart(head, keep_anonymous=True)
        outcome = MatchOutcome(hit=True)
        if isinstance(self.query, Atom):  # arity 0: functor match is enough
            return outcome
        assert isinstance(self.query, Struct) and isinstance(head, Struct)
        stores = _Stores()
        db_vars = frozenset(v for v in variables(head) if not v.is_anonymous())
        for db_arg, query_arg in zip(head.args, self.query.args):
            if not self._match_pair(db_arg, query_arg, 0, stores, db_vars, outcome):
                outcome.hit = False
                break
        return outcome

    # -- Figure 1 dispatch ---------------------------------------------------

    def _match_pair(
        self,
        db_term: Term,
        query_term: Term,
        depth: int,
        stores: _Stores,
        db_vars: frozenset[Var],
        outcome: MatchOutcome,
        folded: bool = False,
    ) -> bool:
        """Dispatch one term pair (Figure 1).

        ``folded`` marks the re-comparison that concludes a fetch
        operation: its concrete/concrete compare is part of the fetch op
        (no extra MATCH is counted) and, at the hardware's level 3 and
        below, it sees only the stored tag+content word — so it never
        descends into elements.
        """
        # Anonymous variables succeed immediately (skip).
        if isinstance(db_term, Var) and db_term.is_anonymous():
            return True
        if isinstance(query_term, Var) and query_term.is_anonymous():
            return True
        if self.level == MatchLevel.TYPE_ONLY:
            return self._match_type_only(db_term, query_term)
        # Case 5: database side is a variable (takes precedence, Figure 1).
        if isinstance(db_term, Var):
            return self._handle_var(
                db_term, query_term, "db", depth, stores, db_vars, outcome
            )
        # Case 6: query side is a variable.
        if isinstance(query_term, Var):
            return self._handle_var(
                query_term, db_term, "query", depth, stores, db_vars, outcome
            )
        # Cases 1-4: both sides are non-variable terms.
        shallow = False
        if folded:
            shallow = self.level < MatchLevel.FULL_STRUCTURES
        else:
            outcome.ops[HardwareOp.MATCH] += 1
        return self._compare(
            db_term, query_term, depth, stores, db_vars, outcome, shallow=shallow
        )

    def _handle_var(
        self,
        var: Term,
        other: Term,
        side: str,
        depth: int,
        stores: _Stores,
        db_vars: frozenset[Var],
        outcome: MatchOutcome,
    ) -> bool:
        assert isinstance(var, Var)
        # A fetched binding can place a term on the opposite side of the
        # comparator, so the variable's true side comes from its origin,
        # not its position.
        side = "db" if var in db_vars else "query"
        store = stores.db if side == "db" else stores.query
        if var not in store:
            # Cases 5a / 6a: first occurrence -- store the opposite term.
            outcome.ops[
                HardwareOp.DB_STORE if side == "db" else HardwareOp.QUERY_STORE
            ] += 1
            store[var] = other
            if isinstance(other, Var) and not other.is_anonymous():
                # Variable-variable pair: record the cross binding both ways
                # so either side's subsequent occurrences see it.
                other_store = stores.store_for(other, db_vars)
                if other not in other_store:
                    other_store[other] = var
                    outcome.ops[
                        HardwareOp.QUERY_STORE
                        if side == "db"
                        else HardwareOp.DB_STORE
                    ] += 1
            return True
        # Cases 5b / 6b: subsequent occurrence -- fetch the association.
        assoc = store[var]
        if isinstance(assoc, Var):
            # Cases 5c / 6c: the association is itself a variable.
            if not self.cross_binding:
                # Original level-3 algorithm: cross bindings unchecked
                # (the plain fetch still happened).
                outcome.ops[
                    HardwareOp.DB_FETCH if side == "db" else HardwareOp.QUERY_FETCH
                ] += 1
                return True
            outcome.ops[
                HardwareOp.DB_CROSS_BOUND_FETCH
                if side == "db"
                else HardwareOp.QUERY_CROSS_BOUND_FETCH
            ] += 1
            ultimate = stores.deref(assoc, db_vars)
            if isinstance(ultimate, Var):
                # The whole reference chain is unbound: instantiate its
                # representative with the current term (mirrors binding the
                # equivalence class in full unification).
                if isinstance(other, Var):
                    if stores.deref(other, db_vars) == ultimate:
                        return True
                stores.store_for(ultimate, db_vars)[ultimate] = other
                return True
            assoc = ultimate
        else:
            outcome.ops[
                HardwareOp.DB_FETCH if side == "db" else HardwareOp.QUERY_FETCH
            ] += 1
        # Repeat the comparison with the fetched (non-variable) association;
        # the concrete compare is folded into the fetch operation above.
        # Cyclic bindings (possible without occurs check) would recurse
        # through this point forever at levels 4/5; a repeated comparison
        # of the same variable against the same term succeeds coinductively
        # (rational-tree unification semantics).
        guard = (side, var, other)
        if guard in stores.active:
            return True
        stores.active.add(guard)
        try:
            if side == "db":
                return self._match_pair(
                    assoc, other, depth, stores, db_vars, outcome, folded=True
                )
            return self._match_pair(
                other, assoc, depth, stores, db_vars, outcome, folded=True
            )
        finally:
            stores.active.discard(guard)

    # -- term comparison at the configured level ----------------------------

    def _compare(
        self,
        db_term: Term,
        query_term: Term,
        depth: int,
        stores: _Stores,
        db_vars: frozenset[Var],
        outcome: MatchOutcome,
        shallow: bool = False,
    ) -> bool:
        d_cat = _category(db_term)
        q_cat = _category(query_term)
        if d_cat != q_cat:
            return False
        if d_cat == "int":
            assert isinstance(db_term, Int) and isinstance(query_term, Int)
            return db_term.value == query_term.value
        if d_cat == "atom":
            assert isinstance(db_term, Atom) and isinstance(query_term, Atom)
            return db_term.name == query_term.name
        if d_cat == "float":
            assert isinstance(db_term, Float) and isinstance(query_term, Float)
            return db_term.value == query_term.value
        if d_cat == "list":
            return self._compare_lists(
                db_term, query_term, depth, stores, db_vars, outcome, shallow
            )
        assert isinstance(db_term, Struct) and isinstance(query_term, Struct)
        if db_term.functor != query_term.functor:
            return False
        if (
            db_term.arity > INLINE_ARITY_LIMIT
            or query_term.arity > INLINE_ARITY_LIMIT
        ):
            # Pointer-represented structures: the hardware compares the
            # (saturated) tag and the functor symbol like a simple term.
            return _tag_arity(db_term.arity) == _tag_arity(query_term.arity)
        if db_term.arity != query_term.arity:
            return False
        if shallow or not self._descend(depth):
            return True
        for d_el, q_el in zip(db_term.args, query_term.args):
            if not self._match_pair(d_el, q_el, depth + 1, stores, db_vars, outcome):
                return False
        return True

    def _compare_lists(
        self,
        db_term: Term,
        query_term: Term,
        depth: int,
        stores: _Stores,
        db_vars: frozenset[Var],
        outcome: MatchOutcome,
        shallow: bool = False,
    ) -> bool:
        d_items, d_tail = list_parts(db_term)
        q_items, q_tail = list_parts(query_term)
        d_open = isinstance(d_tail, Var)  # "unlimited" list, e.g. [a,b|T]
        q_open = isinstance(q_tail, Var)
        if len(d_items) > INLINE_ARITY_LIMIT or len(q_items) > INLINE_ARITY_LIMIT:
            # Pointer-represented lists: saturated-tag comparison only.
            if d_open or q_open:
                # An unlimited list can absorb any length difference.
                return True
            # Two terminated lists: in-line (<=31) can never equal
            # pointer-form (>31); two pointer forms are indistinguishable.
            return (len(d_items) > INLINE_ARITY_LIMIT) == (
                len(q_items) > INLINE_ARITY_LIMIT
            )
        if not d_open and not q_open and len(d_items) != len(q_items):
            # Two terminated lists: the tag arities must agree.
            return False
        if shallow or not self._descend(depth):
            return True
        # Repetitive matching: compare element pairs until either counter
        # reaches zero (the "unlimited list" rule when a tail variable is
        # present on either side).
        for d_el, q_el in zip(d_items, q_items):
            if not self._match_pair(d_el, q_el, depth + 1, stores, db_vars, outcome):
                return False
        if len(d_items) == len(q_items):
            # Both prefixes exhausted together: the tails meet.
            if d_tail == NIL and q_tail == NIL:
                return True
            return self._match_pair(d_tail, q_tail, depth + 1, stores, db_vars, outcome)
        # One counter reached zero first; at least one side is unlimited.
        # Binding the shorter side's tail variable to the remainder is
        # beyond level-3 hardware -- succeed conservatively.
        return True

    def _descend(self, depth: int) -> bool:
        """Should elements at ``depth + 1`` be compared at all?"""
        if self.level >= MatchLevel.FULL_STRUCTURES:
            return True
        if self.level == MatchLevel.FIRST_LEVEL_STRUCTURES:
            return depth == 0
        return False  # level 2: never descend into complex terms

    def _match_type_only(self, db_term: Term, query_term: Term) -> bool:
        """Level 1: compare PIF type tags only (variables are wildcards)."""
        if isinstance(db_term, Var) or isinstance(query_term, Var):
            return True
        d_cat = _category(db_term)
        q_cat = _category(query_term)
        if d_cat != q_cat:
            return False
        if d_cat == "int":
            # The in-line integer tag carries the most significant nibble.
            assert isinstance(db_term, Int) and isinstance(query_term, Int)
            return _int_tag_nibble(db_term.value) == _int_tag_nibble(query_term.value)
        if d_cat == "struct":
            # The structure tag carries the arity (functor is content).
            assert isinstance(db_term, Struct) and isinstance(query_term, Struct)
            return _tag_arity(db_term.arity) == _tag_arity(query_term.arity)
        if d_cat == "list":
            d_items, d_tail = list_parts(db_term)
            q_items, q_tail = list_parts(query_term)
            if (d_tail == NIL) != (q_tail == NIL):
                # Terminated vs unterminated tags differ, but an unlimited
                # list can still unify with a terminated one: wildcard.
                return True
            if d_tail == NIL and q_tail == NIL:
                return _tag_arity(len(d_items)) == _tag_arity(len(q_items))
            return True
        return True  # atoms/floats share a single tag per category


def _category(term: Term) -> str:
    if isinstance(term, Int):
        return "int"
    if isinstance(term, Float):
        return "float"
    if isinstance(term, Struct):
        if term.functor == CONS and term.arity == 2:
            return "list"
        return "struct"
    if isinstance(term, Atom):
        if term == NIL:
            return "list"
        return "atom"
    raise TypeError(f"unexpected term: {term!r}")


def _int_tag_nibble(value: int) -> int:
    """The most-significant nibble stored in the 0x1N integer tag."""
    return (value >> 24) & 0xF


def _tag_arity(arity: int) -> tuple[bool, int]:
    """The (in-line?, arity-field) pair carried in a complex-term tag.

    Arities above :data:`INLINE_ARITY_LIMIT` force pointer representation;
    the 5-bit arity field saturates at 31, so larger arities are
    indistinguishable from each other by tag (but always distinguishable
    from in-line terms, whose tag family differs).
    """
    return (arity <= INLINE_ARITY_LIMIT, min(arity, INLINE_ARITY_LIMIT))


def partial_match(
    query: Term,
    head: Term,
    level: MatchLevel | int = MatchLevel.FIRST_LEVEL_STRUCTURES,
    cross_binding: bool = True,
) -> bool:
    """One-shot convenience wrapper: does ``head`` pass the filter?"""
    matcher = PartialMatcher(query, level=level, cross_binding=cross_binding)
    return matcher.match_head(head).hit


def match_clause_head(
    query: Term,
    head: Term,
    level: MatchLevel | int = MatchLevel.FIRST_LEVEL_STRUCTURES,
    cross_binding: bool = True,
) -> MatchOutcome:
    """Like :func:`partial_match` but returns full op accounting."""
    matcher = PartialMatcher(query, level=level, cross_binding=cross_binding)
    return matcher.match_head(head)
