"""Substitutions and trails for unification.

:class:`Bindings` is a mutable variable->term store with dereferencing
(``walk``), deep application (``resolve``) and a trail so the interpreter
can undo bindings on backtracking.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..terms import Struct, Term, Var

__all__ = ["Bindings"]


class Bindings:
    """A mutable substitution with an undo trail.

    Bindings map variables to terms.  ``walk`` follows variable chains to
    the representative term; ``resolve`` applies the substitution deeply.
    ``mark``/``undo_to`` implement the trail used for backtracking.
    """

    __slots__ = ("_map", "_trail")

    def __init__(self, initial: Mapping[Var, Term] | None = None):
        self._map: dict[Var, Term] = dict(initial) if initial else {}
        self._trail: list[Var] = []

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, var: Var) -> bool:
        return var in self._map

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def copy(self) -> "Bindings":
        """An independent copy (the trail is not copied)."""
        return Bindings(self._map)

    def bind(self, var: Var, term: Term) -> None:
        """Bind an unbound ``var`` to ``term``, recording it on the trail."""
        if var in self._map:
            raise ValueError(f"variable {var.name} is already bound")
        self._map[var] = term
        self._trail.append(var)

    def walk(self, term: Term) -> Term:
        """Dereference ``term``: follow bound-variable chains to the end.

        Returns either a non-variable term or an unbound variable.
        """
        while isinstance(term, Var):
            bound = self._map.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def resolve(self, term: Term) -> Term:
        """Apply the substitution deeply to ``term``.

        Cyclic bindings (``X = f(X)``, legal without occurs check) are
        handled coinductively: re-entering a variable that is already
        being expanded stops the recursion and leaves the variable in
        place, so the result is always a finite term — ``X = f(X)``
        resolves to ``f(X)``, which prints and compares finitely.
        """
        return self._resolve(term, None)

    def _resolve(self, term: Term, active: set[Var] | None) -> Term:
        chain: set[Var] | None = None
        while isinstance(term, Var):
            if active is not None and term in active:
                return term
            bound = self._map.get(term)
            if bound is None:
                return term
            if isinstance(bound, Struct):
                # Expanding through this variable: guard against cycles.
                if active is None:
                    active = set()
                active.add(term)
                resolved = Struct(
                    bound.functor,
                    tuple(self._resolve(a, active) for a in bound.args),
                )
                active.discard(term)
                return resolved
            if isinstance(bound, Var):
                # Var-to-var chains can only cycle through direct bind()
                # misuse, but a wedged resolve is worse than a set probe.
                if chain is None:
                    chain = set()
                if term in chain:
                    return term
                chain.add(term)
            term = bound
        if isinstance(term, Struct):
            return Struct(
                term.functor,
                tuple(self._resolve(a, active) for a in term.args),
            )
        return term

    def is_ground(self, term: Term) -> bool:
        """True if ``term`` contains no unbound variable under this store.

        Cycle-safe: a variable reached again while its own binding is
        being expanded contributes nothing new (every variable on a
        binding cycle is bound by construction), so ``X = f(X)`` is
        ground, matching systems that support rational trees.
        """
        seen: set[Var] = set()
        stack = [term]
        while stack:
            current = stack.pop()
            while isinstance(current, Var):
                if current in seen:
                    break
                bound = self._map.get(current)
                if bound is None:
                    return False
                seen.add(current)
                current = bound
            if isinstance(current, Struct):
                stack.extend(current.args)
        return True

    def mark(self) -> int:
        """A trail checkpoint for later :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Remove every binding made since ``mark``."""
        while len(self._trail) > mark:
            var = self._trail.pop()
            del self._map[var]

    def as_dict(self) -> dict[Var, Term]:
        """A snapshot of the raw variable->term map."""
        return dict(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v.name}={t}" for v, t in self._map.items())
        return f"Bindings({inner})"
