"""Substitutions and trails for unification.

:class:`Bindings` is a mutable variable->term store with dereferencing
(``walk``), deep application (``resolve``) and a trail so the interpreter
can undo bindings on backtracking.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..terms import Struct, Term, Var

__all__ = ["Bindings"]


class Bindings:
    """A mutable substitution with an undo trail.

    Bindings map variables to terms.  ``walk`` follows variable chains to
    the representative term; ``resolve`` applies the substitution deeply.
    ``mark``/``undo_to`` implement the trail used for backtracking.
    """

    __slots__ = ("_map", "_trail")

    def __init__(self, initial: Mapping[Var, Term] | None = None):
        self._map: dict[Var, Term] = dict(initial) if initial else {}
        self._trail: list[Var] = []

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, var: Var) -> bool:
        return var in self._map

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def copy(self) -> "Bindings":
        """An independent copy (the trail is not copied)."""
        return Bindings(self._map)

    def bind(self, var: Var, term: Term) -> None:
        """Bind an unbound ``var`` to ``term``, recording it on the trail."""
        if var in self._map:
            raise ValueError(f"variable {var.name} is already bound")
        self._map[var] = term
        self._trail.append(var)

    def walk(self, term: Term) -> Term:
        """Dereference ``term``: follow bound-variable chains to the end.

        Returns either a non-variable term or an unbound variable.
        """
        while isinstance(term, Var):
            bound = self._map.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def resolve(self, term: Term) -> Term:
        """Apply the substitution deeply to ``term``."""
        term = self.walk(term)
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(self.resolve(a) for a in term.args))
        return term

    def mark(self) -> int:
        """A trail checkpoint for later :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Remove every binding made since ``mark``."""
        while len(self._trail) > mark:
            var = self._trail.pop()
            del self._map[var]

    def as_dict(self) -> dict[Var, Term]:
        """A snapshot of the raw variable->term map."""
        return dict(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v.name}={t}" for v, t in self._map.items())
        return f"Bindings({inner})"
