"""Unification and partial test unification (the Figure 1 algorithm)."""

from .bindings import Bindings
from .match import (
    HardwareOp,
    MatchLevel,
    MatchOutcome,
    PartialMatcher,
    match_clause_head,
    partial_match,
)
from .unify import occurs_in, unifiable, unify

__all__ = [
    "Bindings",
    "HardwareOp",
    "MatchLevel",
    "MatchOutcome",
    "PartialMatcher",
    "match_clause_head",
    "occurs_in",
    "partial_match",
    "unifiable",
    "unify",
]
