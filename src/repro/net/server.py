"""The asyncio retrieval service: CLARE behind a TCP socket.

One :class:`RetrievalService` owns a listening socket, a bounded thread
pool over a :class:`~repro.cluster.ShardedRetrievalServer` (the engines
are synchronous simulated hardware; the event loop must never block on
them), and an explicit admission controller:

* at most ``max_in_flight`` requests execute concurrently (the pool's
  workers — more would just convoy on the per-shard locks);
* at most ``queue_limit`` more may wait for a worker;
* anything beyond that is rejected *immediately* with a ``SERVER_BUSY``
  frame.  Overload therefore surfaces as fast, explicit rejections
  instead of unbounded queueing latency — the p99 of admitted requests
  stays bounded by design, which the overload test asserts.

Deadlines are enforced twice: a request that spent its whole budget
waiting for a worker fails with ``DEADLINE_EXPIRED`` before touching an
engine, and the remaining budget rides into the engine fan-out as the
:meth:`~repro.cluster.ShardedRetrievalServer.retrieve` ``timeout`` (a
stuck shard raises :class:`~repro.crs.RetrievalTimeout`, reported on
the same error frame).

Shutdown is a *drain*: stop accepting connections, refuse new requests
on live connections (``SHUTTING_DOWN``), let every admitted request
finish and flush its response, then close connections and stop the
pool.  Nothing admitted is ever dropped.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..engine.solve import SolveEngine
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from . import protocol
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DeadlineExceeded,
    ErrorCode,
    FrameType,
    ProtocolError,
)

__all__ = ["RetrievalService", "BackgroundService"]


class RetrievalService:
    """Serve ``retrieve``/``retrieve_batch`` over the wire protocol.

    ``engine`` is anything honouring the sharded server's contract —
    ``retrieve(goal, mode=..., timeout=...)`` and ``retrieve_batch`` —
    which in practice means a :class:`~repro.cluster.ShardedRetrievalServer`
    (a one-shard cluster wraps a single CLARE engine).
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 4,
        executor_workers: int | None = None,
        queue_limit: int = 16,
        default_deadline_s: float | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        obs: Instrumentation | None = None,
        manifest_holder=None,
    ):
        self.engine = engine
        #: optional :class:`~repro.cluster.ManifestHolder`; when set,
        #: ``REQ_MANIFEST`` serves its JSON and versioned mutations are
        #: checked against it (stale placement => ``STALE_MANIFEST``).
        self.manifest_holder = manifest_holder
        self.host = host
        self.port = port
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.default_deadline_s = default_deadline_s
        self.max_frame_bytes = max_frame_bytes
        self.obs = obs if obs is not None else _default_obs()
        # With a process-backed engine the pool threads mostly block in
        # ``Connection.recv`` (GIL released), so sizing the pool above
        # ``max_in_flight`` lets broadcast fan-out overlap across worker
        # processes; admission control still bounds concurrency at
        # ``max_in_flight`` requests.
        self.executor_workers = (
            executor_workers if executor_workers is not None else max_in_flight
        )
        if self.executor_workers < max_in_flight:
            raise ValueError(
                "executor_workers must be >= max_in_flight or admitted "
                "requests would starve in the pool queue"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers, thread_name_prefix="clare-net"
        )
        self._server: asyncio.AbstractServer | None = None
        self._admitted = 0  # queued + executing requests
        self._handled = 0  # admitted requests fully responded to
        self._inflight: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._drained = False
        self._done = asyncio.Event()
        self.max_requests: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def run(self, max_requests: int | None = None) -> None:
        """Start, serve until ``max_requests`` are handled, then drain.

        With ``max_requests=None`` this serves until cancelled; the
        drain still runs on the way out, so an outer ``CancelledError``
        (or KeyboardInterrupt turned into one) shuts down gracefully.
        """
        self.max_requests = max_requests
        if self._server is None:
            await self.start()
        try:
            await self._done.wait()
        finally:
            await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish every admitted request, flush stats."""
        if self._drained:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )
        for writer in list(self._connections):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._connections.clear()
        self._executor.shutdown(wait=True)
        self._drained = True
        self.obs.counter("net.drains").inc()
        self.obs.gauge("net.queue_depth").set(0)
        self.obs.gauge("net.in_flight").set(0)

    async def abort(self) -> None:
        """Die abruptly: drop connections and in-flight work on the floor.

        The crash-fault counterpart of :meth:`drain` (chaos testing,
        emergency shutdown): nothing is completed, nothing is flushed —
        clients see connection resets exactly as they would from a
        killed process, and recover via failover.
        """
        if self._drained:
            return
        self._draining = True
        self._drained = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        # Let the per-connection reader tasks observe their closed
        # transports and finish; torn down mid-read they would be
        # cancelled by loop shutdown and spray tracebacks instead.
        await asyncio.sleep(0.05)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.obs.counter("net.aborts").inc()
        self.obs.gauge("net.queue_depth").set(0)
        self.obs.gauge("net.in_flight").set(0)

    def stats_snapshot(self) -> dict:
        """The payload of a ``REQ_STATS`` response."""
        registry = self.obs.registry if self.obs.enabled else None
        return {
            "address": f"{self.host}:{self.port}",
            "handled": self._handled,
            "admitted_now": self._admitted,
            "draining": self._draining,
            "engine_clauses": self.engine.clause_count(),
            "registry": registry.snapshot() if registry is not None else {},
        }

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.obs.counter("net.connections").inc()
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    header = await reader.readexactly(protocol.HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer hung up (possibly mid-frame)
                try:
                    frame_type, request_id, length = protocol.decode_header(
                        header, self.max_frame_bytes
                    )
                    payload = await reader.readexactly(length)
                except ProtocolError as exc:
                    # Framing is unrecoverable: report and hang up.
                    self.obs.counter("net.bad_frames").inc()
                    await self._send_error(
                        writer, write_lock, 0, ErrorCode.BAD_REQUEST, str(exc)
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    self.obs.counter("net.truncated_frames").inc()
                    break
                self.obs.counter("net.bytes_in").inc(
                    protocol.HEADER.size + length
                )
                await self._dispatch(
                    writer, write_lock, frame_type, request_id, payload
                )
        finally:
            self._connections.discard(writer)
            self.obs.counter("net.disconnects").inc()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
    ) -> None:
        if frame_type is FrameType.REQ_PING:
            await self._send(writer, write_lock, FrameType.RESP_PONG,
                             request_id, b"")
            return
        if frame_type is FrameType.REQ_STATS:
            await self._send(
                writer, write_lock, FrameType.RESP_STATS, request_id,
                protocol.encode_stats_response(self.stats_snapshot()),
            )
            return
        if frame_type is FrameType.REQ_MANIFEST:
            if self.manifest_holder is None:
                await self._send_error(
                    writer, write_lock, request_id, ErrorCode.BAD_REQUEST,
                    "this node serves no cluster manifest",
                )
                return
            await self._send(
                writer, write_lock, FrameType.RESP_MANIFEST, request_id,
                protocol.encode_manifest_response(
                    self.manifest_holder.current.to_json()
                ),
            )
            return
        if frame_type not in (
            FrameType.REQ_RETRIEVE, FrameType.REQ_RETRIEVE_BATCH,
            FrameType.REQ_SOLVE, FrameType.REQ_MUTATE,
        ):
            await self._send_error(
                writer, write_lock, request_id, ErrorCode.BAD_REQUEST,
                f"unexpected frame type {frame_type.name}",
            )
            return
        # -- admission control ------------------------------------------
        if self._draining:
            await self._send_error(
                writer, write_lock, request_id, ErrorCode.SHUTTING_DOWN,
                "server is draining",
            )
            return
        if self._admitted >= self.max_in_flight + self.queue_limit:
            self.obs.counter("net.busy_rejected").inc()
            await self._send_error(
                writer, write_lock, request_id, ErrorCode.SERVER_BUSY,
                f"{self._admitted} requests already admitted",
            )
            return
        self._admitted += 1
        self.obs.counter("net.accepted").inc()
        self._update_load_gauges()
        if frame_type is FrameType.REQ_SOLVE:
            handler = self._serve_solve
        elif frame_type is FrameType.REQ_MUTATE:
            handler = self._serve_mutate
        else:
            handler = self._serve_request
        task = asyncio.create_task(
            handler(writer, write_lock, frame_type, request_id, payload)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    # -- request execution ---------------------------------------------------

    async def _serve_request(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
    ) -> None:
        started = time.monotonic()
        batch = frame_type is FrameType.REQ_RETRIEVE_BATCH
        try:
            try:
                if batch:
                    goals, mode, deadline_ms = protocol.decode_batch_request(
                        payload
                    )
                else:
                    goal, mode, deadline_ms = protocol.decode_retrieve_request(
                        payload
                    )
                    goals = [goal]
            except Exception as exc:
                code, message = protocol.exception_to_error(
                    exc if isinstance(exc, ProtocolError)
                    else ProtocolError(f"undecodable request: {exc}")
                )
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
                return
            deadline = None
            if deadline_ms:
                deadline = started + deadline_ms / 1000.0
            elif self.default_deadline_s is not None:
                deadline = started + self.default_deadline_s

            def work():
                # Runs on a pool worker: the queue wait is over, check
                # whether the deadline already passed before touching
                # the (uninterruptible) simulated hardware.
                queue_wait_s = time.monotonic() - started
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"deadline expired after {queue_wait_s * 1e3:.1f}"
                            "ms in the accept queue"
                        )
                with self.obs.span(
                    "net.request",
                    type=frame_type.name,
                    request_id=request_id,
                    goals=len(goals),
                ) as span:
                    span.set(queue_wait_ms=round(queue_wait_s * 1e3, 3))
                    if batch:
                        return self.engine.retrieve_batch(
                            goals, mode=mode, timeout=remaining
                        )
                    return self.engine.retrieve(
                        goals[0], mode=mode, timeout=remaining
                    )

            loop = asyncio.get_running_loop()
            try:
                outcome = await loop.run_in_executor(self._executor, work)
            except Exception as exc:
                code, message = protocol.exception_to_error(exc)
                if code is ErrorCode.DEADLINE_EXPIRED:
                    self.obs.counter("net.deadline_expired").inc()
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
                return
            if batch:
                response = protocol.encode_batch_response(outcome)
                await self._send(
                    writer, write_lock, FrameType.RESP_BATCH, request_id,
                    response,
                )
            else:
                response = protocol.encode_result_response(outcome)
                await self._send(
                    writer, write_lock, FrameType.RESP_RESULT, request_id,
                    response,
                )
        finally:
            self._admitted -= 1
            self._handled += 1
            self._update_load_gauges()
            self.obs.histogram("net.request_ms").observe(
                (time.monotonic() - started) * 1e3
            )
            if (
                self.max_requests is not None
                and self._handled >= self.max_requests
            ):
                self._done.set()

    async def _serve_mutate(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
    ) -> None:
        """Apply one assert/retract against this node's engine.

        A versioned request (``manifest_version != 0``) is rejected with
        ``STALE_MANIFEST`` when it does not match the node's current
        manifest — the client routed under placement that no longer
        holds, and applying the write could land it on a replica set the
        cluster has already moved away from.
        """
        started = time.monotonic()
        try:
            try:
                op, clause, module, manifest_version, deadline_ms, write_id = (
                    protocol.decode_mutate_request(payload)
                )
            except Exception as exc:
                code, message = protocol.exception_to_error(
                    exc if isinstance(exc, ProtocolError)
                    else ProtocolError(f"undecodable request: {exc}")
                )
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
                return
            if self.manifest_holder is not None and manifest_version:
                current = self.manifest_holder.version
                if manifest_version != current:
                    self.obs.counter("net.stale_manifest").inc()
                    await self._send_error(
                        writer, write_lock, request_id,
                        ErrorCode.STALE_MANIFEST,
                        f"request routed under manifest version "
                        f"{manifest_version}; node is at {current}",
                    )
                    return
            deadline = None
            if deadline_ms:
                deadline = started + deadline_ms / 1000.0
            elif self.default_deadline_s is not None:
                deadline = started + self.default_deadline_s

            def work():
                queue_wait_s = time.monotonic() - started
                if deadline is not None and time.monotonic() >= deadline:
                    raise DeadlineExceeded(
                        f"deadline expired after {queue_wait_s * 1e3:.1f}"
                        "ms in the accept queue"
                    )
                with self.obs.span(
                    "net.mutate", op=op, request_id=request_id
                ):
                    stamp = write_id or None
                    removed = None
                    if op == "assertz":
                        self.engine.assertz(
                            clause, module=module, write_id=stamp
                        )
                        applied = True
                    elif op == "asserta":
                        self.engine.asserta(
                            clause, module=module, write_id=stamp
                        )
                        applied = True
                    elif op == "retract":
                        removed = self.engine.retract_matching(
                            clause, write_id=stamp
                        )
                        applied = removed is not None
                    else:  # retract_exact
                        applied = self.engine.remove_exact(
                            clause, write_id=stamp
                        )
                    return applied, removed

            loop = asyncio.get_running_loop()
            try:
                applied, removed = await loop.run_in_executor(
                    self._executor, work
                )
            except Exception as exc:
                code, message = protocol.exception_to_error(exc)
                if code is ErrorCode.DEADLINE_EXPIRED:
                    self.obs.counter("net.deadline_expired").inc()
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
                return
            self.obs.counter("net.mutations", op=op).inc()
            await self._send(
                writer, write_lock, FrameType.RESP_MUTATED, request_id,
                protocol.encode_mutated_response(
                    self.engine.version, applied, removed
                ),
            )
        finally:
            self._admitted -= 1
            self._handled += 1
            self._update_load_gauges()
            self.obs.histogram("net.request_ms").observe(
                (time.monotonic() - started) * 1e3
            )
            if (
                self.max_requests is not None
                and self._handled >= self.max_requests
            ):
                self._done.set()

    async def _serve_solve(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
    ) -> None:
        """Run a ``solve`` request, streaming one frame per solution.

        The resolution loop runs on a pool worker (the engines are
        synchronous); each answer crosses back to the event loop as its
        own ``RESP_SOLUTION`` frame, *blocking the worker until the frame
        is flushed* so a slow client exerts backpressure on the search
        instead of buffering unbounded solutions server-side.  The
        stream ends with ``RESP_SOLVE_DONE`` (exhausted or capped) or a
        ``RESP_ERROR`` frame (deadline expired, resource budget blown,
        resolution error) — either way the admitted request is not done
        until the trailer is flushed, which is what drain waits on.
        """
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            try:
                goal, engine_name, mode, deadline_ms, max_solutions = (
                    protocol.decode_solve_request(payload)
                )
            except Exception as exc:
                code, message = protocol.exception_to_error(
                    exc if isinstance(exc, ProtocolError)
                    else ProtocolError(f"undecodable request: {exc}")
                )
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
                return
            deadline = None
            if deadline_ms:
                deadline = started + deadline_ms / 1000.0
            elif self.default_deadline_s is not None:
                deadline = started + self.default_deadline_s

            def send_from_worker(resp_type, frame_payload):
                sent = asyncio.run_coroutine_threadsafe(
                    self._send(
                        writer, write_lock, resp_type, request_id,
                        frame_payload,
                    ),
                    loop,
                ).result()
                if not sent:
                    # The client went away mid-stream: abort the search
                    # rather than resolving into a dead socket (an
                    # infinite answer stream would otherwise pin this
                    # worker and stall drain forever).
                    raise ConnectionError("solve client disconnected")

            def work():
                queue_wait_s = time.monotonic() - started
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"deadline expired after {queue_wait_s * 1e3:.1f}"
                            "ms in the accept queue"
                        )
                solver = SolveEngine(self.engine, mode=mode, engine=engine_name)
                count = 0
                with self.obs.span(
                    "net.solve",
                    engine=engine_name,
                    request_id=request_id,
                ) as span:
                    span.set(queue_wait_ms=round(queue_wait_s * 1e3, 3))
                    for solution in solver.solve(
                        goal,
                        deadline_s=remaining,
                        max_solutions=max_solutions,
                    ):
                        send_from_worker(
                            FrameType.RESP_SOLUTION,
                            protocol.encode_solution(count, solution),
                        )
                        count += 1
                    span.set(solutions=count)
                capped = bool(max_solutions) and count >= max_solutions
                send_from_worker(
                    FrameType.RESP_SOLVE_DONE,
                    protocol.encode_solve_done(
                        count,
                        completed=not capped,
                        reason="solution cap reached" if capped else "",
                    ),
                )

            try:
                await loop.run_in_executor(self._executor, work)
                self.obs.counter("net.solves").inc()
            except Exception as exc:
                code, message = protocol.exception_to_error(exc)
                if code is ErrorCode.DEADLINE_EXPIRED:
                    self.obs.counter("net.deadline_expired").inc()
                await self._send_error(
                    writer, write_lock, request_id, code, message
                )
        finally:
            self._admitted -= 1
            self._handled += 1
            self._update_load_gauges()
            self.obs.histogram("net.request_ms").observe(
                (time.monotonic() - started) * 1e3
            )
            if (
                self.max_requests is not None
                and self._handled >= self.max_requests
            ):
                self._done.set()

    # -- plumbing ------------------------------------------------------------

    def _update_load_gauges(self) -> None:
        self.obs.gauge("net.in_flight").set(
            min(self._admitted, self.max_in_flight)
        )
        self.obs.gauge("net.queue_depth").set(
            max(0, self._admitted - self.max_in_flight)
        )

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
    ) -> bool:
        frame = protocol.encode_frame(frame_type, request_id, payload)
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            self.obs.counter("net.send_failures").inc()
            return False
        self.obs.counter("net.bytes_out").inc(len(frame))
        self.obs.counter("net.responses", type=frame_type.name).inc()
        return True

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request_id: int,
        code: ErrorCode,
        message: str,
    ) -> None:
        self.obs.counter("net.errors", code=code.name).inc()
        await self._send(
            writer, write_lock, FrameType.RESP_ERROR, request_id,
            protocol.encode_error(code, message),
        )


class BackgroundService:
    """Run a :class:`RetrievalService` event loop on a daemon thread.

    Synchronous drivers (the CLI's client side, pytest, the loadgen
    benchmark harness) need a live server without owning an event loop;
    this wrapper runs one, exposes the bound address, and turns
    :meth:`stop` into a loop-side graceful drain.
    """

    def __init__(self, service: RetrievalService):
        self.service = service
        self._ready = threading.Event()
        self._stop = None  # asyncio.Event, created on the loop
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._abort = False

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start the loop thread; returns the bound (host, port).

        Idempotent: a second call (e.g. ``with BackgroundService(...)``
        plus an explicit ``start()``) waits on the same loop thread
        instead of spawning a competing one.
        """
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="clare-net-loop", daemon=True
            )
            self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("network service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"network service failed to start: {self._startup_error}"
            )
        return self.service.address

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as exc:  # bind failures must not hang start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        if self._abort:
            await self.service.abort()
        else:
            await self.service.drain()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the service and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Crash the service: abort instead of drain, then join."""
        self._abort = True
        self.stop(timeout)

    def __enter__(self) -> "BackgroundService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
