"""Network serving for CLARE: wire protocol, asyncio server, clients.

The paper's engine is a *server* a host Prolog system queries; this
package puts the in-process :class:`~repro.cluster.ShardedRetrievalServer`
behind an actual socket.  ``protocol`` defines the length-prefixed frame
format (reusing the PIF encoder and symbol table), ``server`` is the
asyncio front-end with admission control and deadlines, and ``client``
holds the pooled sync and async clients with retry/backoff.
"""

from .client import (
    AddressHealth,
    AsyncRetrievalClient,
    BackoffPolicy,
    ConnectError,
    FailoverClient,
    RetrievalClient,
)
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DeadlineExceeded,
    ErrorCode,
    FrameType,
    NetError,
    ProtocolError,
    RemoteError,
    ServerBusy,
    ServerDraining,
    StaleManifest,
)
from .server import BackgroundService, RetrievalService

__all__ = [
    "AddressHealth",
    "AsyncRetrievalClient",
    "BackgroundService",
    "BackoffPolicy",
    "ConnectError",
    "DEFAULT_MAX_FRAME_BYTES",
    "DeadlineExceeded",
    "ErrorCode",
    "FailoverClient",
    "FrameType",
    "NetError",
    "ProtocolError",
    "RemoteError",
    "RetrievalClient",
    "RetrievalService",
    "ServerBusy",
    "ServerDraining",
    "StaleManifest",
]
