"""The CLARE wire protocol: length-prefixed binary frames over TCP.

The paper positions the retrieval engine as a *server* a host Prolog
system talks to; this module defines what actually crosses that wire.
Every message is one **frame**::

    +0   u16  magic (0xC1AE)
    +2   u8   protocol version (1)
    +3   u8   frame type
    +4   u32  request id (echoed verbatim in the response)
    +8   u32  payload length
    +12  ...  payload

and requests/responses are matched by request id, so one connection can
carry many concurrent retrievals (the server multiplexes; the clients
pipeline).  A reader that sees a bad magic, an unknown version, or a
declared payload longer than its ``max_frame_bytes`` budget raises
:class:`ProtocolError` and must drop the connection — framing cannot be
resynchronised once trust in the length prefix is gone.

Payloads reuse the existing PIF machinery end to end: goals travel as
query-side PIF item streams, candidate clauses as the same compiled
records that stream off the simulated disk, and each frame carries its
own miniature :class:`~repro.pif.SymbolTable` so a message is fully
self-contained — no connection-level symbol state to leak, resync, or
poison.  :class:`~repro.crs.RetrievalStats` (and the cluster's
:class:`~repro.cluster.MergedRetrievalStats`, per-shard split included)
serialise field-for-field, so a client-side stats object compares equal
to the in-process one — the loopback differential suite relies on it.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import IntEnum

from ..cluster import MergedRetrievalStats, WritesFrozen
from ..crs import RetrievalResult, RetrievalStats, RetrievalTimeout, SearchMode
from ..engine.interp import PrologError, ResourceError
from ..pif import CompiledClause, PIFDecoder, PIFEncoder, SymbolTable, compile_clause
from ..pif.encoder import EncodedArgs
from ..storage import UnknownPredicateError
from ..terms import Clause, Term

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameType",
    "ErrorCode",
    "Frame",
    "ProtocolError",
    "NetError",
    "ServerBusy",
    "ServerDraining",
    "DeadlineExceeded",
    "StaleManifest",
    "WritesFrozen",
    "RemoteError",
    "encode_frame",
    "decode_header",
    "encode_retrieve_request",
    "decode_retrieve_request",
    "encode_batch_request",
    "decode_batch_request",
    "encode_result_response",
    "decode_result_response",
    "encode_batch_response",
    "decode_batch_response",
    "encode_solve_request",
    "decode_solve_request",
    "encode_solution",
    "decode_solution",
    "encode_solve_done",
    "decode_solve_done",
    "encode_mutate_request",
    "decode_mutate_request",
    "encode_mutated_response",
    "decode_mutated_response",
    "encode_manifest_response",
    "decode_manifest_response",
    "encode_error",
    "decode_error",
    "encode_stats_response",
    "decode_stats_response",
    "error_to_exception",
    "exception_to_error",
]

MAGIC = 0xC1AE
VERSION = 1
HEADER = struct.Struct(">HBBII")

#: Hard ceiling on one frame's payload.  A batch of Result-Memory-sized
#: clause records fits comfortably; a length prefix claiming more is a
#: corrupt or hostile peer, not a big retrieval.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameType(IntEnum):
    REQ_RETRIEVE = 0x01
    REQ_RETRIEVE_BATCH = 0x02
    REQ_STATS = 0x03
    REQ_PING = 0x04
    REQ_SOLVE = 0x05
    REQ_MUTATE = 0x06
    REQ_MANIFEST = 0x07
    RESP_RESULT = 0x11
    RESP_BATCH = 0x12
    RESP_STATS = 0x13
    RESP_PONG = 0x14
    RESP_SOLUTION = 0x15
    RESP_SOLVE_DONE = 0x16
    RESP_MUTATED = 0x17
    RESP_MANIFEST = 0x18
    RESP_ERROR = 0x1F


class ErrorCode(IntEnum):
    SERVER_BUSY = 1
    DEADLINE_EXPIRED = 2
    UNKNOWN_PREDICATE = 3
    BAD_REQUEST = 4
    SHUTTING_DOWN = 5
    INTERNAL = 6
    RESOURCE_EXHAUSTED = 7
    RESOLUTION_ERROR = 8
    STALE_MANIFEST = 9
    WRITE_FROZEN = 10


class ProtocolError(ValueError):
    """A malformed frame: bad magic/version, truncation, oversize."""


class NetError(RuntimeError):
    """Base class for errors the service reports over the wire."""


class ServerBusy(NetError):
    """Admission control rejected the request (``SERVER_BUSY`` frame)."""


class ServerDraining(NetError):
    """The server is shutting down and accepts no new requests."""


class DeadlineExceeded(NetError):
    """The request's deadline expired (in queue, in flight, or client-side)."""


class StaleManifest(NetError):
    """The request was tagged with an out-of-date cluster manifest version.

    The message carries the node's current version as text; clients
    re-fetch the manifest (``REQ_MANIFEST``) and re-route, rather than
    applying a write against placement that no longer holds.
    """


class RemoteError(NetError):
    """The server failed internally or rejected the request as malformed."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type, correlation id, raw payload."""

    type: FrameType
    request_id: int
    payload: bytes


def encode_frame(frame_type: FrameType, request_id: int, payload: bytes) -> bytes:
    return HEADER.pack(
        MAGIC, VERSION, int(frame_type), request_id, len(payload)
    ) + payload


def decode_header(
    data: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[FrameType, int, int]:
    """Parse a 12-byte header; returns (type, request id, payload length)."""
    if len(data) != HEADER.size:
        raise ProtocolError(f"header is {len(data)} bytes, need {HEADER.size}")
    magic, version, frame_type, request_id, length = HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    try:
        frame_type = FrameType(frame_type)
    except ValueError:
        raise ProtocolError(f"unknown frame type 0x{frame_type:02x}") from None
    if length > max_frame_bytes:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return frame_type, request_id, length


# -- payload primitives -------------------------------------------------------


class _Writer:
    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        self.buf.append(value & 0xFF)

    def u16(self, value: int) -> None:
        self.buf += value.to_bytes(2, "big")

    def u32(self, value: int) -> None:
        self.buf += value.to_bytes(4, "big")

    def u64(self, value: int) -> None:
        self.buf += value.to_bytes(8, "big")

    def f64(self, value: float) -> None:
        self.buf += struct.pack(">d", value)

    def blob16(self, data: bytes) -> None:
        self.u16(len(data))
        self.buf += data

    def text(self, value: str) -> None:
        self.blob16(value.encode("utf-8"))


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError("truncated payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def blob16(self) -> bytes:
        return self._take(self.u16())

    def text(self) -> str:
        return self.blob16().decode("utf-8")

    def at_end(self) -> bool:
        return self.pos >= len(self.data)


class PayloadEncoder:
    """One payload under construction, with its own symbol table.

    Terms intern into the per-message table while the body is written;
    :meth:`finish` prepends the serialised table so the receiver can
    decode without any shared connection state.
    """

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.body = _Writer()

    def goal(self, goal: Term) -> None:
        encoded = PIFEncoder(self.symbols, side="query").encode_term(goal)
        self._encoded_args(encoded)

    def clause(self, clause: Clause) -> None:
        compiled = compile_clause(clause, self.symbols)
        name, arity = compiled.indicator
        self.body.u32(self.symbols.intern_atom(name))
        self.body.u16(arity)
        self.body.blob16(compiled.to_bytes())

    def _encoded_args(self, encoded: EncodedArgs) -> None:
        self.body.blob16(encoded.stream)
        self.body.blob16(encoded.heap)
        self.body.u8(len(encoded.var_names))
        for var_name in encoded.var_names:
            self.body.text(var_name)

    def stats(self, stats: RetrievalStats | None) -> None:
        write = self.body
        if stats is None:
            write.u8(0xFF)
            return
        merged = isinstance(stats, MergedRetrievalStats)
        write.u8(1 if merged else 0)
        self._stats_fields(stats)
        if merged:
            write.u16(stats.shards_queried)
            write.u8(1 if stats.broadcast else 0)
            write.u16(len(stats.per_shard))
            for shard_id in sorted(stats.per_shard):
                write.u16(shard_id)
                self._stats_fields(stats.per_shard[shard_id])

    def _stats_fields(self, stats: RetrievalStats) -> None:
        write = self.body
        write.u8(tuple(SearchMode).index(stats.mode))
        write.text(stats.residency)
        write.u32(stats.clauses_total)
        fs1 = stats.fs1_candidates
        write.u8(0 if fs1 is None else 1)
        write.u32(fs1 or 0)
        write.u32(stats.final_candidates)
        write.u32(stats.fs2_search_calls)
        write.u64(stats.bytes_from_disk)
        write.f64(stats.disk_time_s)
        write.f64(stats.fs1_time_s)
        write.f64(stats.fs2_time_s)
        write.f64(stats.software_time_s)

    def result(self, result: RetrievalResult) -> None:
        self.goal(result.goal)
        self.body.u32(len(result.candidates))
        for clause in result.candidates:
            self.clause(clause)
        self.stats(result.stats)

    def finish(self) -> bytes:
        table = self.symbols.to_bytes()
        return len(table).to_bytes(4, "big") + table + bytes(self.body.buf)


class PayloadDecoder:
    """The reading side of :class:`PayloadEncoder`."""

    def __init__(self, payload: bytes) -> None:
        if len(payload) < 4:
            raise ProtocolError("truncated payload")
        table_len = int.from_bytes(payload[:4], "big")
        if 4 + table_len > len(payload):
            raise ProtocolError("truncated symbol table")
        try:
            self.symbols = SymbolTable.from_bytes(payload[4 : 4 + table_len])
        except (IndexError, ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"corrupt symbol table: {exc}") from None
        self.body = _Reader(payload[4 + table_len :])
        self._decoder = PIFDecoder(self.symbols)

    def goal(self) -> Term:
        return self._decoder.decode_term(self._encoded_args())

    def clause(self) -> Clause:
        from ..pif.clausefile import decode_compiled

        name = self.symbols.atom_name_at(self.body.u32())
        arity = self.body.u16()
        record = self.body.blob16()
        compiled, _ = CompiledClause.from_bytes(record, (name, arity))
        return decode_compiled(compiled, self.symbols)

    def _encoded_args(self) -> EncodedArgs:
        stream = self.body.blob16()
        heap = self.body.blob16()
        var_names = tuple(self.body.text() for _ in range(self.body.u8()))
        return EncodedArgs(
            indicator=("$term", 1), stream=stream, heap=heap,
            var_names=var_names,
        )

    def stats(self) -> RetrievalStats | None:
        kind = self.body.u8()
        if kind == 0xFF:
            return None
        if kind not in (0, 1):
            raise ProtocolError(f"unknown stats kind {kind}")
        fields = self._stats_fields()
        if kind == 0:
            return RetrievalStats(**fields)
        shards_queried = self.body.u16()
        broadcast = self.body.u8() == 1
        per_shard: dict[int, RetrievalStats] = {}
        for _ in range(self.body.u16()):
            shard_id = self.body.u16()
            per_shard[shard_id] = RetrievalStats(**self._stats_fields())
        return MergedRetrievalStats(
            shards_queried=shards_queried,
            broadcast=broadcast,
            per_shard=per_shard,
            **fields,
        )

    def _stats_fields(self) -> dict:
        read = self.body
        mode_index = read.u8()
        modes = tuple(SearchMode)
        if mode_index >= len(modes):
            raise ProtocolError(f"unknown search mode index {mode_index}")
        residency = read.text()
        clauses_total = read.u32()
        has_fs1 = read.u8()
        fs1_raw = read.u32()
        return {
            "mode": modes[mode_index],
            "residency": residency,
            "clauses_total": clauses_total,
            "fs1_candidates": fs1_raw if has_fs1 else None,
            "final_candidates": read.u32(),
            "fs2_search_calls": read.u32(),
            "bytes_from_disk": read.u64(),
            "disk_time_s": read.f64(),
            "fs1_time_s": read.f64(),
            "fs2_time_s": read.f64(),
            "software_time_s": read.f64(),
        }

    def result(self) -> RetrievalResult:
        goal = self.goal()
        candidates = [self.clause() for _ in range(self.body.u32())]
        return RetrievalResult(
            goal=goal, candidates=candidates, stats=self.stats()
        )


# -- request payloads ---------------------------------------------------------


def _mode_byte(mode: SearchMode | None) -> int:
    return 0xFF if mode is None else tuple(SearchMode).index(mode)


def _mode_from_byte(value: int) -> SearchMode | None:
    if value == 0xFF:
        return None
    modes = tuple(SearchMode)
    if value >= len(modes):
        raise ProtocolError(f"unknown search mode index {value}")
    return modes[value]


def encode_retrieve_request(
    goal: Term, mode: SearchMode | None = None, deadline_ms: int = 0
) -> bytes:
    encoder = PayloadEncoder()
    encoder.body.u8(_mode_byte(mode))
    encoder.body.u32(max(0, deadline_ms))
    encoder.goal(goal)
    return encoder.finish()


def decode_retrieve_request(payload: bytes) -> tuple[Term, SearchMode | None, int]:
    decoder = PayloadDecoder(payload)
    mode = _mode_from_byte(decoder.body.u8())
    deadline_ms = decoder.body.u32()
    return decoder.goal(), mode, deadline_ms


def encode_batch_request(
    goals: list[Term], mode: SearchMode | None = None, deadline_ms: int = 0
) -> bytes:
    encoder = PayloadEncoder()
    encoder.body.u8(_mode_byte(mode))
    encoder.body.u32(max(0, deadline_ms))
    encoder.body.u16(len(goals))
    for goal in goals:
        encoder.goal(goal)
    return encoder.finish()


def decode_batch_request(
    payload: bytes,
) -> tuple[list[Term], SearchMode | None, int]:
    decoder = PayloadDecoder(payload)
    mode = _mode_from_byte(decoder.body.u8())
    deadline_ms = decoder.body.u32()
    goals = [decoder.goal() for _ in range(decoder.body.u16())]
    return goals, mode, deadline_ms


#: Engine selectors for a ``REQ_SOLVE`` frame.
_SOLVE_ENGINES = ("zip", "interp")


def encode_solve_request(
    goal: Term,
    engine: str = "zip",
    mode: SearchMode | None = None,
    deadline_ms: int = 0,
    max_solutions: int = 0,
) -> bytes:
    """A ``REQ_SOLVE`` payload: resolve ``goal`` and stream every answer."""
    if engine not in _SOLVE_ENGINES:
        raise ValueError(f"unknown solve engine {engine!r}")
    encoder = PayloadEncoder()
    encoder.body.u8(_SOLVE_ENGINES.index(engine))
    encoder.body.u8(_mode_byte(mode))
    encoder.body.u32(max(0, deadline_ms))
    encoder.body.u32(max(0, max_solutions))
    encoder.goal(goal)
    return encoder.finish()


def decode_solve_request(
    payload: bytes,
) -> tuple[Term, str, SearchMode | None, int, int]:
    decoder = PayloadDecoder(payload)
    engine_index = decoder.body.u8()
    if engine_index >= len(_SOLVE_ENGINES):
        raise ProtocolError(f"unknown solve engine index {engine_index}")
    mode = _mode_from_byte(decoder.body.u8())
    deadline_ms = decoder.body.u32()
    max_solutions = decoder.body.u32()
    return decoder.goal(), _SOLVE_ENGINES[engine_index], mode, deadline_ms, max_solutions


def encode_solution(index: int, bindings: dict[str, Term]) -> bytes:
    """One ``RESP_SOLUTION`` frame: answer ``index`` (0-based), one term
    per query variable.  Each frame carries its own symbol table, so a
    client can decode any prefix of the stream the deadline allows."""
    encoder = PayloadEncoder()
    encoder.body.u32(index)
    encoder.body.u16(len(bindings))
    for name in sorted(bindings):
        encoder.body.text(name)
        encoder.goal(bindings[name])
    return encoder.finish()


def decode_solution(payload: bytes) -> tuple[int, dict[str, Term]]:
    decoder = PayloadDecoder(payload)
    index = decoder.body.u32()
    bindings: dict[str, Term] = {}
    for _ in range(decoder.body.u16()):
        name = decoder.body.text()
        bindings[name] = decoder.goal()
    return index, bindings


def encode_solve_done(count: int, completed: bool, reason: str = "") -> bytes:
    """The ``RESP_SOLVE_DONE`` trailer: how many solutions were streamed
    and whether the search ran to exhaustion (``completed``) or stopped
    early (``max_solutions`` cap — ``reason`` says which)."""
    writer = _Writer()
    writer.u32(count)
    writer.u8(1 if completed else 0)
    writer.text(reason)
    return bytes(writer.buf)


def decode_solve_done(payload: bytes) -> tuple[int, bool, str]:
    reader = _Reader(payload)
    return reader.u32(), reader.u8() == 1, reader.text()


#: Mutation operations a ``REQ_MUTATE`` frame can carry.  ``retract``
#: removes the first clause *unifying* with the template (and reports
#: which); ``retract_exact`` removes only a structurally identical
#: clause — the replication-safe form a client replays onto the other
#: replicas after the first replica has chosen the victim.
MUTATION_OPS = ("assertz", "asserta", "retract", "retract_exact")


def encode_mutate_request(
    op: str,
    clause: Clause,
    module: str = "user",
    manifest_version: int = 0,
    deadline_ms: int = 0,
    write_id: str = "",
) -> bytes:
    """A ``REQ_MUTATE`` payload.  ``manifest_version`` is the placement
    the client routed under; 0 means "unversioned" (single-node use) and
    is never rejected as stale.  ``write_id`` is the client's
    idempotency stamp for the logical write — one id per write, reused
    across re-routes and replica fan-out, so a node that sees the same
    id twice (directly and via a migration delta replay) applies it
    once.  Empty means unstamped; the field is a trailing addition, so
    old decoders simply ignore it and old frames decode as unstamped."""
    if op not in MUTATION_OPS:
        raise ValueError(f"unknown mutation op {op!r}")
    encoder = PayloadEncoder()
    encoder.body.u8(MUTATION_OPS.index(op))
    encoder.body.u32(max(0, manifest_version))
    encoder.body.u32(max(0, deadline_ms))
    encoder.body.text(module)
    encoder.clause(clause)
    encoder.body.text(write_id)
    return encoder.finish()


def decode_mutate_request(
    payload: bytes,
) -> tuple[str, Clause, str, int, int, str]:
    decoder = PayloadDecoder(payload)
    op_index = decoder.body.u8()
    if op_index >= len(MUTATION_OPS):
        raise ProtocolError(f"unknown mutation op index {op_index}")
    manifest_version = decoder.body.u32()
    deadline_ms = decoder.body.u32()
    module = decoder.body.text()
    clause = decoder.clause()
    write_id = "" if decoder.body.at_end() else decoder.body.text()
    return (
        MUTATION_OPS[op_index], clause, module, manifest_version,
        deadline_ms, write_id,
    )


def encode_mutated_response(
    version: int, applied: bool, removed: Clause | None = None
) -> bytes:
    """A ``RESP_MUTATED`` payload: the engine's post-mutation version,
    whether anything changed (retracts can miss), and — for unifying
    retracts — the exact clause removed, so the client can replay it
    verbatim on the remaining replicas."""
    encoder = PayloadEncoder()
    encoder.body.u64(version)
    encoder.body.u8(1 if applied else 0)
    encoder.body.u8(1 if removed is not None else 0)
    if removed is not None:
        encoder.clause(removed)
    return encoder.finish()


def decode_mutated_response(payload: bytes) -> tuple[int, bool, Clause | None]:
    decoder = PayloadDecoder(payload)
    version = decoder.body.u64()
    applied = decoder.body.u8() == 1
    removed = decoder.clause() if decoder.body.u8() == 1 else None
    return version, applied, removed


def encode_manifest_response(manifest_json: str) -> bytes:
    """A ``RESP_MANIFEST`` payload: the node's current cluster manifest
    as JSON (see :meth:`repro.cluster.ClusterManifest.to_json`)."""
    return manifest_json.encode("utf-8")


def decode_manifest_response(payload: bytes) -> str:
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"corrupt manifest payload: {exc}") from None


# -- response payloads --------------------------------------------------------


def encode_result_response(result: RetrievalResult) -> bytes:
    encoder = PayloadEncoder()
    encoder.result(result)
    return encoder.finish()


def decode_result_response(payload: bytes) -> RetrievalResult:
    return PayloadDecoder(payload).result()


def encode_batch_response(results: list[RetrievalResult]) -> bytes:
    encoder = PayloadEncoder()
    encoder.body.u16(len(results))
    for result in results:
        encoder.result(result)
    return encoder.finish()


def decode_batch_response(payload: bytes) -> list[RetrievalResult]:
    decoder = PayloadDecoder(payload)
    return [decoder.result() for _ in range(decoder.body.u16())]


def encode_error(code: ErrorCode, message: str) -> bytes:
    writer = _Writer()
    writer.u8(int(code))
    writer.text(message)
    return bytes(writer.buf)


def decode_error(payload: bytes) -> tuple[ErrorCode, str]:
    reader = _Reader(payload)
    raw = reader.u8()
    try:
        code = ErrorCode(raw)
    except ValueError:
        raise ProtocolError(f"unknown error code {raw}") from None
    return code, reader.text()


def encode_stats_response(snapshot: dict) -> bytes:
    return json.dumps(snapshot, sort_keys=True).encode("utf-8")


def decode_stats_response(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"corrupt stats payload: {exc}") from None


# -- error mapping ------------------------------------------------------------


def error_to_exception(code: ErrorCode, message: str) -> Exception:
    """The client-side exception for a ``RESP_ERROR`` frame."""
    if code is ErrorCode.SERVER_BUSY:
        return ServerBusy(message)
    if code is ErrorCode.DEADLINE_EXPIRED:
        return DeadlineExceeded(message)
    if code is ErrorCode.UNKNOWN_PREDICATE:
        return UnknownPredicateError(message)
    if code is ErrorCode.SHUTTING_DOWN:
        return ServerDraining(message)
    if code is ErrorCode.RESOURCE_EXHAUSTED:
        return ResourceError(message)
    if code is ErrorCode.RESOLUTION_ERROR:
        return PrologError(message)
    if code is ErrorCode.STALE_MANIFEST:
        return StaleManifest(message)
    if code is ErrorCode.WRITE_FROZEN:
        return WritesFrozen(message)
    return RemoteError(f"{code.name}: {message}")


def exception_to_error(exc: BaseException) -> tuple[ErrorCode, str]:
    """The wire (code, message) a server reports for a handler failure."""
    if isinstance(exc, ServerBusy):
        return ErrorCode.SERVER_BUSY, str(exc)
    if isinstance(exc, (DeadlineExceeded, RetrievalTimeout)):
        return ErrorCode.DEADLINE_EXPIRED, str(exc)
    if isinstance(exc, UnknownPredicateError):
        # KeyError reprs quote the message; unwrap the original text.
        return ErrorCode.UNKNOWN_PREDICATE, str(exc.args[0] if exc.args else exc)
    if isinstance(exc, ServerDraining):
        return ErrorCode.SHUTTING_DOWN, str(exc)
    if isinstance(exc, ResourceError):
        return ErrorCode.RESOURCE_EXHAUSTED, str(exc)
    if isinstance(exc, PrologError):
        return ErrorCode.RESOLUTION_ERROR, str(exc)
    if isinstance(exc, StaleManifest):
        return ErrorCode.STALE_MANIFEST, str(exc)
    if isinstance(exc, WritesFrozen):
        return ErrorCode.WRITE_FROZEN, str(exc)
    if isinstance(exc, (ProtocolError, ValueError, KeyError)):
        return ErrorCode.BAD_REQUEST, str(exc)
    return ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
