"""Deadline-aware clients for the CLARE wire protocol.

Two clients share one behaviour contract:

* :class:`RetrievalClient` — blocking, socket-pooled, for host Prolog
  systems and scripts;
* :class:`AsyncRetrievalClient` — the same surface on asyncio streams,
  for open-loop load generation and other event-loop drivers.

Both mirror the in-process API — ``retrieve(goal, mode=...)`` and
``retrieve_batch(goals, mode=...)`` return the very same
:class:`~repro.crs.RetrievalResult` objects (candidates *and* stats)
that :class:`~repro.cluster.ShardedRetrievalServer` hands back, which
is what the loopback differential suite pins down.

Retry policy: connect failures, dropped connections, and ``SERVER_BUSY``
/ ``SHUTTING_DOWN`` rejections are retried with capped exponential
backoff and full jitter (:class:`BackoffPolicy`); everything else is a
real answer and surfaces as the mapped exception immediately.  A
``deadline_s`` budget spans *all* attempts: each attempt sends the
remaining budget to the server (which enforces it on queue wait and
execution), the next backoff never sleeps past the deadline, and a
budget exhausted client-side raises
:class:`~repro.net.protocol.DeadlineExceeded` without another attempt.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass

from ..crs import RetrievalResult, SearchMode
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..terms import Clause, Term, clause_from_term
from . import protocol
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DeadlineExceeded,
    FrameType,
    ProtocolError,
    ServerBusy,
    ServerDraining,
    WritesFrozen,
)

__all__ = [
    "BackoffPolicy",
    "ConnectError",
    "RetrievalClient",
    "AsyncRetrievalClient",
    "AddressHealth",
    "FailoverClient",
]


class ConnectError(protocol.NetError):
    """The server could not be reached (after retries, if any)."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Attempt ``n`` (0-based) sleeps ``uniform(0, min(cap_s, base_s *
    multiplier**n))`` — the classic full-jitter scheme, which spreads a
    thundering herd of rejected clients instead of resynchronising them.
    """

    base_s: float = 0.02
    multiplier: float = 2.0
    cap_s: float = 0.5
    max_retries: int = 4

    def delay(self, attempt: int, rng: random.Random) -> float:
        ceiling = min(self.cap_s, self.base_s * self.multiplier**attempt)
        return rng.uniform(0.0, ceiling)


def _remaining(deadline: float | None) -> float | None:
    if deadline is None:
        return None
    return deadline - time.monotonic()


def _deadline_ms(deadline: float | None) -> int:
    """The whole-millisecond budget to advertise to the server."""
    remaining = _remaining(deadline)
    if remaining is None:
        return 0
    # Round up: a 0.4 ms budget must not be sent as "no deadline".
    return max(1, int(remaining * 1000))


_RETRYABLE = (ServerBusy, ServerDraining, ConnectError, ConnectionError, OSError)

#: What a *mutation* may be retried on.  A connection that dropped after
#: the request was sent leaves the server's state unknown — retrying an
#: assert there could apply it twice — so only rejections that provably
#: happened before any state change (busy, draining, a migration's
#: write freeze) and failures to connect at all are safe to retry.
_MUTATION_RETRYABLE = (ServerBusy, ServerDraining, ConnectError, WritesFrozen)


def _as_clause(clause_or_term: Clause | Term) -> Clause:
    if isinstance(clause_or_term, Clause):
        return clause_or_term
    return clause_from_term(clause_or_term)


class _ClientCore:
    """Shared bookkeeping for the sync and async clients."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int,
        backoff: BackoffPolicy,
        max_frame_bytes: int,
        obs: Instrumentation | None,
        rng: random.Random | None,
    ):
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.backoff = backoff
        self.max_frame_bytes = max_frame_bytes
        self.obs = obs if obs is not None else _default_obs()
        self.rng = rng if rng is not None else random.Random()
        self._next_request_id = 1
        self._id_lock = threading.Lock()

    def take_request_id(self) -> int:
        with self._id_lock:
            request_id = self._next_request_id
            self._next_request_id = (self._next_request_id + 1) & 0xFFFFFFFF
            return request_id

    def next_delay(self, attempt: int, deadline: float | None) -> float:
        """The backoff before retry ``attempt``, clipped to the deadline."""
        delay = self.backoff.delay(attempt, self.rng)
        remaining = _remaining(deadline)
        if remaining is not None:
            if remaining <= 0:
                raise DeadlineExceeded("deadline expired between attempts")
            delay = min(delay, remaining)
        self.obs.counter("net.client.retries").inc()
        return delay

    def check_budget(self, deadline: float | None) -> None:
        remaining = _remaining(deadline)
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded("deadline expired before the request left")

    def decode_response(self, frame: protocol.Frame, request_id: int):
        if frame.request_id != request_id:
            raise ProtocolError(
                f"response for request {frame.request_id}, expected "
                f"{request_id}"
            )
        if frame.type is FrameType.RESP_ERROR:
            code, message = protocol.decode_error(frame.payload)
            raise protocol.error_to_exception(code, message)
        return frame


class _SyncConnection:
    """One framed TCP connection (blocking sockets)."""

    def __init__(self, host: str, port: int, connect_timeout: float | None):
        try:
            self.sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ConnectError(f"cannot reach {host}:{port}: {exc}") from exc
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def request(
        self,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
        timeout: float | None,
        max_frame_bytes: int,
    ) -> protocol.Frame:
        self.send_request(frame_type, request_id, payload, timeout)
        return self.read_frame(max_frame_bytes)

    def send_request(
        self,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
        timeout: float | None,
    ) -> None:
        self.sock.settimeout(timeout)
        self.sock.sendall(protocol.encode_frame(frame_type, request_id, payload))

    def read_frame(self, max_frame_bytes: int) -> protocol.Frame:
        header = self._read_exact(protocol.HEADER.size)
        resp_type, resp_id, length = protocol.decode_header(
            header, max_frame_bytes
        )
        return protocol.Frame(resp_type, resp_id, self._read_exact(length))

    def _read_exact(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = self.sock.recv(count - len(chunks))
            if not chunk:
                raise ConnectionError("connection closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RetrievalClient:
    """Blocking, pooled wire client mirroring the in-process API."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        backoff: BackoffPolicy | None = None,
        connect_timeout_s: float | None = 5.0,
        request_timeout_s: float | None = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        obs: Instrumentation | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        self._core = _ClientCore(
            host, port,
            pool_size=pool_size,
            backoff=backoff if backoff is not None else BackoffPolicy(),
            max_frame_bytes=max_frame_bytes,
            obs=obs,
            rng=rng,
        )
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._sleep = sleep
        self._idle: list[_SyncConnection] = []
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- public API ----------------------------------------------------------

    def retrieve(
        self,
        goal: Term,
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> RetrievalResult:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = self._request_with_retries(
            FrameType.REQ_RETRIEVE,
            lambda: protocol.encode_retrieve_request(
                goal, mode, _deadline_ms(deadline)
            ),
            deadline,
        )
        self._expect(frame, FrameType.RESP_RESULT)
        return protocol.decode_result_response(frame.payload)

    def retrieve_batch(
        self,
        goals: list[Term],
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> list[RetrievalResult]:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = self._request_with_retries(
            FrameType.REQ_RETRIEVE_BATCH,
            lambda: protocol.encode_batch_request(
                goals, mode, _deadline_ms(deadline)
            ),
            deadline,
        )
        self._expect(frame, FrameType.RESP_BATCH)
        return protocol.decode_batch_response(frame.payload)

    def solve(
        self,
        goal: Term,
        *,
        engine: str = "zip",
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
        max_solutions: int = 0,
    ):
        """Resolve ``goal`` server-side; yield one binding dict per answer.

        Solutions stream incrementally — each arrives as its own frame,
        so the first answer is usable long before the search finishes.
        Busy/draining rejections and connection failures are retried
        only *before* the first solution frame; once the stream has
        started, a failure surfaces immediately (the solutions already
        yielded stand, but re-running the query could replay them).
        A mid-stream ``RESP_ERROR`` (deadline expired, resource budget
        exhausted) raises the mapped exception after the partial stream.
        """
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        core = self._core
        attempt = 0
        while True:
            core.check_budget(deadline)
            stream = self._solve_attempt(
                goal, engine, mode, deadline, max_solutions
            )
            try:
                first = next(stream)
            except StopIteration:
                return
            except _RETRYABLE as exc:
                if attempt >= core.backoff.max_retries:
                    raise
                if isinstance(exc, ServerBusy):
                    core.obs.counter("net.client.busy_retries").inc()
                self._sleep(core.next_delay(attempt, deadline))
                attempt += 1
                continue
            yield first
            yield from stream  # post-first-frame failures are not retried
            return

    def _solve_attempt(
        self,
        goal: Term,
        engine: str,
        mode: SearchMode | None,
        deadline: float | None,
        max_solutions: int,
    ):
        """One connection's worth of the solve stream (no retries)."""
        core = self._core
        request_id = core.take_request_id()
        payload = protocol.encode_solve_request(
            goal, engine, mode, _deadline_ms(deadline), max_solutions
        )
        conn = self._checkout()
        keep = False
        try:
            timeout = self.request_timeout_s
            remaining = _remaining(deadline)
            if remaining is not None:
                budget = max(remaining, 0.001) + 1.0
                timeout = budget if timeout is None else min(timeout, budget)
            try:
                conn.send_request(
                    FrameType.REQ_SOLVE, request_id, payload, timeout
                )
                while True:
                    frame = conn.read_frame(core.max_frame_bytes)
                    frame = core.decode_response(frame, request_id)
                    if frame.type is FrameType.RESP_SOLVE_DONE:
                        keep = True
                        return
                    self._expect(frame, FrameType.RESP_SOLUTION)
                    _, bindings = protocol.decode_solution(frame.payload)
                    yield bindings
            except socket.timeout as exc:
                raise DeadlineExceeded(
                    f"no response within {timeout:.3f}s"
                ) from exc
        except (ServerBusy, ServerDraining):
            keep = True  # the connection itself is healthy
            raise
        finally:
            # An abandoned or failed stream may leave frames in flight;
            # the connection cannot be pooled unless the trailer arrived.
            if keep and not self._closed:
                self._checkin(conn)
            else:
                conn.close()

    def mutate(
        self,
        op: str,
        clause_or_term: Clause | Term,
        module: str = "user",
        *,
        manifest_version: int = 0,
        deadline_s: float | None = None,
        write_id: str = "",
    ) -> tuple[int, bool, Clause | None]:
        """One assert/retract on the server; returns
        ``(engine version, applied, removed clause)``.

        Only busy/draining/frozen rejections and *connect* failures are
        retried — a drop after the frame was sent leaves the mutation's
        fate unknown, and retrying could apply it twice.  Callers that
        need at-least-once across drops (the fleet's replicated writes)
        track acknowledgements themselves and stamp each logical write
        with a ``write_id`` so re-deliveries dedupe server-side.
        """
        clause = _as_clause(clause_or_term)
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = self._request_with_retries(
            FrameType.REQ_MUTATE,
            lambda: protocol.encode_mutate_request(
                op, clause, module, manifest_version, _deadline_ms(deadline),
                write_id,
            ),
            deadline,
            retryable=_MUTATION_RETRYABLE,
        )
        self._expect(frame, FrameType.RESP_MUTATED)
        return protocol.decode_mutated_response(frame.payload)

    def assertz(
        self, clause_or_term: Clause | Term, module: str = "user", **kwargs
    ) -> int:
        """Append a clause; returns the server's new engine version."""
        version, _, _ = self.mutate("assertz", clause_or_term, module, **kwargs)
        return version

    def asserta(
        self, clause_or_term: Clause | Term, module: str = "user", **kwargs
    ) -> int:
        """Prepend a clause; returns the server's new engine version."""
        version, _, _ = self.mutate("asserta", clause_or_term, module, **kwargs)
        return version

    def retract(
        self, clause_or_term: Clause | Term, **kwargs
    ) -> Clause | None:
        """Remove the first unifying clause; returns the one removed."""
        _, _, removed = self.mutate("retract", clause_or_term, **kwargs)
        return removed

    def retract_exact(
        self, clause_or_term: Clause | Term, **kwargs
    ) -> bool:
        """Remove a structurally identical clause (replication replay)."""
        _, applied, _ = self.mutate("retract_exact", clause_or_term, **kwargs)
        return applied

    def manifest(self):
        """The node's current cluster manifest (a ``ClusterManifest``)."""
        from ..cluster.manifest import ClusterManifest

        frame = self._request_with_retries(
            FrameType.REQ_MANIFEST, lambda: b"", None
        )
        self._expect(frame, FrameType.RESP_MANIFEST)
        return ClusterManifest.from_json(
            protocol.decode_manifest_response(frame.payload)
        )

    def ping(self) -> bool:
        frame = self._request_with_retries(
            FrameType.REQ_PING, lambda: b"", None
        )
        self._expect(frame, FrameType.RESP_PONG)
        return True

    def stats(self) -> dict:
        frame = self._request_with_retries(
            FrameType.REQ_STATS, lambda: b"", None
        )
        self._expect(frame, FrameType.RESP_STATS)
        return protocol.decode_stats_response(frame.payload)

    def close(self) -> None:
        self._closed = True
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "RetrievalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -----------------------------------------------------------

    @staticmethod
    def _expect(frame: protocol.Frame, expected: FrameType) -> None:
        if frame.type is not expected:
            raise ProtocolError(
                f"expected {expected.name}, got {frame.type.name}"
            )

    def _request_with_retries(
        self,
        frame_type: FrameType,
        make_payload,
        deadline: float | None,
        retryable: tuple = _RETRYABLE,
    ) -> protocol.Frame:
        core = self._core
        attempt = 0
        while True:
            core.check_budget(deadline)
            try:
                return self._attempt(frame_type, make_payload(), deadline)
            except retryable as exc:
                if attempt >= core.backoff.max_retries:
                    raise
                if isinstance(exc, ServerBusy):
                    core.obs.counter("net.client.busy_retries").inc()
                self._sleep(core.next_delay(attempt, deadline))
                attempt += 1

    def _attempt(
        self, frame_type: FrameType, payload: bytes, deadline: float | None
    ) -> protocol.Frame:
        core = self._core
        request_id = core.take_request_id()
        conn = self._checkout()
        keep = False
        try:
            timeout = self.request_timeout_s
            remaining = _remaining(deadline)
            if remaining is not None:
                # Pad the socket timeout slightly past the deadline so
                # the *server's* DEADLINE_EXPIRED answer wins the race.
                budget = max(remaining, 0.001) + 1.0
                timeout = budget if timeout is None else min(timeout, budget)
            try:
                frame = conn.request(
                    frame_type, request_id, payload, timeout,
                    core.max_frame_bytes,
                )
            except socket.timeout as exc:
                raise DeadlineExceeded(
                    f"no response within {timeout:.3f}s"
                ) from exc
            response = core.decode_response(frame, request_id)
            keep = True
            return response
        except (ServerBusy, ServerDraining):
            keep = True  # the connection itself is healthy
            raise
        finally:
            if keep and not self._closed:
                self._checkin(conn)
            else:
                conn.close()

    def _checkout(self) -> _SyncConnection:
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        self._core.obs.counter("net.client.connects").inc()
        return _SyncConnection(
            self._core.host, self._core.port, self.connect_timeout_s
        )

    def _checkin(self, conn: _SyncConnection) -> None:
        with self._pool_lock:
            if len(self._idle) < self._core.pool_size:
                self._idle.append(conn)
                return
        conn.close()


class _AsyncConnection:
    """One framed TCP connection (asyncio streams)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, host: str, port: int, connect_timeout: float | None):
        import asyncio

        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (OSError, TimeoutError) as exc:
            raise ConnectError(f"cannot reach {host}:{port}: {exc}") from exc
        return cls(reader, writer)

    async def request(
        self,
        frame_type: FrameType,
        request_id: int,
        payload: bytes,
        timeout: float | None,
        max_frame_bytes: int,
    ) -> protocol.Frame:
        await self.send_request(frame_type, request_id, payload)
        return await self.read_frame(timeout, max_frame_bytes)

    async def send_request(
        self, frame_type: FrameType, request_id: int, payload: bytes
    ) -> None:
        self.writer.write(protocol.encode_frame(frame_type, request_id, payload))
        await self.writer.drain()

    async def read_frame(
        self, timeout: float | None, max_frame_bytes: int
    ) -> protocol.Frame:
        import asyncio

        async def _read():
            header = await self.reader.readexactly(protocol.HEADER.size)
            resp_type, resp_id, length = protocol.decode_header(
                header, max_frame_bytes
            )
            return protocol.Frame(
                resp_type, resp_id, await self.reader.readexactly(length)
            )

        try:
            return await asyncio.wait_for(_read(), timeout)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError("connection closed mid-frame") from exc
        except TimeoutError as exc:
            raise DeadlineExceeded(f"no response within {timeout}s") from exc

    def close(self) -> None:
        try:
            self.writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass


class AsyncRetrievalClient:
    """The same contract as :class:`RetrievalClient`, on asyncio streams."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 8,
        backoff: BackoffPolicy | None = None,
        connect_timeout_s: float | None = 5.0,
        request_timeout_s: float | None = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        obs: Instrumentation | None = None,
        rng: random.Random | None = None,
    ):
        self._core = _ClientCore(
            host, port,
            pool_size=pool_size,
            backoff=backoff if backoff is not None else BackoffPolicy(),
            max_frame_bytes=max_frame_bytes,
            obs=obs,
            rng=rng,
        )
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._idle: list[_AsyncConnection] = []
        self._closed = False

    async def retrieve(
        self,
        goal: Term,
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> RetrievalResult:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = await self._request_with_retries(
            FrameType.REQ_RETRIEVE,
            lambda: protocol.encode_retrieve_request(
                goal, mode, _deadline_ms(deadline)
            ),
            deadline,
        )
        RetrievalClient._expect(frame, FrameType.RESP_RESULT)
        return protocol.decode_result_response(frame.payload)

    async def retrieve_batch(
        self,
        goals: list[Term],
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> list[RetrievalResult]:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = await self._request_with_retries(
            FrameType.REQ_RETRIEVE_BATCH,
            lambda: protocol.encode_batch_request(
                goals, mode, _deadline_ms(deadline)
            ),
            deadline,
        )
        RetrievalClient._expect(frame, FrameType.RESP_BATCH)
        return protocol.decode_batch_response(frame.payload)

    async def solve(
        self,
        goal: Term,
        *,
        engine: str = "zip",
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
        max_solutions: int = 0,
    ):
        """Async counterpart of :meth:`RetrievalClient.solve`."""
        import asyncio

        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        core = self._core
        attempt = 0
        while True:
            core.check_budget(deadline)
            stream = self._solve_attempt(
                goal, engine, mode, deadline, max_solutions
            )
            try:
                first = await stream.__anext__()
            except StopAsyncIteration:
                return
            except _RETRYABLE as exc:
                if attempt >= core.backoff.max_retries:
                    raise
                if isinstance(exc, ServerBusy):
                    core.obs.counter("net.client.busy_retries").inc()
                await asyncio.sleep(core.next_delay(attempt, deadline))
                attempt += 1
                continue
            yield first
            async for bindings in stream:
                yield bindings
            return

    async def _solve_attempt(
        self,
        goal: Term,
        engine: str,
        mode: SearchMode | None,
        deadline: float | None,
        max_solutions: int,
    ):
        core = self._core
        request_id = core.take_request_id()
        payload = protocol.encode_solve_request(
            goal, engine, mode, _deadline_ms(deadline), max_solutions
        )
        conn = await self._checkout()
        keep = False
        try:
            timeout = self.request_timeout_s
            remaining = _remaining(deadline)
            if remaining is not None:
                budget = max(remaining, 0.001) + 1.0
                timeout = budget if timeout is None else min(timeout, budget)
            await conn.send_request(FrameType.REQ_SOLVE, request_id, payload)
            while True:
                frame = await conn.read_frame(timeout, core.max_frame_bytes)
                frame = core.decode_response(frame, request_id)
                if frame.type is FrameType.RESP_SOLVE_DONE:
                    keep = True
                    return
                RetrievalClient._expect(frame, FrameType.RESP_SOLUTION)
                _, bindings = protocol.decode_solution(frame.payload)
                yield bindings
        except (ServerBusy, ServerDraining):
            keep = True
            raise
        finally:
            if keep and not self._closed:
                self._checkin(conn)
            else:
                conn.close()

    async def mutate(
        self,
        op: str,
        clause_or_term: Clause | Term,
        module: str = "user",
        *,
        manifest_version: int = 0,
        deadline_s: float | None = None,
        write_id: str = "",
    ) -> tuple[int, bool, Clause | None]:
        """Async counterpart of :meth:`RetrievalClient.mutate`.

        Same retry discipline: only rejections that provably preceded
        any state change (busy/draining/frozen) and connect failures are
        retried — a drop after the frame went out leaves the mutation's
        fate unknown, and ``write_id`` is the caller's dedupe handle.
        """
        clause = _as_clause(clause_or_term)
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        frame = await self._request_with_retries(
            FrameType.REQ_MUTATE,
            lambda: protocol.encode_mutate_request(
                op, clause, module, manifest_version, _deadline_ms(deadline),
                write_id,
            ),
            deadline,
            retryable=_MUTATION_RETRYABLE,
        )
        RetrievalClient._expect(frame, FrameType.RESP_MUTATED)
        return protocol.decode_mutated_response(frame.payload)

    async def assertz(
        self, clause_or_term: Clause | Term, module: str = "user", **kwargs
    ) -> int:
        version, _, _ = await self.mutate(
            "assertz", clause_or_term, module, **kwargs
        )
        return version

    async def ping(self) -> bool:
        frame = await self._request_with_retries(
            FrameType.REQ_PING, lambda: b"", None
        )
        RetrievalClient._expect(frame, FrameType.RESP_PONG)
        return True

    async def stats(self) -> dict:
        frame = await self._request_with_retries(
            FrameType.REQ_STATS, lambda: b"", None
        )
        RetrievalClient._expect(frame, FrameType.RESP_STATS)
        return protocol.decode_stats_response(frame.payload)

    async def close(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    async def __aenter__(self) -> "AsyncRetrievalClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- transport -----------------------------------------------------------

    async def _request_with_retries(
        self,
        frame_type: FrameType,
        make_payload,
        deadline: float | None,
        retryable: tuple = _RETRYABLE,
    ) -> protocol.Frame:
        import asyncio

        core = self._core
        attempt = 0
        while True:
            core.check_budget(deadline)
            try:
                return await self._attempt(frame_type, make_payload(), deadline)
            except retryable as exc:
                if attempt >= core.backoff.max_retries:
                    raise
                if isinstance(exc, ServerBusy):
                    core.obs.counter("net.client.busy_retries").inc()
                await asyncio.sleep(core.next_delay(attempt, deadline))
                attempt += 1

    async def _attempt(
        self, frame_type: FrameType, payload: bytes, deadline: float | None
    ) -> protocol.Frame:
        core = self._core
        request_id = core.take_request_id()
        conn = await self._checkout()
        keep = False
        try:
            timeout = self.request_timeout_s
            remaining = _remaining(deadline)
            if remaining is not None:
                budget = max(remaining, 0.001) + 1.0
                timeout = budget if timeout is None else min(timeout, budget)
            frame = await conn.request(
                frame_type, request_id, payload, timeout, core.max_frame_bytes
            )
            response = core.decode_response(frame, request_id)
            keep = True
            return response
        except (ServerBusy, ServerDraining):
            keep = True
            raise
        finally:
            if keep and not self._closed:
                self._checkin(conn)
            else:
                conn.close()

    async def _checkout(self) -> _AsyncConnection:
        if self._idle:
            return self._idle.pop()
        self._core.obs.counter("net.client.connects").inc()
        return await _AsyncConnection.open(
            self._core.host, self._core.port, self.connect_timeout_s
        )

    def _checkin(self, conn: _AsyncConnection) -> None:
        if len(self._idle) < self._core.pool_size:
            self._idle.append(conn)
            return
        conn.close()


# -- replica failover ---------------------------------------------------------


@dataclass
class AddressHealth:
    """One address's recent behaviour, as seen by a failover client.

    Health is *per address*: a SERVER_BUSY from one replica quarantines
    only that replica, never its siblings — before this bookkeeping
    existed, the pooled client's retry counter conflated "this replica
    is busy" with "the service is busy" and a single overloaded replica
    masked perfectly healthy ones.
    """

    consecutive_failures: int = 0
    busy_rejections: int = 0
    quarantined_until: float = 0.0

    def note_success(self) -> None:
        self.consecutive_failures = 0
        self.quarantined_until = 0.0

    def note_busy(self, now: float, penalty_s: float) -> None:
        """A busy rejection: short quarantine, no failure escalation."""
        self.busy_rejections += 1
        self.quarantined_until = max(
            self.quarantined_until, now + penalty_s
        )

    def note_failure(self, now: float, base_s: float, cap_s: float) -> None:
        """A transport failure: exponentially growing quarantine."""
        self.consecutive_failures += 1
        penalty = min(
            cap_s, base_s * (2.0 ** (self.consecutive_failures - 1))
        )
        self.quarantined_until = max(self.quarantined_until, now + penalty)

    def available(self, now: float) -> bool:
        return now >= self.quarantined_until


def _split_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must be host:port, got {address!r}")
    return host, int(port)


class FailoverClient:
    """Reads with failover across a replica group's addresses.

    Wraps one single-attempt :class:`RetrievalClient` per address and
    owns the retry loop itself: an attempt pass walks the addresses
    healthy-first (preserving the given order among equally healthy
    replicas), *moving to the next address immediately* on busy,
    draining, connect, or drop failures — the backoff sleep happens only
    after a full pass found no willing replica.  That is the difference
    between same-target retry (PR 5's client) and true failover: a dead
    or busy replica costs one probe, not a retry budget.

    Non-transport answers (wrong-predicate errors, stale-manifest
    rejections, deadline expiry) surface immediately — another replica
    would answer the same.
    """

    def __init__(
        self,
        addresses: list[str] | tuple[str, ...],
        *,
        backoff: BackoffPolicy | None = None,
        busy_penalty_s: float = 0.05,
        failure_penalty_s: float = 0.1,
        failure_penalty_cap_s: float = 2.0,
        connect_timeout_s: float | None = 5.0,
        request_timeout_s: float | None = 30.0,
        pool_size: int = 2,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        obs: Instrumentation | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        if not addresses:
            raise ValueError("a failover client needs at least one address")
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.busy_penalty_s = busy_penalty_s
        self.failure_penalty_s = failure_penalty_s
        self.failure_penalty_cap_s = failure_penalty_cap_s
        self.obs = obs if obs is not None else _default_obs()
        self.rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock
        self._client_options = dict(
            pool_size=pool_size,
            # Inner clients never retry: one call is one attempt, and
            # this class decides where the *next* attempt goes.
            backoff=BackoffPolicy(max_retries=0),
            connect_timeout_s=connect_timeout_s,
            request_timeout_s=request_timeout_s,
            max_frame_bytes=max_frame_bytes,
            obs=obs,
            rng=rng,
        )
        self._addresses: list[str] = []
        self._clients: dict[str, RetrievalClient] = {}
        self._health: dict[str, AddressHealth] = {}
        self._lock = threading.Lock()
        self.set_addresses(list(addresses))

    # -- membership ----------------------------------------------------------

    @property
    def addresses(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._addresses)

    def set_addresses(self, addresses: list[str]) -> None:
        """Adopt a new replica set (manifest flip): keep shared health
        and pooled connections for surviving addresses, drop the rest."""
        if not addresses:
            raise ValueError("a failover client needs at least one address")
        with self._lock:
            stale = set(self._clients) - set(addresses)
            for address in addresses:
                if address not in self._clients:
                    host, port = _split_address(address)
                    self._clients[address] = RetrievalClient(
                        host, port, **self._client_options
                    )
                    self._health.setdefault(address, AddressHealth())
            dropped = [self._clients.pop(a) for a in stale]
            self._addresses = list(addresses)
        for client in dropped:
            client.close()

    def client_for(self, address: str) -> RetrievalClient:
        """Direct (non-failover) access to one replica's pooled client."""
        with self._lock:
            return self._clients[address]

    def health_of(self, address: str) -> AddressHealth:
        with self._lock:
            return self._health[address]

    # -- public API ----------------------------------------------------------

    def retrieve(
        self,
        goal: Term,
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> RetrievalResult:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        return self._with_failover(
            lambda client, remaining: client.retrieve(
                goal, mode=mode, deadline_s=remaining
            ),
            deadline,
        )

    def retrieve_batch(
        self,
        goals: list[Term],
        mode: SearchMode | None = None,
        deadline_s: float | None = None,
    ) -> list[RetrievalResult]:
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        return self._with_failover(
            lambda client, remaining: client.retrieve_batch(
                goals, mode=mode, deadline_s=remaining
            ),
            deadline,
        )

    def manifest(self):
        """The freshest manifest any replica will serve."""
        return self._with_failover(
            lambda client, remaining: client.manifest(), None
        )

    def close(self) -> None:
        with self._lock:
            clients, self._clients = dict(self._clients), {}
            self._addresses = []
        for client in clients.values():
            client.close()

    def __enter__(self) -> "FailoverClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the failover loop ---------------------------------------------------

    def _ordered_addresses(self) -> list[str]:
        """Candidate order for one pass: available first, in the replica
        order given; quarantined ones after, soonest-recovering first —
        they are still *tried* when nothing healthier answers."""
        now = self._clock()
        with self._lock:
            addresses = list(self._addresses)
            health = {a: self._health[a] for a in addresses}
        available = [a for a in addresses if health[a].available(now)]
        quarantined = sorted(
            (a for a in addresses if not health[a].available(now)),
            key=lambda a: health[a].quarantined_until,
        )
        return available + quarantined

    def _with_failover(self, call, deadline: float | None):
        attempt = 0
        while True:
            remaining = _remaining(deadline)
            if remaining is not None and remaining <= 0:
                raise DeadlineExceeded("deadline expired between attempts")
            last_exc: Exception | None = None
            for address in self._ordered_addresses():
                try:
                    client = self.client_for(address)
                except KeyError:
                    continue  # membership changed under us
                try:
                    result = call(client, _remaining(deadline))
                except ServerBusy as exc:
                    # Penalise *this* address only and probe the next
                    # replica immediately — no backoff sleep yet.
                    self.health_of(address).note_busy(
                        self._clock(), self.busy_penalty_s
                    )
                    self.obs.counter(
                        "net.failover.busy", address=address
                    ).inc()
                    last_exc = exc
                except (
                    ServerDraining, ConnectError, ConnectionError, OSError
                ) as exc:
                    self.health_of(address).note_failure(
                        self._clock(),
                        self.failure_penalty_s,
                        self.failure_penalty_cap_s,
                    )
                    self.obs.counter(
                        "net.failover.errors", address=address
                    ).inc()
                    last_exc = exc
                else:
                    self.health_of(address).note_success()
                    return result
            if attempt >= self.backoff.max_retries:
                assert last_exc is not None
                raise last_exc
            delay = self.backoff.delay(attempt, self.rng)
            remaining = _remaining(deadline)
            if remaining is not None:
                if remaining <= 0:
                    raise DeadlineExceeded("deadline expired between attempts")
                delay = min(delay, remaining)
            self.obs.counter("net.failover.passes").inc()
            self._sleep(delay)
            attempt += 1
