"""The CLARE device: both filter boards behind one host interface.

"Both filtering stages, FS1 and FS2, appear in the form of plug-in
circuit boards.  A common address space from ffff7e00(hex) to
ffff7fff(hex) — 128k bytes in total — is shared by FS1 and FS2.  The two
filters are mutually exclusive.  The selection between the two is
governed by the third least significant bit, b2, of an 8-bit control
register" (paper section 2.2).

:class:`CLARE` owns the shared control register and enforces that mutual
exclusion: driving a board that is not selected raises
:class:`BoardNotSelected`, exactly as writes through the real window
would have reached the wrong board.
"""

from __future__ import annotations

from .fs2 import (
    ControlRegister,
    FS2SearchStats,
    FilterSelect,
    SecondStageFilter,
)
from .pif.symbols import SymbolTable
from .scw import CodewordScheme, FS1Hardware, FS1HardwareResult
from .terms import Term

__all__ = ["CLARE", "BoardNotSelected"]


class BoardNotSelected(RuntimeError):
    """An operation was issued to the board b2 does not select."""


class CLARE:
    """The two-board clause retrieval engine on one VME window."""

    def __init__(
        self,
        symbols: SymbolTable,
        scheme: CodewordScheme,
        cross_binding: bool = True,
    ):
        self.control = ControlRegister()
        self.fs1 = FS1Hardware(scheme)
        self.fs2 = SecondStageFilter(symbols, cross_binding=cross_binding)
        # The FS2 carries its own control register internally; the device
        # owns the authoritative one and mirrors mode changes into it.
        self.fs2.control = self.control
        # The memory-mapped host view (mmap() of /dev/vme24d16).
        from .fs2.vme import VMEWindow

        self.window = VMEWindow(self.control, self.fs2.wcs, self.fs2.result)

    # -- board selection ------------------------------------------------------

    def select(self, which: FilterSelect) -> None:
        """Write b2: route the shared address window to one board."""
        self.control.select_filter(which)

    @property
    def selected(self) -> FilterSelect:
        return self.control.filter_select

    def _require(self, which: FilterSelect) -> None:
        if self.selected != which:
            raise BoardNotSelected(
                f"{which.name} operation issued while b2 selects "
                f"{self.selected.name}"
            )

    # -- FS1 operations ---------------------------------------------------------

    def fs1_set_query(self, query: Term) -> None:
        self._require(FilterSelect.FS1)
        self.fs1.set_query(query)

    def fs1_search(self, index_image: bytes) -> FS1HardwareResult:
        self._require(FilterSelect.FS1)
        result = self.fs1.stream(index_image)
        self.control.set_match_found(bool(result.addresses))
        return result

    # -- FS2 operations ---------------------------------------------------------

    def fs2_load_microprogram(self, program=None) -> None:
        self._require(FilterSelect.FS2)
        self.fs2.load_microprogram(program)

    def fs2_set_query(self, query: Term) -> None:
        self._require(FilterSelect.FS2)
        self.fs2.set_query(query)

    def fs2_search(
        self, records, indicator: tuple[str, int] | None = None
    ) -> FS2SearchStats:
        self._require(FilterSelect.FS2)
        return self.fs2.search(records, indicator=indicator)

    def fs2_read_results(self) -> list[bytes]:
        self._require(FilterSelect.FS2)
        return self.fs2.read_results()

    # -- the two-stage pipeline ---------------------------------------------------

    def two_stage_search(
        self,
        query: Term,
        index_image: bytes,
        fetch_records,
        indicator: tuple[str, int],
    ) -> tuple[FS1HardwareResult, FS2SearchStats, list[bytes]]:
        """Mode (d): FS1 over the index, FS2 over the candidates.

        ``fetch_records(addresses)`` maps FS1's candidate addresses to the
        clause records the disk would deliver (the CRS's job).  Returns
        the FS1 result, the FS2 stats and the satisfier records.
        """
        self.select(FilterSelect.FS1)
        self.fs1_set_query(query)
        fs1_result = self.fs1_search(index_image)
        records = fetch_records(fs1_result.addresses)
        self.select(FilterSelect.FS2)
        self.fs2_load_microprogram()
        self.fs2_set_query(query)
        fs2_stats = self.fs2_search(records, indicator=indicator)
        satisfiers = self.fs2_read_results()
        return fs1_result, fs2_stats, satisfiers
