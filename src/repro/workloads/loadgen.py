"""Open-loop load generation against the network retrieval service.

A closed-loop driver (send, wait, send) measures only its own
think-time; an **open-loop** driver fires requests on a fixed arrival
schedule — request *i* departs at ``start + i / qps`` whether or not
earlier requests have answered — so queueing delay inside the server
shows up in the measured latencies instead of silently throttling the
offered load.  That is the standard methodology for tail-latency
studies, and it is what makes the p99-under-overload acceptance test
meaningful: when the service is saturated the generator keeps offering
load, the server sheds it with ``SERVER_BUSY``, and the *admitted*
requests' tail stays bounded.

The generator runs on one event loop with an
:class:`~repro.net.AsyncRetrievalClient` per concurrent request slot
(connection pooling inside the client), records per-request outcome and
latency, and reduces them to the usual percentile summary.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from ..crs import SearchMode
from ..net import (
    AsyncRetrievalClient,
    BackoffPolicy,
    ConnectError,
    DeadlineExceeded,
    NetError,
    ServerBusy,
    ServerDraining,
)
from ..terms import Term, read_term

__all__ = [
    "LoadgenResult",
    "format_cores_table",
    "percentile",
    "run_cores_sweep",
    "run_loadgen",
]


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` (nearest-rank, 0..1)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadgenResult:
    """Everything one open-loop run measured."""

    offered: int = 0
    ok: int = 0
    busy: int = 0
    deadline_expired: int = 0
    errors: int = 0
    wall_clock_s: float = 0.0
    #: Per-request host latency (seconds), successful *reads* only.
    latencies_s: list[float] = field(default_factory=list)
    #: Total candidate clauses returned across successful requests.
    candidates: int = 0
    #: Mixed-workload accounting (``write_fraction > 0``): writes are
    #: counted into ``offered``/``busy``/``deadline_expired``/``errors``
    #: with the reads, but keep their own success count and latency
    #: distribution — a durable server's fsync cost shows up in the
    #: write tail, not smeared into the read percentiles.
    writes_offered: int = 0
    writes_ok: int = 0
    write_latencies_s: list[float] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.ok / self.wall_clock_s

    @property
    def write_qps(self) -> float:
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.writes_ok / self.wall_clock_s

    def latency_s(self, fraction: float) -> float:
        return percentile(self.latencies_s, fraction)

    def write_latency_s(self, fraction: float) -> float:
        return percentile(self.write_latencies_s, fraction)

    def summary(self) -> str:
        text = (
            f"offered={self.offered} ok={self.ok} busy={self.busy} "
            f"deadline={self.deadline_expired} errors={self.errors} "
            f"qps={self.achieved_qps:.1f} "
            f"p50={self.latency_s(0.50) * 1e3:.2f}ms "
            f"p99={self.latency_s(0.99) * 1e3:.2f}ms"
        )
        if self.writes_offered:
            text += (
                f" writes_ok={self.writes_ok}/{self.writes_offered} "
                f"wqps={self.write_qps:.1f} "
                f"wp50={self.write_latency_s(0.50) * 1e3:.2f}ms "
                f"wp99={self.write_latency_s(0.99) * 1e3:.2f}ms"
            )
        return text


async def _run_loadgen_async(
    host: str,
    port: int,
    goals: list[Term],
    *,
    qps: float,
    duration_s: float,
    mode: SearchMode | None,
    deadline_s: float | None,
    max_retries: int,
    write_fraction: float = 0.0,
    write_template: str = "loadgen_fact",
    seed: int = 0,
    clock=time.monotonic,
    sleep=asyncio.sleep,
) -> LoadgenResult:
    result = LoadgenResult()
    # retries=0 by default: an open-loop driver wants SERVER_BUSY to
    # *count*, not to be papered over by client backoff.
    backoff = BackoffPolicy(max_retries=max_retries)
    client = AsyncRetrievalClient(host, port, backoff=backoff)
    lock = asyncio.Lock()
    # The read/write coin flips come from a seeded generator in arrival
    # order, so a given (seed, qps, duration) always offers the same
    # request mix — benchmark runs are comparable across flush policies.
    rng = random.Random(seed)

    async def one_read(index: int) -> None:
        goal = goals[index % len(goals)]
        begin = clock()
        try:
            response = await client.retrieve(
                goal, mode=mode, deadline_s=deadline_s
            )
        except ServerBusy:
            async with lock:
                result.busy += 1
        except DeadlineExceeded:
            async with lock:
                result.deadline_expired += 1
        except (ServerDraining, ConnectError, NetError, ConnectionError, OSError):
            async with lock:
                result.errors += 1
        else:
            elapsed = clock() - begin
            async with lock:
                result.ok += 1
                result.latencies_s.append(elapsed)
                result.candidates += len(response.candidates)

    async def one_write(index: int) -> None:
        # A unique generated fact per write: asserts never collide with
        # the read goal set, and the KB (and any WAL behind it) grows by
        # exactly the acked write count — easy to assert on.
        from ..cluster.server import WritesFrozen

        clause = read_term(f"{write_template}(w{seed}_{index})")
        begin = clock()
        try:
            await client.mutate(
                "assertz", clause, deadline_s=deadline_s,
                write_id=f"loadgen:{seed}:{index}",
            )
        except ServerBusy:
            async with lock:
                result.busy += 1
        except DeadlineExceeded:
            async with lock:
                result.deadline_expired += 1
        except (ServerDraining, ConnectError, NetError, WritesFrozen,
                ConnectionError, OSError):
            async with lock:
                result.errors += 1
        else:
            elapsed = clock() - begin
            async with lock:
                result.writes_ok += 1
                result.write_latencies_s.append(elapsed)

    start = clock()
    total = max(1, int(qps * duration_s))
    writes_offered = 0
    inflight: set[asyncio.Task] = set()
    for index in range(total):
        departure = start + index / qps
        delay = departure - clock()
        if delay > 0:
            await sleep(delay)
        if write_fraction > 0.0 and rng.random() < write_fraction:
            writes_offered += 1
            task = asyncio.create_task(one_write(index))
        else:
            task = asyncio.create_task(one_read(index))
        inflight.add(task)
        task.add_done_callback(inflight.discard)
    if inflight:
        await asyncio.gather(*list(inflight), return_exceptions=True)
    result.offered = total
    result.writes_offered = writes_offered
    result.wall_clock_s = clock() - start
    await client.close()
    return result


def run_loadgen(
    host: str,
    port: int,
    goals: list[Term],
    *,
    qps: float = 200.0,
    duration_s: float = 1.0,
    mode: SearchMode | None = None,
    deadline_s: float | None = None,
    max_retries: int = 0,
    write_fraction: float = 0.0,
    write_template: str = "loadgen_fact",
    seed: int = 0,
    clock=time.monotonic,
    sleep=asyncio.sleep,
) -> LoadgenResult:
    """Drive the service open-loop at ``qps`` for ``duration_s`` seconds.

    ``goals`` are issued round-robin.  ``deadline_s`` is the per-request
    budget sent over the wire; ``max_retries`` is the client retry cap
    (0 so admission-control rejections surface as ``busy`` counts).
    ``write_fraction`` turns the run into a mixed workload: that share
    of arrivals (chosen by a generator seeded with ``seed``) become
    ``assertz`` mutations of unique ``write_template/1`` facts instead
    of reads, measured separately (see :class:`LoadgenResult`).
    ``clock`` and ``sleep`` are injectable so tests can pace the arrival
    schedule deterministically instead of asserting on real time.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    return asyncio.run(
        _run_loadgen_async(
            host,
            port,
            goals,
            qps=qps,
            duration_s=duration_s,
            mode=mode,
            deadline_s=deadline_s,
            max_retries=max_retries,
            write_fraction=write_fraction,
            write_template=write_template,
            seed=seed,
            clock=clock,
            sleep=sleep,
        )
    )


def run_cores_sweep(
    program_text: str,
    goals: list[Term],
    *,
    cores: tuple[int, ...] = (1, 2, 4),
    qps: float = 200.0,
    duration_s: float = 1.0,
    mode: SearchMode | None = None,
    deadline_s: float | None = None,
    shard_by: str = "round_robin",
    workers: str = "processes",
    result_transport: str = "shm",
    clock=time.monotonic,
    sleep=asyncio.sleep,
) -> list[tuple[int, LoadgenResult]]:
    """Self-hosting core sweep: serve ``program_text`` at each core count.

    For every entry in ``cores`` this builds an N-shard cluster
    (``workers="processes"`` puts each shard in its own worker process
    via the multi-core data plane; ``"threads"`` is the GIL-bound
    baseline), serves it over loopback TCP, drives it open-loop, and
    tears everything down.  Round-robin sharding is the default so the
    same program broadcasts across all N engines — that is the layout
    where cores matter.  ``result_transport`` selects how process
    workers ship results back (shared-memory slabs or the pickled
    pipe); ``clock``/``sleep`` pass straight through to
    :func:`run_loadgen` so deterministic-pacing tests keep their
    injected time source at every core count.
    """
    from ..cluster import ShardedRetrievalServer
    from ..net import BackgroundService, RetrievalService

    if workers not in ("processes", "threads"):
        raise ValueError("workers must be 'processes' or 'threads'")
    rows: list[tuple[int, LoadgenResult]] = []
    for n in cores:
        if workers == "processes":
            from ..parallel import ProcessShardedRetrievalServer

            engine = ProcessShardedRetrievalServer(
                n, shard_by, result_transport=result_transport
            )
        else:
            engine = ShardedRetrievalServer(n, shard_by)
        try:
            engine.consult_text(program_text)
            if workers == "processes":
                engine.start()
            service = RetrievalService(
                engine, max_in_flight=max(4, n), executor_workers=max(4, n)
            )
            background = BackgroundService(service)
            host, port = background.start()
            try:
                result = run_loadgen(
                    host,
                    port,
                    goals,
                    qps=qps,
                    duration_s=duration_s,
                    mode=mode,
                    deadline_s=deadline_s,
                    clock=clock,
                    sleep=sleep,
                )
            finally:
                background.stop()
        finally:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        rows.append((n, result))
    return rows


def format_cores_table(rows: list[tuple[int, LoadgenResult]]) -> str:
    """Render a core sweep as a fixed-width percentile table."""
    lines = [
        f"{'cores':>5} {'qps':>8} {'p50_ms':>8} {'p90_ms':>8} "
        f"{'p99_ms':>8} {'ok':>6} {'busy':>6} {'err':>5}"
    ]
    for n, result in rows:
        lines.append(
            f"{n:>5} {result.achieved_qps:>8.1f} "
            f"{result.latency_s(0.50) * 1e3:>8.2f} "
            f"{result.latency_s(0.90) * 1e3:>8.2f} "
            f"{result.latency_s(0.99) * 1e3:>8.2f} "
            f"{result.ok:>6} {result.busy:>6} {result.errors:>5}"
        )
    return "\n".join(lines)
