"""Database-viewpoint Prolog benchmarks (after the paper's refs [6, 7]).

"Once the CLARE hardware is fully developed, it will be subjected to
benchmark tests similar to the ones devised in [7]" (paper section 4).
Those benchmarks evaluate Prolog systems *as database systems*: large
fact tables under selections of controlled selectivity, joins expressed
as rules, recursive closure, bulk updates, and a pure-inference control
(naive reverse).  This module builds that suite against the PDBM stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..storage import KnowledgeBase, Residency
from ..terms import Atom, Clause, Int, Struct, Term, Var

__all__ = ["DBBenchProgram", "standard_suite", "build_benchmark_kb"]


@dataclass(frozen=True)
class DBBenchProgram:
    """One benchmark: a KB builder, a goal, and the expected answer count."""

    name: str
    description: str
    build: Callable[[], KnowledgeBase]
    goal: Term
    expected_answers: int


def _disk(kb: KnowledgeBase, module: str = "data") -> KnowledgeBase:
    kb.module(module).pin(Residency.DISK)
    kb.sync_to_disk()
    return kb


def _fact_table(
    kb: KnowledgeBase,
    functor: str,
    rows: int,
    key_domain: int,
    seed: int,
    module: str = "data",
) -> list[Clause]:
    """``functor(key, group, value)`` with ``group`` drawn from 10 groups."""
    rng = random.Random(seed)
    clauses = []
    for key in range(rows):
        clause = Clause(
            Struct(
                functor,
                (
                    Atom(f"k{key % key_domain}"),
                    Atom(f"g{rng.randrange(10)}"),
                    Int(rng.randrange(1000)),
                ),
            )
        )
        clauses.append(clause)
    kb.consult_clauses(clauses, module=module)
    return clauses


def standard_suite(rows: int = 1000, seed: int = 0) -> list[DBBenchProgram]:
    """The standard benchmark programs at a given table size."""

    def build_select() -> KnowledgeBase:
        kb = KnowledgeBase()
        _fact_table(kb, "emp", rows, key_domain=rows, seed=seed)
        return _disk(kb)

    def build_selective() -> KnowledgeBase:
        kb = KnowledgeBase()
        _fact_table(kb, "emp", rows, key_domain=rows, seed=seed)
        return _disk(kb)

    def build_join() -> KnowledgeBase:
        kb = KnowledgeBase()
        rng = random.Random(seed + 1)
        supplier = [
            Clause(Struct("supplies", (Atom(f"s{i % 20}"), Atom(f"part{i}"))))
            for i in range(rows // 2)
        ]
        uses = [
            Clause(
                Struct(
                    "consumes",
                    (Atom(f"part{rng.randrange(rows // 2)}"), Atom(f"proj{i % 15}")),
                )
            )
            for i in range(rows // 2)
        ]
        kb.consult_clauses(supplier, module="data")
        kb.consult_clauses(uses, module="data")
        kb.consult_text(
            "route(S, P) :- supplies(S, Part), consumes(Part, P).",
            module="data",
        )
        return _disk(kb)

    def build_closure() -> KnowledgeBase:
        kb = KnowledgeBase()
        chain = min(rows, 60)
        edges = [
            Clause(Struct("edge", (Atom(f"n{i}"), Atom(f"n{i + 1}"))))
            for i in range(chain)
        ]
        kb.consult_clauses(edges, module="data")
        kb.consult_text(
            "reach(X, Y) :- edge(X, Y). "
            "reach(X, Z) :- edge(X, Y), reach(Y, Z).",
            module="data",
        )
        return _disk(kb)

    def build_nrev() -> KnowledgeBase:
        return KnowledgeBase()  # pure inference via the library

    chain = min(rows, 60)
    suite = [
        DBBenchProgram(
            name="select_exact",
            description="ground lookup in a fact table (one answer)",
            build=build_select,
            goal=Struct("emp", (Atom("k7"), Var("G"), Var("V"))),
            expected_answers=_count_key(rows, rows, seed, "k7"),
        ),
        DBBenchProgram(
            name="select_group",
            description="one-attribute selection, ~10% selectivity",
            build=build_selective,
            goal=Struct("emp", (Var("K"), Atom("g3"), Var("V"))),
            expected_answers=_count_group(rows, rows, seed, "g3"),
        ),
        DBBenchProgram(
            name="join",
            description="two-table join through a rule",
            build=build_join,
            goal=Struct("route", (Atom("s3"), Var("P"))),
            expected_answers=-1,  # data dependent; verified > 0 at run time
        ),
        DBBenchProgram(
            name="closure",
            description="transitive closure over an edge chain",
            build=build_closure,
            goal=Struct("reach", (Atom("n0"), Var("X"))),
            expected_answers=chain,
        ),
        DBBenchProgram(
            name="nrev30",
            description="naive reverse of a 30-element list (inference rate)",
            build=build_nrev,
            goal=Struct(
                "nrev",
                (
                    _numlist_term(30),
                    Var("R"),
                ),
            ),
            expected_answers=1,
        ),
    ]
    return suite


def build_benchmark_kb(rows: int = 1000, seed: int = 0) -> KnowledgeBase:
    """A single KB holding the fact-table workload (for ad hoc use)."""
    kb = KnowledgeBase()
    _fact_table(kb, "emp", rows, key_domain=rows, seed=seed)
    return _disk(kb)


def _count_key(rows: int, key_domain: int, seed: int, key: str) -> int:
    return sum(1 for i in range(rows) if f"k{i % key_domain}" == key)


def _count_group(rows: int, key_domain: int, seed: int, group: str) -> int:
    rng = random.Random(seed)
    count = 0
    for _ in range(rows):
        g = f"g{rng.randrange(10)}"
        rng.randrange(1000)
        if g == group:
            count += 1
    return count


def _numlist_term(length: int) -> Term:
    from ..terms import make_list

    return make_list([Int(i) for i in range(1, length + 1)])
