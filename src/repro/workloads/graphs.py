"""Recursive graph and list workloads for the resolution engines.

The retrieval benchmarks stress the CRS with wide, flat fact bases; the
``solve`` pipeline needs the opposite shape — *small* programs whose
queries recurse deeply, so most of the work is conjunctive resolution
pulling candidates through the retrieval path (first-argument routing,
batched sibling prefetch, choice-point bookkeeping) rather than one big
scan.  Everything here is emitted as Prolog source text so the same
program consults identically into a :class:`~repro.storage.KnowledgeBase`,
a :class:`~repro.cluster.ShardedRetrievalServer`, or a file handed to
``repro.cli serve``.

All generated graphs are acyclic, so the naive left-recursive-free
``path/2`` closure terminates without tabling.
"""

from __future__ import annotations

__all__ = [
    "chain_edges",
    "layered_edges",
    "path_rules",
    "chain_program",
    "layered_program",
    "chain_path_goals",
    "nrev_program",
    "nrev_goal",
]

#: Transitive closure over ``edge/2``.  First argument indexed: a bound
#: source routes the ``edge(X, Y)`` candidate pull to one shard.
PATH_RULES = """\
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""


def _node(index: int) -> str:
    return f"n{index}"


def chain_edges(length: int) -> str:
    """``length`` edges in a line: n0 -> n1 -> ... -> n<length>."""
    return "\n".join(
        f"edge({_node(i)}, {_node(i + 1)})." for i in range(length)
    ) + ("\n" if length else "")


def layered_edges(layers: int, width: int) -> str:
    """A layered DAG: every node fans out to the whole next layer.

    ``layers * width`` nodes, ``(layers - 1) * width * width`` edges;
    the number of distinct source-to-sink paths grows as
    ``width ** (layers - 1)``, so even small shapes give the solver a
    deep, bushy search tree.
    """
    lines = []
    for layer in range(layers - 1):
        for src in range(width):
            for dst in range(width):
                lines.append(
                    f"edge(l{layer}_{src}, l{layer + 1}_{dst})."
                )
    return "\n".join(lines) + ("\n" if lines else "")


def path_rules() -> str:
    return PATH_RULES


def chain_program(length: int) -> str:
    """A chain of ``length`` edges plus the ``path/2`` closure."""
    return chain_edges(length) + PATH_RULES


def layered_program(layers: int, width: int) -> str:
    """A layered fan-out DAG plus the ``path/2`` closure."""
    return layered_edges(layers, width) + PATH_RULES


def chain_path_goals(length: int) -> list[str]:
    """Representative queries over :func:`chain_program`.

    One bound-source query (routes to a single shard under first-arg
    sharding), one fully open query (broadcast), and one reachability
    check spanning the whole chain.
    """
    return [
        f"path({_node(0)}, X)",
        "path(X, Y)",
        f"path({_node(0)}, {_node(length)})",
    ]


#: Naive reverse — the classic deep-recursion workload.  ``nrev/2`` on
#: an N-element list makes O(N^2) inferences and recurses N deep, which
#: is what the interpreter's stack-budget handling is sized against.
NREV_RULES = """\
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
"""


def nrev_program() -> str:
    """The ``app/3`` + ``nrev/2`` naive-reverse program."""
    return NREV_RULES


def nrev_goal(length: int) -> str:
    """``nrev([0, 1, ..., length-1], R)`` as goal text."""
    items = ", ".join(str(i) for i in range(length))
    return f"nrev([{items}], R)"
