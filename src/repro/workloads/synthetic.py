"""Synthetic knowledge-base and query generators.

The paper's evaluation plan (the database-oriented Prolog benchmarks of
refs [6,7]) needs clause sets whose *shape statistics* are controllable:
how many clauses per predicate, the fact/rule mix, how many arguments,
how selective a ground query is, how deep structures nest, and how often
variables repeat (the shared-variable/cross-binding cases that motivate
FS2).  All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..terms import Atom, Clause, Int, Struct, Term, Var

__all__ = [
    "FactKBSpec",
    "generate_facts",
    "generate_mixed_predicate",
    "generate_couples",
    "ground_query_for",
    "shared_variable_query",
    "open_query",
]


@dataclass(frozen=True)
class FactKBSpec:
    """Parameters of a generated fact predicate."""

    functor: str = "rec"
    arity: int = 3
    count: int = 1000
    #: distinct constants drawn per argument position; smaller pools mean
    #: less selective queries and more codeword collisions.
    domain_sizes: tuple[int, ...] = ()
    #: fraction of arguments replaced by fresh variables (non-ground facts)
    variable_fraction: float = 0.0
    #: fraction of arguments that are nested structures f(c1, c2)
    structure_fraction: float = 0.0
    seed: int = 0


def generate_facts(spec: FactKBSpec) -> list[Clause]:
    """A predicate of ``count`` facts with the requested shape."""
    rng = random.Random(spec.seed)
    domains = list(spec.domain_sizes)
    while len(domains) < spec.arity:
        domains.append(max(spec.count // 10, 10))
    clauses = []
    for row in range(spec.count):
        args: list[Term] = []
        for position in range(spec.arity):
            roll = rng.random()
            if roll < spec.variable_fraction:
                args.append(Var(f"V{position}"))
            elif roll < spec.variable_fraction + spec.structure_fraction:
                inner = rng.randrange(domains[position])
                args.append(
                    Struct(
                        f"s{position}",
                        (Atom(f"c{position}_{inner}"), Int(inner)),
                    )
                )
            else:
                args.append(Atom(f"c{position}_{rng.randrange(domains[position])}"))
        clauses.append(Clause(Struct(spec.functor, tuple(args))))
    return clauses


def generate_mixed_predicate(
    functor: str = "mixed",
    arity: int = 2,
    facts: int = 100,
    rules: int = 10,
    helper_functor: str = "aux",
    seed: int = 0,
) -> list[Clause]:
    """A *mixed relation*: facts and rules interleaved in one predicate.

    Mixed relations are exactly what coupled systems disallow and the
    integrated PDBM supports (paper section 1).
    """
    rng = random.Random(seed)
    clauses: list[Clause] = []
    produced_facts = 0
    produced_rules = 0
    total = facts + rules
    for _ in range(total):
        want_rule = produced_rules < rules and (
            produced_facts >= facts or rng.random() < rules / total
        )
        if want_rule:
            head_vars = tuple(Var(f"X{i}") for i in range(arity))
            body_goal = Struct(helper_functor, head_vars)
            clauses.append(Clause(Struct(functor, head_vars), (body_goal,)))
            produced_rules += 1
        else:
            args = tuple(
                Atom(f"m{i}_{rng.randrange(max(facts // 5, 5))}")
                for i in range(arity)
            )
            clauses.append(Clause(Struct(functor, args)))
            produced_facts += 1
    return clauses


def generate_couples(
    count: int = 500, same_surname_fraction: float = 0.1, seed: int = 0
) -> list[Clause]:
    """The paper's ``married_couple`` predicate.

    Each fact pairs two surnames; in ``same_surname_fraction`` of them the
    surnames coincide — those are the only answers to the shared-variable
    query ``married_couple(S, S)``, yet SCW indexing retrieves everything.
    """
    rng = random.Random(seed)
    surname_pool = max(count // 4, 8)
    clauses = []
    for _ in range(count):
        wife = f"surname{rng.randrange(surname_pool)}"
        if rng.random() < same_surname_fraction:
            husband = wife
        else:
            husband = f"surname{rng.randrange(surname_pool)}"
            while husband == wife:
                husband = f"surname{rng.randrange(surname_pool)}"
        clauses.append(
            Clause(Struct("married_couple", (Atom(wife), Atom(husband))))
        )
    return clauses


def ground_query_for(
    clauses: list[Clause], seed: int = 0, bound_arguments: int | None = None
) -> Term:
    """A ground(ish) query guaranteed to match at least one clause.

    Takes a random fact's head and keeps ``bound_arguments`` of its
    arguments, replacing the rest with fresh variables.
    """
    rng = random.Random(seed)
    facts = [c for c in clauses if c.is_fact and isinstance(c.head, Struct)]
    if not facts:
        raise ValueError("no facts to derive a query from")
    head = rng.choice(facts).head
    assert isinstance(head, Struct)
    if bound_arguments is None:
        bound_arguments = head.arity
    keep = set(rng.sample(range(head.arity), min(bound_arguments, head.arity)))
    args = tuple(
        arg if position in keep else Var(f"Q{position}")
        for position, arg in enumerate(head.args)
    )
    return Struct(head.functor, args)


def shared_variable_query(functor: str, arity: int = 2) -> Term:
    """The ``married_couple(S, S)`` pattern for any binary-ish predicate."""
    if arity < 2:
        raise ValueError("shared-variable queries need arity >= 2")
    shared = Var("Same")
    args: tuple[Term, ...] = (shared, shared) + tuple(
        Var(f"Q{i}") for i in range(arity - 2)
    )
    return Struct(functor, args)


def open_query(functor: str, arity: int) -> Term:
    """A fully open query: every argument a distinct variable."""
    if arity == 0:
        return Atom(functor)
    return Struct(functor, tuple(Var(f"Q{i}") for i in range(arity)))
