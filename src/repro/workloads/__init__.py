"""Synthetic workload generators for the evaluation benchmarks."""

from .dbbench import DBBenchProgram, build_benchmark_kb, standard_suite
from .graphs import (
    chain_path_goals,
    chain_program,
    layered_program,
    nrev_goal,
    nrev_program,
)
from .loadgen import (
    LoadgenResult,
    format_cores_table,
    percentile,
    run_cores_sweep,
    run_loadgen,
)
from .synthetic import (
    FactKBSpec,
    generate_couples,
    generate_facts,
    generate_mixed_predicate,
    ground_query_for,
    open_query,
    shared_variable_query,
)
from .warren import WARREN_FULL, WarrenSpec, build_warren_kb, warren_kb_spec

__all__ = [
    "DBBenchProgram",
    "FactKBSpec",
    "build_benchmark_kb",
    "standard_suite",
    "WARREN_FULL",
    "WarrenSpec",
    "build_warren_kb",
    "chain_path_goals",
    "chain_program",
    "layered_program",
    "nrev_goal",
    "nrev_program",
    "generate_couples",
    "generate_facts",
    "generate_mixed_predicate",
    "ground_query_for",
    "LoadgenResult",
    "percentile",
    "run_loadgen",
    "run_cores_sweep",
    "format_cores_table",
    "open_query",
    "shared_variable_query",
    "warren_kb_spec",
]
