"""The "Warren medium-size knowledge base", scaled.

D.H.D. Warren's envisaged medium-size knowledge base is "of the order of
3000 predicates, 30000 rules, 3000000 facts, and 30 Mbytes total size"
(paper section 1).  A full-size instance is impractical inside a unit
test, so :func:`warren_kb_spec` scales every dimension by one factor and
:func:`build_warren_kb` materialises it with the synthetic generators —
preserving the ratios (10 rules per predicate, 1000 facts per predicate,
~10 bytes per fact) that make it a faithful miniature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..storage import KnowledgeBase
from ..terms import Atom, Clause, Struct, Var

__all__ = ["WarrenSpec", "warren_kb_spec", "build_warren_kb", "WARREN_FULL"]


@dataclass(frozen=True)
class WarrenSpec:
    """Scaled dimensions of Warren's medium-size knowledge base."""

    predicates: int
    rules: int
    facts: int
    scale: float

    @property
    def rules_per_predicate(self) -> int:
        return max(self.rules // max(self.predicates, 1), 0)

    @property
    def facts_per_predicate(self) -> int:
        return max(self.facts // max(self.predicates, 1), 1)


#: Warren's full-size figures.
WARREN_FULL = WarrenSpec(predicates=3000, rules=30_000, facts=3_000_000, scale=1.0)


def warren_kb_spec(scale: float) -> WarrenSpec:
    """Warren's knowledge base scaled down by ``scale`` (0 < scale <= 1)."""
    if not (0 < scale <= 1):
        raise ValueError("scale must be in (0, 1]")
    return WarrenSpec(
        predicates=max(int(WARREN_FULL.predicates * scale), 1),
        rules=max(int(WARREN_FULL.rules * scale), 0),
        facts=max(int(WARREN_FULL.facts * scale), 1),
        scale=scale,
    )


def build_warren_kb(spec: WarrenSpec, seed: int = 0) -> KnowledgeBase:
    """Materialise a scaled Warren KB: mixed fact+rule predicates."""
    rng = random.Random(seed)
    kb = KnowledgeBase()
    arities = [rng.choice((2, 2, 3, 3, 4)) for _ in range(spec.predicates)]
    for p in range(spec.predicates):
        functor = f"pred{p}"
        arity = arities[p]
        domain = max(spec.facts_per_predicate // 10, 8)
        clauses: list[Clause] = []
        for _ in range(spec.facts_per_predicate):
            args = tuple(
                Atom(f"k{position}_{rng.randrange(domain)}")
                for position in range(arity)
            )
            clauses.append(Clause(Struct(functor, args)))
        for _ in range(spec.rules_per_predicate):
            head_vars = tuple(Var(f"X{i}") for i in range(arity))
            if p == 0:
                # The first predicate has no earlier sibling to call; its
                # "rules" degenerate to universal facts.
                clauses.append(Clause(Struct(functor, head_vars)))
                continue
            # Rule bodies call a strictly-earlier predicate (no recursion)
            # with the right arity, giving the interpreter real
            # multi-predicate work.
            target = rng.randrange(p)
            target_args = (head_vars[0],) * arities[target]
            body = Struct(f"pred{target}", target_args)
            clauses.append(Clause(Struct(functor, head_vars), (body,)))
        # Mixed relation: shuffle facts and rules into one user order.
        rng.shuffle(clauses)
        kb.consult_clauses(clauses, module=f"mod{p % 10}")
    return kb
