"""Human-readable dumps of PIF item streams and clause records.

The debugging companion to the microcode disassembler: shows every item's
tag, content and meaning, exactly as the FS2's map ROM would classify it.
"""

from __future__ import annotations

from . import tags
from .clausefile import CompiledClause
from .decoder import Item, scan_items
from .symbols import SymbolTable

__all__ = ["dump_stream", "dump_record", "describe_item"]


def describe_item(item: Item, symbols: SymbolTable | None = None) -> str:
    """One item as ``tag content -- meaning``."""
    meaning = tags.tag_name(item.tag)
    detail = ""
    category = item.category
    if category == tags.TagCategory.INTEGER:
        raw = ((item.tag & 0xF) << 24) | item.content
        if raw >= 1 << (tags.INT_INLINE_BITS - 1):
            raw -= 1 << tags.INT_INLINE_BITS
        detail = f"value {raw}"
    elif category in (tags.TagCategory.ATOM, tags.TagCategory.FLOAT):
        detail = f"symbol #{item.content}"
        if symbols is not None:
            try:
                kind, value = symbols.lookup(item.content)
                detail += f" ({value!r})"
            except KeyError:
                detail += " (dangling)"
    elif category in (
        tags.TagCategory.FIRST_QUERY_VAR,
        tags.TagCategory.SUB_QUERY_VAR,
        tags.TagCategory.FIRST_DB_VAR,
        tags.TagCategory.SUB_DB_VAR,
    ):
        detail = f"slot {item.content}"
    elif category == tags.TagCategory.STRUCT_INLINE:
        detail = f"functor #{item.content}"
        if symbols is not None:
            try:
                detail += f" ({symbols.atom_name_at(item.content)!r})"
            except KeyError:
                detail += " (dangling)"
    elif tags.is_pointer_tag(item.tag):
        detail = f"heap +{item.extension}"
    text = f"0x{item.tag:02x} {item.content:8d}  {meaning}"
    if detail:
        text += f"  [{detail}]"
    return text


def dump_stream(
    stream: bytes, symbols: SymbolTable | None = None, indent: str = "  "
) -> list[str]:
    """All items of a raw stream, one line each, nested by term depth."""
    from ..fs2.cursor import inline_children

    lines = []
    pending: list[int] = []  # remaining child terms at each open level
    for item in scan_items(stream):
        lines.append(f"{indent * len(pending)}{describe_item(item, symbols)}")
        if pending:
            pending[-1] -= 1
        children = inline_children(item)
        if children:
            pending.append(children)
        while pending and pending[-1] == 0:
            pending.pop()
    return lines


def dump_record(
    record: CompiledClause, symbols: SymbolTable | None = None
) -> list[str]:
    """A whole compiled clause: head stream, body stream, heap size."""
    name, arity = record.indicator
    lines = [f"clause {name}/{arity} ({'fact' if record.is_fact else 'rule'})"]
    lines.append("head:")
    lines.extend(dump_stream(record.head_stream, symbols))
    if record.body_stream:
        lines.append("body:")
        lines.extend(dump_stream(record.body_stream, symbols))
    if record.heap:
        lines.append(f"heap: {len(record.heap)} bytes")
    if record.var_names:
        lines.append("variables: " + ", ".join(record.var_names))
    return lines
