"""The symbol table backing PIF atom/float/functor content fields.

Atom names, functor names and float values are interned here; the PIF
content field stores the 24-bit symbol offset.  The table is append-only
(compiled clause files reference offsets forever) and serialisable so a
knowledge base can persist it beside its clause files.
"""

from __future__ import annotations

from ..terms import Atom, Float

__all__ = ["SymbolTable", "SymbolTableFull"]

#: Content fields are 24 bits wide.
MAX_SYMBOLS = 1 << 24


class SymbolTableFull(RuntimeError):
    """Raised when the 24-bit offset space is exhausted."""


class SymbolTable:
    """Append-only interning table for atoms, functors and floats.

    Atoms and functors share the name space (an atom *is* a 0-arity
    functor); floats are keyed separately so ``1.0`` and an atom ``'1.0'``
    do not collide.
    """

    __slots__ = ("_entries", "_atom_index", "_float_index")

    def __init__(self) -> None:
        self._entries: list[tuple[str, str | float]] = []
        self._atom_index: dict[str, int] = {}
        self._float_index: dict[float, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def intern_atom(self, name: str) -> int:
        """Offset for an atom/functor name, allocating if new."""
        offset = self._atom_index.get(name)
        if offset is None:
            offset = self._allocate(("atom", name))
            self._atom_index[name] = offset
        return offset

    def intern_float(self, value: float) -> int:
        """Offset for a float value, allocating if new.

        ``-0.0`` interns as ``0.0``: the two unify (and hash/compare
        equal as dict keys, so they could never hold separate entries
        anyway) — canonicalising makes the decoded sign independent of
        which zero happened to be interned first.
        """
        if value == 0.0:
            value = 0.0
        offset = self._float_index.get(value)
        if offset is None:
            offset = self._allocate(("float", value))
            self._float_index[value] = offset
        return offset

    def _allocate(self, entry: tuple[str, str | float]) -> int:
        if len(self._entries) >= MAX_SYMBOLS:
            raise SymbolTableFull("24-bit symbol offset space exhausted")
        self._entries.append(entry)
        return len(self._entries) - 1

    def lookup(self, offset: int) -> tuple[str, str | float]:
        """The ``(kind, value)`` entry at ``offset``."""
        try:
            return self._entries[offset]
        except IndexError:
            raise KeyError(f"no symbol at offset {offset}") from None

    def atom_at(self, offset: int) -> Atom:
        kind, value = self.lookup(offset)
        if kind != "atom":
            raise KeyError(f"symbol {offset} is a {kind}, not an atom")
        assert isinstance(value, str)
        return Atom(value)

    def float_at(self, offset: int) -> Float:
        kind, value = self.lookup(offset)
        if kind != "float":
            raise KeyError(f"symbol {offset} is a {kind}, not a float")
        assert isinstance(value, float)
        return Float(value)

    def atom_name_at(self, offset: int) -> str:
        return self.atom_at(offset).name

    def contains_atom(self, name: str) -> bool:
        return name in self._atom_index

    # -- persistence ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the table (length-prefixed UTF-8 / float text entries)."""
        out = bytearray()
        out += len(self._entries).to_bytes(4, "big")
        for kind, value in self._entries:
            payload = (
                value.encode("utf-8") if kind == "atom" else repr(value).encode()
            )
            out.append(0 if kind == "atom" else 1)
            out += len(payload).to_bytes(3, "big")
            out += payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SymbolTable":
        table = cls()
        count = int.from_bytes(data[:4], "big")
        position = 4
        for _ in range(count):
            kind_byte = data[position]
            length = int.from_bytes(data[position + 1 : position + 4], "big")
            payload = data[position + 4 : position + 4 + length]
            position += 4 + length
            if kind_byte == 0:
                table.intern_atom(payload.decode("utf-8"))
            else:
                table.intern_float(float(payload.decode()))
        return table

    def size_bytes(self) -> int:
        """Serialised size, used by the index-vs-data size benchmark."""
        return len(self.to_bytes())
