"""PIF type tags — the CLARE data type scheme (paper Table A1).

Every argument in the pseudo in-line format is an 8-bit *type tag* followed
by a 24-bit content field, with an optional 32-bit extension for pointer
types.  The tag layouts:

====================  =========  =====================================
Item                  Tag        Content / extension
====================  =========  =====================================
Anonymous variable    0010 0000  --
First query var       0010 0111  variable offset
Subsequent query var  0010 0101  variable offset
First DB var          0010 0110  variable offset
Subsequent DB var     0010 0100  variable offset
Atom pointer          0000 1000  symbol table offset
Float pointer         0000 1001  symbol table offset
Integer in-line       0001 nnnn  least significant 24 bits (nnnn = MS nibble)
Structure in-line     011a aaaa  functor symbol offset; elements follow
Structure pointer     010a aaaa  functor symbol offset; extension -> structure
Term. list in-line    111a aaaa  elements follow
Unterm. list in-line  101a aaaa  elements follow, then the tail variable
Term. list pointer    110a aaaa  extension -> list (DB arguments only)
Unterm. list pointer  100a aaaa  extension -> list (DB arguments only)
====================  =========  =====================================

``aaaaa`` is a 5-bit arity (<= 31); larger terms use the pointer form with
a saturated arity field.  The paper counts 107 supported data types; the
exact enumeration is not given, so :func:`tag_inventory` reports the tag
values this implementation can actually emit (see EXPERIMENTS.md for the
comparison).
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "TAG_ANONYMOUS_VAR",
    "TAG_FIRST_QUERY_VAR",
    "TAG_SUB_QUERY_VAR",
    "TAG_FIRST_DB_VAR",
    "TAG_SUB_DB_VAR",
    "TAG_ATOM_PTR",
    "TAG_FLOAT_PTR",
    "TAG_INT_BASE",
    "TAG_STRUCT_INLINE_BASE",
    "TAG_STRUCT_PTR_BASE",
    "TAG_TLIST_INLINE_BASE",
    "TAG_ULIST_INLINE_BASE",
    "TAG_TLIST_PTR_BASE",
    "TAG_ULIST_PTR_BASE",
    "ARITY_MASK",
    "INLINE_ARITY_LIMIT",
    "INT_INLINE_BITS",
    "INT_INLINE_MIN",
    "INT_INLINE_MAX",
    "TagCategory",
    "tag_category",
    "tag_arity",
    "is_variable_tag",
    "is_complex_tag",
    "is_pointer_tag",
    "int_tag_nibble",
    "tag_name",
    "tag_inventory",
]

TAG_ANONYMOUS_VAR = 0x20
TAG_FIRST_QUERY_VAR = 0x27
TAG_SUB_QUERY_VAR = 0x25
TAG_FIRST_DB_VAR = 0x26
TAG_SUB_DB_VAR = 0x24

TAG_ATOM_PTR = 0x08
TAG_FLOAT_PTR = 0x09
TAG_INT_BASE = 0x10  # 0x10 | most_significant_nibble

TAG_STRUCT_INLINE_BASE = 0x60  # 011a aaaa
TAG_STRUCT_PTR_BASE = 0x40  # 010a aaaa
TAG_TLIST_INLINE_BASE = 0xE0  # 111a aaaa
TAG_ULIST_INLINE_BASE = 0xA0  # 101a aaaa
TAG_TLIST_PTR_BASE = 0xC0  # 110a aaaa
TAG_ULIST_PTR_BASE = 0x80  # 100a aaaa

ARITY_MASK = 0x1F
INLINE_ARITY_LIMIT = 31

#: In-line integers: 4-bit tag nibble + 24-bit content = 28 bits, two's
#: complement.
INT_INLINE_BITS = 28
INT_INLINE_MIN = -(2 ** (INT_INLINE_BITS - 1))
INT_INLINE_MAX = 2 ** (INT_INLINE_BITS - 1) - 1

_VARIABLE_TAGS = {
    TAG_ANONYMOUS_VAR,
    TAG_FIRST_QUERY_VAR,
    TAG_SUB_QUERY_VAR,
    TAG_FIRST_DB_VAR,
    TAG_SUB_DB_VAR,
}


class TagCategory(IntEnum):
    """The three matching categories of section 3.1, split by kind.

    Simple terms require simple matching; variable terms require skipping,
    storing or fetch-then-match; complex terms require repetitive matching.
    """

    ATOM = 1
    FLOAT = 2
    INTEGER = 3
    ANONYMOUS = 4
    FIRST_QUERY_VAR = 5
    SUB_QUERY_VAR = 6
    FIRST_DB_VAR = 7
    SUB_DB_VAR = 8
    STRUCT_INLINE = 9
    STRUCT_PTR = 10
    TLIST_INLINE = 11
    ULIST_INLINE = 12
    TLIST_PTR = 13
    ULIST_PTR = 14


_FIXED_CATEGORIES = {
    TAG_ATOM_PTR: TagCategory.ATOM,
    TAG_FLOAT_PTR: TagCategory.FLOAT,
    TAG_ANONYMOUS_VAR: TagCategory.ANONYMOUS,
    TAG_FIRST_QUERY_VAR: TagCategory.FIRST_QUERY_VAR,
    TAG_SUB_QUERY_VAR: TagCategory.SUB_QUERY_VAR,
    TAG_FIRST_DB_VAR: TagCategory.FIRST_DB_VAR,
    TAG_SUB_DB_VAR: TagCategory.SUB_DB_VAR,
}

_COMPLEX_BASES = {
    TAG_STRUCT_INLINE_BASE: TagCategory.STRUCT_INLINE,
    TAG_STRUCT_PTR_BASE: TagCategory.STRUCT_PTR,
    TAG_TLIST_INLINE_BASE: TagCategory.TLIST_INLINE,
    TAG_ULIST_INLINE_BASE: TagCategory.ULIST_INLINE,
    TAG_TLIST_PTR_BASE: TagCategory.TLIST_PTR,
    TAG_ULIST_PTR_BASE: TagCategory.ULIST_PTR,
}


def tag_category(tag: int) -> TagCategory:
    """Classify a tag byte; raises ValueError for unassigned tag values."""
    fixed = _FIXED_CATEGORIES.get(tag)
    if fixed is not None:
        return fixed
    if TAG_INT_BASE <= tag < TAG_INT_BASE + 16:
        return TagCategory.INTEGER
    base = tag & ~ARITY_MASK
    category = _COMPLEX_BASES.get(base)
    if category is not None:
        return category
    raise ValueError(f"unassigned PIF tag 0x{tag:02x}")


def tag_arity(tag: int) -> int:
    """The 5-bit arity field of a complex-term tag."""
    if not is_complex_tag(tag):
        raise ValueError(f"tag 0x{tag:02x} carries no arity")
    return tag & ARITY_MASK


def is_variable_tag(tag: int) -> bool:
    """True for the five variable tags of Table A1."""
    return tag in _VARIABLE_TAGS


def is_complex_tag(tag: int) -> bool:
    """True for structure/list tags (in-line or pointer)."""
    return (tag & ~ARITY_MASK) in _COMPLEX_BASES


def is_pointer_tag(tag: int) -> bool:
    """True for tags whose item carries a 32-bit extension pointer."""
    return (tag & ~ARITY_MASK) in (
        TAG_STRUCT_PTR_BASE,
        TAG_TLIST_PTR_BASE,
        TAG_ULIST_PTR_BASE,
    )


def int_tag_nibble(value: int) -> int:
    """The most significant nibble of a 28-bit two's complement integer."""
    if not (INT_INLINE_MIN <= value <= INT_INLINE_MAX):
        raise ValueError(f"{value} exceeds the in-line integer range")
    return (value >> 24) & 0xF


def tag_name(tag: int) -> str:
    """Human readable tag description, for dumps and the Table A1 bench."""
    category = tag_category(tag)
    if category == TagCategory.INTEGER:
        return f"Integer In-line (nibble {tag & 0xF})"
    names = {
        TagCategory.ATOM: "Atom Pointer",
        TagCategory.FLOAT: "Float Pointer",
        TagCategory.ANONYMOUS: "Anonymous Var",
        TagCategory.FIRST_QUERY_VAR: "First Query Var",
        TagCategory.SUB_QUERY_VAR: "Subsequent Query Var",
        TagCategory.FIRST_DB_VAR: "First DB Var",
        TagCategory.SUB_DB_VAR: "Subsequent DB Var",
        TagCategory.STRUCT_INLINE: "Structure In-line",
        TagCategory.STRUCT_PTR: "Structure Pointer",
        TagCategory.TLIST_INLINE: "Terminated List In-line",
        TagCategory.ULIST_INLINE: "Unterminated List In-line",
        TagCategory.TLIST_PTR: "Terminated List Pointer",
        TagCategory.ULIST_PTR: "Unterminated List Pointer",
    }
    name = names[category]
    if is_complex_tag(tag):
        return f"{name} (arity {tag_arity(tag)})"
    return name


def tag_inventory() -> dict[str, list[int]]:
    """Every tag value this implementation can emit, grouped by item kind.

    The paper states 107 data types are supported but gives no enumeration;
    this inventory makes our tag space auditable against that claim.
    """
    inventory: dict[str, list[int]] = {
        "variables": sorted(_VARIABLE_TAGS),
        "atom": [TAG_ATOM_PTR],
        "float": [TAG_FLOAT_PTR],
        "integer": [TAG_INT_BASE | n for n in range(16)],
        # Structures need at least one argument: arity 1..31 in-line, and
        # pointer forms saturate at 31.
        "structure_inline": [TAG_STRUCT_INLINE_BASE | a for a in range(1, 32)],
        "structure_pointer": [TAG_STRUCT_PTR_BASE | 31],
        # Terminated lists include [] (arity 0); unterminated lists need a
        # prefix element (arity 1..31).
        "tlist_inline": [TAG_TLIST_INLINE_BASE | a for a in range(0, 32)],
        "ulist_inline": [TAG_ULIST_INLINE_BASE | a for a in range(1, 32)],
        "tlist_pointer": [TAG_TLIST_PTR_BASE | 31],
        "ulist_pointer": [TAG_ULIST_PTR_BASE | 31],
    }
    return inventory
