"""Decoding PIF byte streams back into terms.

Two consumers need this module: the host Prolog system, which decompiles
candidate clauses for full unification (:class:`PIFDecoder`), and the FS2
hardware model, which walks the raw item stream (:func:`scan_items`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..terms import NIL, Atom, Int, Struct, Term, Var, make_list
from . import tags
from .encoder import EXTENSION_SIZE, ITEM_SIZE, EncodedArgs
from .symbols import SymbolTable

__all__ = ["PIFDecodeError", "Item", "scan_items", "PIFDecoder"]


class PIFDecodeError(ValueError):
    """Raised on malformed PIF byte streams."""


@dataclass(frozen=True, slots=True)
class Item:
    """One decoded stream item: tag, 24-bit content, optional extension."""

    tag: int
    content: int
    extension: int | None = None

    @property
    def category(self) -> tags.TagCategory:
        return tags.tag_category(self.tag)

    @property
    def arity(self) -> int:
        return tags.tag_arity(self.tag)


def scan_items(stream: bytes) -> list[Item]:
    """Split a raw in-line stream into items (extensions folded in)."""
    items: list[Item] = []
    position = 0
    length = len(stream)
    while position < length:
        item, position = _read_item(stream, position)
        items.append(item)
    return items


def _read_item(data: bytes, position: int) -> tuple[Item, int]:
    if position + ITEM_SIZE > len(data):
        raise PIFDecodeError("truncated item")
    tag = data[position]
    content = int.from_bytes(data[position + 1 : position + ITEM_SIZE], "big")
    position += ITEM_SIZE
    extension = None
    if tags.is_pointer_tag(tag):
        if position + EXTENSION_SIZE > len(data):
            raise PIFDecodeError("truncated extension")
        extension = int.from_bytes(data[position : position + EXTENSION_SIZE], "big")
        position += EXTENSION_SIZE
    return Item(tag, content, extension), position


class PIFDecoder:
    """Reconstruct terms from encoded arguments."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols

    def decode_head(self, encoded: EncodedArgs) -> Term:
        """Rebuild the full head term ``functor(args...)``."""
        name, arity = encoded.indicator
        if arity == 0:
            return Atom(name)
        args = self.decode_args(encoded)
        if len(args) != arity:
            raise PIFDecodeError(
                f"stream holds {len(args)} arguments, indicator says {arity}"
            )
        return Struct(name, tuple(args))

    def decode_args(self, encoded: EncodedArgs) -> list[Term]:
        """Decode the argument stream into a list of terms."""
        reader = _StreamReader(
            encoded.stream, encoded.heap, encoded.var_names, self.symbols
        )
        terms = []
        while not reader.at_end():
            terms.append(reader.read_term())
        return terms

    def decode_term(self, encoded: EncodedArgs) -> Term:
        """Decode a single-term encoding (inverse of ``encode_term``)."""
        terms = self.decode_args(encoded)
        if len(terms) != 1:
            raise PIFDecodeError(f"expected one term, found {len(terms)}")
        return terms[0]


class _StreamReader:
    """Sequential lazy item reader with heap recursion."""

    def __init__(
        self,
        data: bytes,
        heap: bytes,
        var_names: tuple[str, ...],
        symbols: SymbolTable,
    ):
        self.data = data
        self.heap = heap
        self.var_names = var_names
        self.symbols = symbols
        self.position = 0

    def at_end(self) -> bool:
        return self.position >= len(self.data)

    def next_item(self) -> Item:
        if self.at_end():
            raise PIFDecodeError("unexpected end of item stream")
        item, self.position = _read_item(self.data, self.position)
        return item

    def read_term(self) -> Term:
        item = self.next_item()
        category = item.category
        if category == tags.TagCategory.INTEGER:
            raw = ((item.tag & 0xF) << 24) | item.content
            if raw >= 1 << (tags.INT_INLINE_BITS - 1):  # sign extend
                raw -= 1 << tags.INT_INLINE_BITS
            return Int(raw)
        if category == tags.TagCategory.ATOM:
            return self.symbols.atom_at(item.content)
        if category == tags.TagCategory.FLOAT:
            return self.symbols.float_at(item.content)
        if category == tags.TagCategory.ANONYMOUS:
            return Var("_")
        if category in (
            tags.TagCategory.FIRST_QUERY_VAR,
            tags.TagCategory.SUB_QUERY_VAR,
            tags.TagCategory.FIRST_DB_VAR,
            tags.TagCategory.SUB_DB_VAR,
        ):
            return Var(self._var_name(item.content))
        if category == tags.TagCategory.STRUCT_INLINE:
            functor = self.symbols.atom_name_at(item.content)
            args = tuple(self.read_term() for _ in range(item.arity))
            return Struct(functor, args)
        if category == tags.TagCategory.TLIST_INLINE:
            if item.arity == 0:
                return NIL
            elements = [self.read_term() for _ in range(item.arity)]
            tail = self.read_term()
            return make_list(elements, tail=tail)
        if category == tags.TagCategory.ULIST_INLINE:
            elements = [self.read_term() for _ in range(item.arity)]
            tail = self.read_term()
            return make_list(elements, tail=tail)
        if category == tags.TagCategory.STRUCT_PTR:
            assert item.extension is not None
            functor = self.symbols.atom_name_at(item.content)
            arity, reader = self._heap_reader(item.extension)
            args = tuple(reader.read_term() for _ in range(arity))
            return Struct(functor, args)
        if category in (tags.TagCategory.TLIST_PTR, tags.TagCategory.ULIST_PTR):
            assert item.extension is not None
            count, reader = self._heap_reader(item.extension)
            elements = [reader.read_term() for _ in range(count)]
            tail = reader.read_term()
            return make_list(elements, tail=tail)
        raise PIFDecodeError(f"cannot decode tag 0x{item.tag:02x}")

    def _var_name(self, offset: int) -> str:
        if offset < len(self.var_names):
            return self.var_names[offset]
        return f"_V{offset}"

    def _heap_reader(self, offset: int) -> tuple[int, "_StreamReader"]:
        """The (count, element reader) pair for a heap blob."""
        if offset + 4 > len(self.heap):
            raise PIFDecodeError(f"heap pointer {offset} out of range")
        count = int.from_bytes(self.heap[offset : offset + 4], "big")
        reader = _StreamReader(
            self.heap[offset + 4 :], self.heap, self.var_names, self.symbols
        )
        return count, reader
