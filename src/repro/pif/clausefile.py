"""Compiled clause files.

"Predicates with the same functor names and arities are stored in a
compiled clause file" (paper section 2.1).  A :class:`ClauseFile` holds the
PIF-compiled clauses of one predicate in user order; its byte serialisation
is what streams off the simulated disk through CLARE.

Record layout (all integers big-endian)::

    +0   u16  total record length (including this header)
    +2   u8   flags (bit 0: has body, bit 1: variable names present)
    +3   u16  head stream length
    +5   u16  body stream length
    +7   u16  heap length
    +9   ...  head stream | body stream | heap | [var names]

Variable names are a debugging aid (length-prefixed UTF-8 strings); real
1989 hardware stored none.  Records are capped at
:data:`MAX_RECORD_BYTES` = 512 so a clause always fits one Result Memory
slot (the 9-bit low counter of the RM address generator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..terms import Clause, Term
from .encoder import EncodedArgs, PIFEncoder, PIFError
from .decoder import PIFDecoder
from .symbols import SymbolTable

__all__ = [
    "MAX_RECORD_BYTES",
    "CompiledClause",
    "ClauseFile",
    "compile_clause",
]

#: One Result Memory slot: 9 address bits (paper section 3.2).
MAX_RECORD_BYTES = 512

_FLAG_HAS_BODY = 0x01
_FLAG_HAS_NAMES = 0x02


@dataclass(frozen=True)
class CompiledClause:
    """One clause compiled to PIF: head stream + body stream + shared heap."""

    indicator: tuple[str, int]
    head_stream: bytes
    body_stream: bytes
    heap: bytes
    var_names: tuple[str, ...] = ()

    @property
    def head_encoded(self) -> EncodedArgs:
        return EncodedArgs(
            indicator=self.indicator,
            stream=self.head_stream,
            heap=self.heap,
            var_names=self.var_names,
        )

    @property
    def is_fact(self) -> bool:
        return not self.body_stream

    def to_bytes(self, include_names: bool = True) -> bytes:
        """Serialise to the on-disk record format."""
        names_blob = b""
        flags = 0
        if self.body_stream:
            flags |= _FLAG_HAS_BODY
        if include_names and self.var_names:
            flags |= _FLAG_HAS_NAMES
            parts = [len(self.var_names).to_bytes(1, "big")]
            for name in self.var_names:
                encoded = name.encode("utf-8")
                parts.append(len(encoded).to_bytes(1, "big"))
                parts.append(encoded)
            names_blob = b"".join(parts)
        total = 9 + len(self.head_stream) + len(self.body_stream) + len(self.heap)
        total += len(names_blob)
        if total > MAX_RECORD_BYTES:
            raise PIFError(
                f"clause record is {total} bytes; the Result Memory slot "
                f"limit is {MAX_RECORD_BYTES}"
            )
        out = bytearray()
        out += total.to_bytes(2, "big")
        out.append(flags)
        out += len(self.head_stream).to_bytes(2, "big")
        out += len(self.body_stream).to_bytes(2, "big")
        out += len(self.heap).to_bytes(2, "big")
        out += self.head_stream
        out += self.body_stream
        out += self.heap
        out += names_blob
        return bytes(out)

    @classmethod
    def from_bytes(
        cls, data: bytes, indicator: tuple[str, int], offset: int = 0
    ) -> tuple["CompiledClause", int]:
        """Deserialise one record; returns (clause, next offset).

        ``data`` may be ``bytes`` or a ``memoryview`` over an mmap'd
        segment; only the three streams are copied out, never the record.
        """
        total = int.from_bytes(data[offset : offset + 2], "big")
        flags = data[offset + 2]
        head_len = int.from_bytes(data[offset + 3 : offset + 5], "big")
        body_len = int.from_bytes(data[offset + 5 : offset + 7], "big")
        heap_len = int.from_bytes(data[offset + 7 : offset + 9], "big")
        position = offset + 9
        head_stream = bytes(data[position : position + head_len])
        position += head_len
        body_stream = bytes(data[position : position + body_len])
        position += body_len
        heap = bytes(data[position : position + heap_len])
        position += heap_len
        var_names: tuple[str, ...] = ()
        if flags & _FLAG_HAS_NAMES:
            count = data[position]
            position += 1
            names = []
            for _ in range(count):
                length = data[position]
                position += 1
                names.append(bytes(data[position : position + length]).decode("utf-8"))
                position += length
            var_names = tuple(names)
        return (
            cls(indicator, head_stream, body_stream, heap, var_names),
            offset + total,
        )


def decode_compiled(compiled: CompiledClause, symbols: SymbolTable) -> Clause:
    """Decompile a compiled clause record back to a logical clause."""
    from ..terms import body_goals

    decoder = PIFDecoder(symbols)
    head = decoder.decode_head(compiled.head_encoded)
    if compiled.is_fact:
        return Clause(head)
    body_encoded = EncodedArgs(
        indicator=("$body", 1),
        stream=compiled.body_stream,
        heap=compiled.heap,
        var_names=compiled.var_names,
    )
    body_term = decoder.decode_term(body_encoded)
    return Clause(head, body_goals(body_term))


def compile_clause(clause: Clause, symbols: SymbolTable) -> CompiledClause:
    """Compile a clause to PIF with head and body sharing variable slots."""
    encoder = PIFEncoder(symbols, side="db")
    body_term: Term | None = None
    if not clause.is_fact:
        body_term = clause.to_term().args[1]  # the ','-conjunction
    head_encoded, body_stream = encoder.encode_clause(clause.head, body_term)
    return CompiledClause(
        indicator=clause.indicator,
        head_stream=head_encoded.stream,
        body_stream=body_stream,
        heap=head_encoded.heap,
        var_names=head_encoded.var_names,
    )


#: Process-wide generation ids.  Every ClauseFile gets a fresh one, so a
#: (generation, address) pair names one immutable record forever:
#: appends never move existing records, and the mutations that do
#: (asserta, retract) build a *new* ClauseFile with a new generation.
_GENERATIONS = itertools.count(1)


def next_generation() -> int:
    """Allocate a fresh process-wide clause-file generation id.

    Exposed for clause-file *views* (e.g. segment-backed shared files)
    that participate in the (generation, address) cache-keying contract
    without going through :class:`ClauseFile`.
    """
    return next(_GENERATIONS)


class ClauseFile:
    """The compiled clauses of one predicate, in user-specified order."""

    def __init__(self, indicator: tuple[str, int], symbols: SymbolTable):
        self.indicator = indicator
        self.symbols = symbols
        self.generation = next(_GENERATIONS)
        self._records: list[CompiledClause] = []
        self._sources: list[Clause] = []
        # Running byte addresses and record lengths for the default
        # serialisation, so appends (and incremental index updates) stay
        # O(1) and candidate fetches never re-serialise the whole file.
        self._addresses: list[int] = []
        self._lengths: list[int] = []
        self._position_by_address: dict[int, int] = {}
        self._next_address = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CompiledClause]:
        return iter(self._records)

    def append(self, clause: Clause) -> CompiledClause:
        """Compile and append a clause (preserving user ordering)."""
        if clause.indicator != self.indicator:
            raise ValueError(
                f"clause {clause.indicator} does not belong in file "
                f"{self.indicator}"
            )
        compiled = compile_clause(clause, self.symbols)
        record_bytes = compiled.to_bytes()  # enforce the record size cap
        self._records.append(compiled)
        self._sources.append(clause)
        self._position_by_address[self._next_address] = len(self._addresses)
        self._addresses.append(self._next_address)
        self._lengths.append(len(record_bytes))
        self._next_address += len(record_bytes)
        return compiled

    def record(self, index: int) -> CompiledClause:
        return self._records[index]

    def source_clause(self, index: int) -> Clause:
        """The original (uncompiled) clause, for interpreter fallback."""
        return self._sources[index]

    def decode_clause(self, index: int) -> Clause:
        """Decompile record ``index`` back to a logical clause."""
        return decode_compiled(self._records[index], self.symbols)

    # -- persistence -----------------------------------------------------

    def to_bytes(self, include_names: bool = True) -> bytes:
        """All records concatenated (the on-disk clause file image)."""
        return b"".join(r.to_bytes(include_names) for r in self._records)

    def record_addresses(self, include_names: bool = True) -> list[int]:
        """Byte offset of each record within :meth:`to_bytes`."""
        if include_names:
            return list(self._addresses)
        addresses = []
        position = 0
        for record in self._records:
            addresses.append(position)
            position += len(record.to_bytes(include_names))
        return addresses

    def record_lengths(self) -> list[int]:
        """Serialised byte length of each record (cached, O(1) per record)."""
        return list(self._lengths)

    def record_span(self, address: int) -> tuple[int, int]:
        """(position, length) of the record at a byte ``address``.

        The table is maintained incrementally by :meth:`append`, so
        candidate fetches are O(1) per address instead of re-serialising
        every record on every retrieval.
        """
        try:
            position = self._position_by_address[address]
        except KeyError:
            raise KeyError(
                f"no record of {self.indicator} at address {address}"
            ) from None
        return position, self._lengths[position]

    def record_bytes(self, position: int) -> bytes:
        """The serialised record at ``position`` (one record only)."""
        return self._records[position].to_bytes()

    def last_address(self) -> int:
        """Address of the most recently appended record."""
        if not self._addresses:
            raise IndexError("clause file is empty")
        return self._addresses[-1]

    def size_bytes(self) -> int:
        # The running append address is the concatenated size; don't
        # re-serialise 300 records to answer a residency check.
        return self._next_address
