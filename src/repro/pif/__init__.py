"""The Pseudo In-line Format (PIF): CLARE's compiled clause representation."""

from . import tags
from .clausefile import (
    MAX_RECORD_BYTES,
    ClauseFile,
    CompiledClause,
    compile_clause,
)
from .decoder import Item, PIFDecodeError, PIFDecoder, scan_items
from .encoder import (
    EXTENSION_SIZE,
    ITEM_SIZE,
    EncodedArgs,
    PIFEncoder,
    PIFError,
)
from .symbols import SymbolTable, SymbolTableFull

__all__ = [
    "EXTENSION_SIZE",
    "ITEM_SIZE",
    "MAX_RECORD_BYTES",
    "ClauseFile",
    "CompiledClause",
    "EncodedArgs",
    "Item",
    "PIFDecodeError",
    "PIFDecoder",
    "PIFEncoder",
    "PIFError",
    "SymbolTable",
    "SymbolTableFull",
    "compile_clause",
    "scan_items",
    "tags",
]
