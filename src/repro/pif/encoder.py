"""Compiling terms into the Pseudo In-line Format (PIF).

An encoded argument is a sequence of 4-byte *items* (8-bit tag + 24-bit
content); pointer-type items carry an additional 4-byte extension that
indexes an out-of-line *heap* area holding terms too large for in-line
representation (arity above 31).

Layout decisions the paper leaves open (documented deviations):

* In-line list items are followed by their prefix elements and then one
  *tail item* (the NIL item ``0xE0`` for proper lists, a variable item for
  unlimited lists, or an arbitrary term item for improper cons chains).
  The empty list itself is the single item ``0xE0`` with no tail.
* Heap blobs are ``real-arity (4 bytes) | element items`` for structures
  and ``real-prefix-length (4 bytes) | element items | tail item`` for
  lists; nested oversized terms are encoded post-order so extensions
  always point backwards.
* Integers must fit 28-bit two's complement (tag nibble + 24-bit
  content); anything larger raises :class:`PIFError`, mirroring the
  hardware's fixed field width.

Variable occurrences are typed at compile time: the first occurrence of a
named variable gets the First-DB/Query-Var tag, later occurrences the
Subsequent tag, and all occurrences share one content field (the variable
offset, which doubles as the binding-store slot at run time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..terms import NIL, Atom, Float, Int, Struct, Term, Var, list_parts
from . import tags
from .symbols import SymbolTable

__all__ = ["PIFError", "EncodedArgs", "PIFEncoder", "ITEM_SIZE", "EXTENSION_SIZE"]

ITEM_SIZE = 4
EXTENSION_SIZE = 4


class PIFError(ValueError):
    """A term cannot be represented in PIF."""


@dataclass(frozen=True)
class EncodedArgs:
    """The PIF encoding of one clause head's (or query's) arguments."""

    indicator: tuple[str, int]
    stream: bytes
    heap: bytes = b""
    var_names: tuple[str, ...] = ()

    @property
    def size_bytes(self) -> int:
        return len(self.stream) + len(self.heap)

    def item_words(self) -> list[tuple[int, int]]:
        """The in-line stream as a list of (tag, content) pairs.

        Extensions are folded into the preceding item's word list entry by
        the stream scanner in :mod:`repro.pif.decoder`; this helper is the
        raw 4-byte view used by the FS2 double-buffer model.
        """
        words = []
        for offset in range(0, len(self.stream), ITEM_SIZE):
            word = self.stream[offset : offset + ITEM_SIZE]
            words.append((word[0], int.from_bytes(word[1:], "big")))
        return words


class PIFEncoder:
    """Encode clause heads (side ``db``) or queries (side ``query``)."""

    def __init__(self, symbols: SymbolTable, side: str = "db"):
        if side not in ("db", "query"):
            raise ValueError(f"side must be 'db' or 'query', not {side!r}")
        self.symbols = symbols
        self.side = side
        if side == "db":
            self._first_tag = tags.TAG_FIRST_DB_VAR
            self._sub_tag = tags.TAG_SUB_DB_VAR
        else:
            self._first_tag = tags.TAG_FIRST_QUERY_VAR
            self._sub_tag = tags.TAG_SUB_QUERY_VAR

    def encode_head(self, head: Term) -> EncodedArgs:
        """Encode the arguments of a clause head / query term."""
        if isinstance(head, Atom):
            return EncodedArgs(indicator=(head.name, 0), stream=b"")
        if not isinstance(head, Struct):
            raise PIFError(f"clause head must be callable, got {head!r}")
        state = _EncodeState()
        for arg in head.args:
            self._encode(arg, state)
        return EncodedArgs(
            indicator=head.indicator,
            stream=bytes(state.stream),
            heap=bytes(state.heap),
            var_names=tuple(state.var_names),
        )

    def encode_clause(
        self, head: Term, body_term: Term | None = None
    ) -> tuple[EncodedArgs, bytes]:
        """Encode head arguments and an optional body term in one pass.

        The body shares the head's variable numbering and heap, so a
        variable appearing in both is Sub-typed in the body.  Returns the
        head encoding plus the raw body stream (empty for facts).
        """
        if isinstance(head, Atom):
            indicator: tuple[str, int] = (head.name, 0)
            args: tuple[Term, ...] = ()
        elif isinstance(head, Struct):
            indicator = head.indicator
            args = head.args
        else:
            raise PIFError(f"clause head must be callable, got {head!r}")
        state = _EncodeState()
        for arg in args:
            self._encode(arg, state)
        head_length = len(state.stream)
        if body_term is not None:
            self._encode(body_term, state)
        stream = bytes(state.stream)
        head_encoded = EncodedArgs(
            indicator=indicator,
            stream=stream[:head_length],
            heap=bytes(state.heap),
            var_names=tuple(state.var_names),
        )
        return head_encoded, stream[head_length:]

    def encode_term(self, term: Term) -> EncodedArgs:
        """Encode a single term as a one-item stream (used for bodies)."""
        state = _EncodeState()
        self._encode(term, state)
        return EncodedArgs(
            indicator=("$term", 1),
            stream=bytes(state.stream),
            heap=bytes(state.heap),
            var_names=tuple(state.var_names),
        )

    # -- encoding ------------------------------------------------------------

    def _encode(self, term: Term, state: "_EncodeState") -> None:
        if isinstance(term, Var):
            self._encode_var(term, state)
        elif isinstance(term, Int):
            self._encode_int(term, state)
        elif isinstance(term, Float):
            state.emit(tags.TAG_FLOAT_PTR, self.symbols.intern_float(term.value))
        elif isinstance(term, Atom):
            if term == NIL:
                state.emit(tags.TAG_TLIST_INLINE_BASE)  # arity 0 == []
            else:
                state.emit(tags.TAG_ATOM_PTR, self.symbols.intern_atom(term.name))
        elif isinstance(term, Struct):
            if term.functor == "." and term.arity == 2:
                self._encode_list(term, state)
            else:
                self._encode_struct(term, state)
        else:
            raise PIFError(f"cannot encode {term!r}")

    def _encode_var(self, var: Var, state: "_EncodeState") -> None:
        if var.is_anonymous():
            state.emit(tags.TAG_ANONYMOUS_VAR)
            return
        offset = state.var_offsets.get(var)
        if offset is None:
            offset = len(state.var_names)
            if offset > 0xFF:
                # The content field for variables is a one-byte offset
                # (Table A1: "Variable Offset (b)").
                raise PIFError("more than 256 distinct variables in one clause")
            state.var_offsets[var] = offset
            state.var_names.append(var.name)
            state.emit(self._first_tag, offset)
        else:
            state.emit(self._sub_tag, offset)

    def _encode_int(self, term: Int, state: "_EncodeState") -> None:
        value = term.value
        if not (tags.INT_INLINE_MIN <= value <= tags.INT_INLINE_MAX):
            raise PIFError(
                f"integer {value} exceeds the 28-bit in-line range "
                f"[{tags.INT_INLINE_MIN}, {tags.INT_INLINE_MAX}]"
            )
        unsigned = value & ((1 << tags.INT_INLINE_BITS) - 1)
        nibble = (unsigned >> 24) & 0xF
        state.emit(tags.TAG_INT_BASE | nibble, unsigned & 0xFFFFFF)

    def _encode_struct(self, term: Struct, state: "_EncodeState") -> None:
        functor_offset = self.symbols.intern_atom(term.functor)
        if term.arity <= tags.INLINE_ARITY_LIMIT:
            state.emit(tags.TAG_STRUCT_INLINE_BASE | term.arity, functor_offset)
            for element in term.args:
                self._encode(element, state)
            return
        # Pointer form: elements live in the heap (post-order encoding).
        heap_state = state.sub_state()
        for element in term.args:
            self._encode(element, heap_state)
        blob = term.arity.to_bytes(4, "big") + bytes(heap_state.stream)
        pointer = state.add_heap_blob(blob)
        state.emit(
            tags.TAG_STRUCT_PTR_BASE | tags.INLINE_ARITY_LIMIT,
            functor_offset,
            extension=pointer,
        )

    def _encode_list(self, term: Struct, state: "_EncodeState") -> None:
        items, tail = list_parts(term)
        open_list = isinstance(tail, Var)
        if len(items) <= tags.INLINE_ARITY_LIMIT:
            base = (
                tags.TAG_ULIST_INLINE_BASE if open_list else tags.TAG_TLIST_INLINE_BASE
            )
            state.emit(base | len(items))
            for element in items:
                self._encode(element, state)
            self._encode(tail, state)
            return
        base = tags.TAG_ULIST_PTR_BASE if open_list else tags.TAG_TLIST_PTR_BASE
        heap_state = state.sub_state()
        for element in items:
            self._encode(element, heap_state)
        self._encode(tail, heap_state)
        blob = len(items).to_bytes(4, "big") + bytes(heap_state.stream)
        pointer = state.add_heap_blob(blob)
        state.emit(base | tags.INLINE_ARITY_LIMIT, 0, extension=pointer)


class _EncodeState:
    """Mutable buffers shared across one head/query encoding."""

    __slots__ = ("stream", "heap", "var_offsets", "var_names", "_root")

    def __init__(self, root: "_EncodeState | None" = None):
        self.stream = bytearray()
        self._root = root if root is not None else self
        if root is None:
            self.heap = bytearray()
            self.var_offsets: dict[Var, int] = {}
            self.var_names: list[str] = []
        else:
            self.heap = root.heap
            self.var_offsets = root.var_offsets
            self.var_names = root.var_names

    def emit(self, tag: int, content: int = 0, extension: int | None = None) -> None:
        if not (0 <= content < (1 << 24)):
            raise PIFError(f"content field {content} exceeds 24 bits")
        self.stream.append(tag)
        self.stream += content.to_bytes(3, "big")
        if extension is not None:
            self.stream += extension.to_bytes(4, "big")

    def sub_state(self) -> "_EncodeState":
        """A fresh stream buffer sharing the heap and variable numbering."""
        return _EncodeState(self._root)

    def add_heap_blob(self, blob: bytes) -> int:
        offset = len(self._root.heap)
        self._root.heap += blob
        return offset
