"""The PDBM Prolog interpreter and integrated machine."""

from .interp import (
    ExistenceError,
    PrologError,
    ResourceError,
    Solver,
    term_order_key,
)
from .machine import PrologMachine, QueryStats
from .solve import ClusterRetriever, RetrieverStats, SolveEngine, SolveStats

__all__ = [
    "ClusterRetriever",
    "ExistenceError",
    "PrologError",
    "PrologMachine",
    "QueryStats",
    "ResourceError",
    "RetrieverStats",
    "Solver",
    "SolveEngine",
    "SolveStats",
    "term_order_key",
]
