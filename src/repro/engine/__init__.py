"""The PDBM Prolog interpreter and integrated machine."""

from .interp import ExistenceError, PrologError, Solver, term_order_key
from .machine import PrologMachine, QueryStats

__all__ = [
    "ExistenceError",
    "PrologError",
    "PrologMachine",
    "QueryStats",
    "Solver",
    "term_order_key",
]
