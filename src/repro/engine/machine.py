"""The integrated PDBM Prolog machine.

One Prolog system over one knowledge base: goals against memory-resident
predicates resolve directly; goals against disk-resident predicates go
through the Clause Retrieval Server, which drives the CLARE filter
pipeline and hands back candidates for full unification.  This is the
"integrated implementation approach" of the paper's introduction — no
EDB/IDB split, mixed relations, user-controlled clause order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..crs import ClauseRetrievalServer, SearchMode
from ..obs import Instrumentation
from ..obs import get_default as _default_obs
from ..storage import KnowledgeBase, UnknownPredicateError
from ..terms import (
    Clause,
    Term,
    freshen_anonymous,
    functor_indicator,
    read_term,
    variables,
)
from .interp import ExistenceError, Solver

__all__ = ["PrologMachine", "QueryStats"]


@dataclass
class QueryStats:
    """Aggregate retrieval accounting across one machine's lifetime."""

    retrievals: int = 0
    candidates: int = 0
    clauses_scanned: int = 0
    filter_time_s: float = 0.0
    mode_uses: dict[SearchMode, int] = field(default_factory=dict)


class PrologMachine:
    """The user-facing query interface of the PDBM system."""

    def __init__(
        self,
        kb: KnowledgeBase,
        crs: ClauseRetrievalServer | None = None,
        mode: SearchMode | None = None,
        unknown_predicates: str = "error",
        load_library: bool = False,
        output=None,
        trace_retrievals: int = 0,
        obs: Instrumentation | None = None,
    ):
        if unknown_predicates not in ("error", "fail"):
            raise ValueError("unknown_predicates must be 'error' or 'fail'")
        self.kb = kb
        self.obs = obs if obs is not None else _default_obs()
        self.crs = (
            crs if crs is not None else ClauseRetrievalServer(kb, obs=self.obs)
        )
        self.mode = mode
        self.unknown_predicates = unknown_predicates
        self.stats = QueryStats()
        #: ring buffer of the last N (goal, RetrievalStats) pairs.
        from collections import deque

        self.trace = deque(maxlen=trace_retrievals) if trace_retrievals else None
        self.solver = Solver(
            retriever=self._retrieve_clauses,
            assertz=lambda clause: self.kb.assertz(clause),
            asserta=lambda clause: self.kb.asserta(clause),
            retract=lambda clause: self.kb.retract_matching(clause),
            output=output,
        )
        if load_library:
            from .library import LIBRARY_MODULE, LIBRARY_SOURCE

            existing = set(self.kb.predicates())
            from ..terms import clause_from_term, read_program

            for term in read_program(LIBRARY_SOURCE):
                clause = clause_from_term(term)
                # Never shadow a user predicate of the same indicator.
                if clause.indicator not in existing or (
                    clause.indicator in self.kb.module(LIBRARY_MODULE).indicators
                ):
                    self.kb.add_clause(clause, module=LIBRARY_MODULE)

    # -- queries -------------------------------------------------------------

    def solve(self, goal: Term) -> Iterator[dict[str, Term]]:
        """Solutions of ``goal`` as {variable name: value} dictionaries."""
        goal_vars = [v for v in variables(goal) if not v.is_anonymous()]
        goal = freshen_anonymous(goal)
        for bindings in self.solver.solve(goal):
            yield {v.name: bindings.resolve(v) for v in goal_vars}

    def solve_text(self, text: str) -> Iterator[dict[str, Term]]:
        """Parse and solve a goal given as source text."""
        return self.solve(read_term(text))

    def compiled_solve(self, goal: Term) -> Iterator[dict[str, Term]]:
        """Solve through the ZIP compiled-clause machine.

        Clauses compile on first use; retrieval still goes through the
        CRS, so disk-resident predicates take the CLARE pipeline.
        Procedures (or goals) the compiler does not support escape to
        the tree-walking interpreter per *predicate*, so the answer
        sequence always matches :meth:`solve`.
        """
        from ..terms import freshen_anonymous
        from .zipvm import ZipMachine

        goal_vars = [v for v in variables(goal) if not v.is_anonymous()]
        goal = freshen_anonymous(goal)
        vm = ZipMachine(
            self._retrieve_clauses,
            assertz=lambda clause: self.kb.assertz(clause),
            asserta=lambda clause: self.kb.asserta(clause),
            retract=lambda clause: self.kb.retract_matching(clause),
        )
        for bindings in vm.solve(goal):
            yield {v.name: bindings.resolve(v) for v in goal_vars}

    def compiled_solve_text(self, text: str) -> Iterator[dict[str, Term]]:
        return self.compiled_solve(read_term(text))

    def succeeds(self, text: str) -> bool:
        """True if the goal has at least one solution."""
        for _ in self.solve_text(text):
            return True
        return False

    def all_solutions(self, text: str) -> list[dict[str, Term]]:
        return list(self.solve_text(text))

    def count_solutions(self, text: str) -> int:
        return sum(1 for _ in self.solve_text(text))

    # -- clause retrieval -------------------------------------------------------

    def _retrieve_clauses(self, goal: Term) -> list[Clause]:
        indicator = functor_indicator(goal)
        if not self.kb.has_predicate(indicator):
            if self.unknown_predicates == "fail":
                return []
            name, arity = indicator
            raise ExistenceError(f"unknown predicate {name}/{arity}")
        try:
            with self.obs.span("engine.retrieve") as span:
                result = self.crs.retrieve(goal, mode=self.mode)
                span.set(candidates=len(result.candidates))
        except UnknownPredicateError:
            if self.unknown_predicates == "fail":
                return []
            raise
        self.obs.counter("engine.retrievals").inc()
        stats = result.stats
        if self.trace is not None:
            self.trace.append((goal, stats))
        self.stats.retrievals += 1
        self.stats.candidates += len(result.candidates)
        if stats is not None:
            self.stats.clauses_scanned += stats.clauses_total
            self.stats.filter_time_s += stats.filter_time_s
            self.stats.mode_uses[stats.mode] = (
                self.stats.mode_uses.get(stats.mode, 0) + 1
            )
        return result.candidates
