"""SLD resolution with backtracking — the PDBM Prolog interpreter core.

A generator-based depth-first solver over the knowledge base, with the
classic control constructs (conjunction, disjunction, if-then-else, cut,
negation as failure) and a working set of built-in predicates.  Clause
lookup goes through a pluggable *retriever* so the integrated machine can
route disk-resident predicates through the CRS/CLARE pipeline while unit
tests drive the solver directly.
"""

from __future__ import annotations

import sys
from typing import Callable, Iterator

from ..terms import (
    NIL,
    Atom,
    Clause,
    Float,
    Int,
    Struct,
    Term,
    Var,
    functor_indicator,
    make_list,
    rename_apart,
    term_to_string,
)
from ..unify import Bindings, unify

__all__ = [
    "PrologError",
    "ExistenceError",
    "ResourceError",
    "Solver",
    "term_order_key",
]

Retriever = Callable[[Term], list[Clause]]


class PrologError(RuntimeError):
    """A runtime error raised by evaluation (type errors, bad goals...)."""


class ExistenceError(PrologError):
    """Call to a predicate with no clauses and no builtin."""


class ResourceError(PrologError):
    """A resource budget was exhausted during resolution.

    Raised when the resolution depth budget (``Solver.max_depth``, the
    compiled machine's step limit) runs out, and in place of Python's
    own :class:`RecursionError` when a query out-nests the frame budget
    the solver reserved — so a runaway recursive program always fails
    with a typed, catchable Prolog error instead of tearing down the
    host.
    """


#: Python frames one resolution level costs in the generator-based DFS
#: (``_solve_goal`` -> ``_call_user_predicate`` -> ``_solve_conjunction``
#: plus a control frame or two).  Used to translate a depth budget into
#: a recursion-limit request.
_FRAMES_PER_DEPTH = 6

#: Never ask CPython for more frames than the C stack of this build can
#: actually resume through: deep ``yield from`` chains re-enter one C
#: frame per level, and an 8 MiB stack segfaults somewhere beyond ~40k
#: resumed generator frames.  20k frames keeps a 2x safety margin and
#: still allows ~3000 levels of resolution depth — enough for nrev on a
#: 300-element list (~600 levels) or path/2 over thousand-node chains.
_RECURSION_LIMIT_CEILING = 20_000


def _ensure_stack_headroom(max_depth: int) -> None:
    """Raise the interpreter recursion limit toward the depth budget.

    Monotonic (never lowers the limit) so concurrent solver threads can
    not yank frames out from under each other; capped by the C-stack
    ceiling, beyond which the RecursionError -> ResourceError translation
    in :meth:`Solver.solve` takes over.
    """
    needed = min(1000 + max_depth * _FRAMES_PER_DEPTH, _RECURSION_LIMIT_CEILING)
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)


class _CutSignal:
    """Per-call cut barrier: '!' sets it; the clause loop honours it."""

    __slots__ = ("cut",)

    def __init__(self) -> None:
        self.cut = False


class Solver:
    """Resolution engine over a clause retriever."""

    def __init__(
        self,
        retriever: Retriever,
        assertz: Callable[[Clause], None] | None = None,
        asserta: Callable[[Clause], None] | None = None,
        retract: Callable[[Clause], bool] | None = None,
        max_depth: int = 100_000,
        output=None,
    ):
        self._retrieve = retriever
        self._assertz = assertz
        self._asserta = asserta
        self._retract = retract
        self.max_depth = max_depth
        #: stream for write/1, nl/0 etc.; swap for StringIO to capture.
        self.output = output if output is not None else sys.stdout

    # -- public API --------------------------------------------------------

    def solve(self, goal: Term, bindings: Bindings | None = None) -> Iterator[Bindings]:
        """All solutions of ``goal``, each yielded as the live bindings.

        The same :class:`Bindings` object is yielded each time (with
        different contents); callers wanting snapshots must resolve or
        copy before advancing.

        Deep recursion fails cleanly: the solver reserves Python stack
        headroom for its depth budget up front, and if a query still
        out-nests the frame ceiling, the :class:`RecursionError` is
        translated into a typed :class:`ResourceError` here rather than
        escaping raw.
        """
        if bindings is None:
            bindings = Bindings()
        signal = _CutSignal()
        _ensure_stack_headroom(self.max_depth)
        solutions = self._solve_goal(goal, bindings, 0, signal)
        while True:
            try:
                value = next(solutions)
            except StopIteration:
                return
            except RecursionError:
                raise ResourceError(
                    "resolution depth exhausted the Python stack budget "
                    f"(max_depth={self.max_depth}); the program recurses "
                    "too deeply"
                ) from None
            yield value

    # -- control ---------------------------------------------------------------

    def _solve_goal(
        self, goal: Term, bindings: Bindings, depth: int, signal: _CutSignal
    ) -> Iterator[Bindings]:
        if depth > self.max_depth:
            raise ResourceError(f"depth limit {self.max_depth} exceeded")
        goal = bindings.walk(goal)
        if isinstance(goal, Var):
            raise PrologError("unbound goal (instantiation error)")
        if not goal.is_callable():
            raise PrologError(f"goal is not callable: {term_to_string(goal)}")
        indicator = functor_indicator(goal)
        control = _CONTROL.get(indicator)
        if control is not None:
            yield from control(self, goal, bindings, depth, signal)
            return
        builtin = _BUILTINS.get(indicator)
        if builtin is not None:
            yield from builtin(self, goal, bindings, depth)
            return
        yield from self._call_user_predicate(goal, bindings, depth)

    def _call_user_predicate(
        self, goal: Term, bindings: Bindings, depth: int
    ) -> Iterator[Bindings]:
        clauses = self._retrieve(bindings.resolve(goal))
        local_signal = _CutSignal()
        for clause in clauses:
            renamed = rename_apart(clause.to_term())
            head, body = _split_clause(renamed)
            mark = bindings.mark()
            if unify(goal, head, bindings) is not None:
                yield from self._solve_conjunction(
                    body, 0, bindings, depth + 1, local_signal
                )
            bindings.undo_to(mark)
            if local_signal.cut:
                return

    def _solve_conjunction(
        self,
        goals: tuple[Term, ...],
        index: int,
        bindings: Bindings,
        depth: int,
        signal: _CutSignal,
    ) -> Iterator[Bindings]:
        if index >= len(goals):
            yield bindings
            return
        solutions = self._solve_goal(goals[index], bindings, depth, signal)
        for _ in solutions:
            yield from self._solve_conjunction(
                goals, index + 1, bindings, depth, signal
            )
            if signal.cut:
                solutions.close()
                return


def _split_clause(term: Term) -> tuple[Term, tuple[Term, ...]]:
    from ..terms import body_goals

    if isinstance(term, Struct) and term.indicator == (":-", 2):
        return term.args[0], body_goals(term.args[1])
    return term, ()


# ---------------------------------------------------------------------------
# Control constructs (receive the caller's cut signal).
# ---------------------------------------------------------------------------


def _ctl_true(solver, goal, bindings, depth, signal):
    yield bindings


def _ctl_fail(solver, goal, bindings, depth, signal):
    return
    yield  # pragma: no cover


def _ctl_cut(solver, goal, bindings, depth, signal):
    yield bindings
    signal.cut = True


def _ctl_and(solver, goal, bindings, depth, signal):
    left, right = goal.args
    for _ in solver._solve_goal(left, bindings, depth, signal):
        yield from solver._solve_goal(right, bindings, depth, signal)
        if signal.cut:
            return


def _ctl_or(solver, goal, bindings, depth, signal):
    left, right = goal.args
    left_walked = bindings.walk(left)
    if isinstance(left_walked, Struct) and left_walked.indicator == ("->", 2):
        condition, then_goal = left_walked.args
        mark = bindings.mark()
        condition_signal = _CutSignal()
        took_then = False
        for _ in solver._solve_goal(condition, bindings, depth, condition_signal):
            took_then = True
            yield from solver._solve_goal(then_goal, bindings, depth, signal)
            break  # the condition is committed to its first solution
        if not took_then:
            bindings.undo_to(mark)
            yield from solver._solve_goal(right, bindings, depth, signal)
        return
    mark = bindings.mark()
    yield from solver._solve_goal(left, bindings, depth, signal)
    if signal.cut:
        return
    bindings.undo_to(mark)
    yield from solver._solve_goal(right, bindings, depth, signal)


def _ctl_if_then(solver, goal, bindings, depth, signal):
    condition, then_goal = goal.args
    condition_signal = _CutSignal()
    for _ in solver._solve_goal(condition, bindings, depth, condition_signal):
        yield from solver._solve_goal(then_goal, bindings, depth, signal)
        return


def _ctl_negation(solver, goal, bindings, depth, signal):
    (negated,) = goal.args
    mark = bindings.mark()
    inner_signal = _CutSignal()
    for _ in solver._solve_goal(negated, bindings, depth, inner_signal):
        bindings.undo_to(mark)
        return
    bindings.undo_to(mark)
    yield bindings


def _ctl_call(solver, goal, bindings, depth, signal):
    (target,) = goal.args
    # call/1 is transparent to solutions but opaque to cut.
    inner_signal = _CutSignal()
    yield from solver._solve_goal(target, bindings, depth, inner_signal)


def _ctl_once(solver, goal, bindings, depth, signal):
    (target,) = goal.args
    inner_signal = _CutSignal()
    for _ in solver._solve_goal(target, bindings, depth, inner_signal):
        yield bindings
        return


def _ctl_forall(solver, goal, bindings, depth, signal):
    condition, action = goal.args
    mark = bindings.mark()
    inner_signal = _CutSignal()
    for _ in solver._solve_goal(condition, bindings, depth, inner_signal):
        action_signal = _CutSignal()
        satisfied = False
        for _ in solver._solve_goal(action, bindings, depth, action_signal):
            satisfied = True
            break
        if not satisfied:
            bindings.undo_to(mark)
            return
    bindings.undo_to(mark)
    yield bindings


_CONTROL = {
    ("true", 0): _ctl_true,
    ("fail", 0): _ctl_fail,
    ("false", 0): _ctl_fail,
    ("!", 0): _ctl_cut,
    (",", 2): _ctl_and,
    (";", 2): _ctl_or,
    ("->", 2): _ctl_if_then,
    ("\\+", 1): _ctl_negation,
    ("not", 1): _ctl_negation,
    ("call", 1): _ctl_call,
    ("once", 1): _ctl_once,
    ("forall", 2): _ctl_forall,
}


# ---------------------------------------------------------------------------
# Built-in predicates.
# ---------------------------------------------------------------------------


def _bi_unify(solver, goal, bindings, depth):
    left, right = goal.args
    mark = bindings.mark()
    if unify(left, right, bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_not_unify(solver, goal, bindings, depth):
    left, right = goal.args
    mark = bindings.mark()
    unifies = unify(left, right, bindings) is not None
    bindings.undo_to(mark)
    if not unifies:
        yield bindings


def _bi_equal(solver, goal, bindings, depth):
    if bindings.resolve(goal.args[0]) == bindings.resolve(goal.args[1]):
        yield bindings


def _bi_not_equal(solver, goal, bindings, depth):
    if bindings.resolve(goal.args[0]) != bindings.resolve(goal.args[1]):
        yield bindings


def _type_test(predicate):
    def test(solver, goal, bindings, depth):
        if predicate(bindings.walk(goal.args[0])):
            yield bindings

    return test


def _bi_ground(solver, goal, bindings, depth):
    # ground/1 must look *through* the substitution (a shallow walk sees
    # bound variables inside structures as unbound) and terminate on
    # cyclic bindings; Bindings.is_ground does both.
    if bindings.is_ground(goal.args[0]):
        yield bindings


def _bi_is(solver, goal, bindings, depth):
    target, expression = goal.args
    value = _evaluate(expression, bindings)
    mark = bindings.mark()
    if unify(target, value, bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _arith_compare(op):
    def compare(solver, goal, bindings, depth):
        left = _numeric(_evaluate(goal.args[0], bindings))
        right = _numeric(_evaluate(goal.args[1], bindings))
        if op(left, right):
            yield bindings

    return compare


def _bi_functor(solver, goal, bindings, depth):
    term, name, arity = (bindings.walk(a) for a in goal.args)
    mark = bindings.mark()
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            got_name: Term = Atom(term.functor)
            got_arity: Term = Int(term.arity)
        elif isinstance(term, Atom):
            got_name, got_arity = term, Int(0)
        else:
            got_name, got_arity = term, Int(0)
        if (
            unify(name, got_name, bindings) is not None
            and unify(arity, got_arity, bindings) is not None
        ):
            yield bindings
        bindings.undo_to(mark)
        return
    if isinstance(arity, Int) and arity.value == 0:
        if unify(term, name, bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    if isinstance(name, Atom) and isinstance(arity, Int) and arity.value > 0:
        from ..terms import fresh_var

        built = Struct(name.name, tuple(fresh_var() for _ in range(arity.value)))
        if unify(term, built, bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    raise PrologError("functor/3: insufficiently instantiated")


def _bi_arg(solver, goal, bindings, depth):
    index, term, argument = (bindings.walk(a) for a in goal.args)
    if not isinstance(index, Int) or not isinstance(term, Struct):
        raise PrologError("arg/3: bad arguments")
    if 1 <= index.value <= term.arity:
        mark = bindings.mark()
        if unify(argument, term.args[index.value - 1], bindings) is not None:
            yield bindings
        bindings.undo_to(mark)


def _bi_univ(solver, goal, bindings, depth):
    term, spec = (bindings.walk(a) for a in goal.args)
    mark = bindings.mark()
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            items: list[Term] = [Atom(term.functor), *term.args]
        else:
            items = [term]
        if unify(spec, make_list(items), bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    from ..terms import list_parts

    items, tail = list_parts(bindings.resolve(spec))
    if tail != NIL or not items:
        raise PrologError("=../2: needs a proper non-empty list")
    first = items[0]
    if len(items) == 1:
        built: Term = first
    elif isinstance(first, Atom):
        built = Struct(first.name, tuple(items[1:]))
    else:
        raise PrologError("=../2: functor must be an atom")
    if unify(term, built, bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_findall(solver, goal, bindings, depth):
    template, subgoal, result = goal.args
    collected = []
    mark = bindings.mark()
    inner_signal = _CutSignal()
    for _ in solver._solve_goal(subgoal, bindings, depth, inner_signal):
        collected.append(bindings.resolve(template))
    bindings.undo_to(mark)
    if unify(result, make_list(collected), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _strip_carets(template: Term, subgoal: Term, bindings: Bindings):
    """Peel ``Var ^ Goal`` wrappers, collecting existential variables."""
    existential: list[Var] = []
    current = bindings.walk(subgoal)
    while isinstance(current, Struct) and current.indicator == ("^", 2):
        witness = bindings.resolve(current.args[0])
        from ..terms import variables as term_variables

        existential.extend(term_variables(witness))
        current = bindings.walk(current.args[1])
    return existential, current


def _bi_bagof(solver, goal, bindings, depth):
    yield from _bagof_like(solver, goal, bindings, depth, dedupe=False)


def _bi_setof(solver, goal, bindings, depth):
    yield from _bagof_like(solver, goal, bindings, depth, dedupe=True)


def _bagof_like(solver, goal, bindings, depth, dedupe: bool):
    """bagof/3 and setof/3 with free-variable grouping.

    Solutions are grouped by the bindings of the *free* variables of the
    goal (those in neither the template nor a ``^`` prefix); one answer is
    produced per group, and — unlike findall — no answer at all when the
    goal has no solutions.
    """
    from ..terms import variables as term_variables

    template, subgoal, result = goal.args
    existential, inner_goal = _strip_carets(template, subgoal, bindings)
    template_vars = set(term_variables(bindings.resolve(template)))
    goal_vars = term_variables(bindings.resolve(inner_goal))
    free = [
        v
        for v in goal_vars
        if v not in template_vars
        and v not in existential
        and not v.is_anonymous()
    ]
    witness = Struct("$w", tuple(free)) if free else Atom("$w")
    groups: list[tuple[Term, list[Term]]] = []
    mark = bindings.mark()
    inner_signal = _CutSignal()
    for _ in solver._solve_goal(inner_goal, bindings, depth, inner_signal):
        key = bindings.resolve(witness)
        value = bindings.resolve(template)
        for existing_key, values in groups:
            if existing_key == key:
                values.append(value)
                break
        else:
            groups.append((key, [value]))
    bindings.undo_to(mark)
    for key, values in groups:
        if dedupe:
            ordered = sorted(values, key=term_order_key)
            deduped: list[Term] = []
            for item in ordered:
                if not deduped or deduped[-1] != item:
                    deduped.append(item)
            values = deduped
        group_mark = bindings.mark()
        if (
            unify(witness, key, bindings) is not None
            and unify(result, make_list(values), bindings) is not None
        ):
            yield bindings
        bindings.undo_to(group_mark)


def _bi_between(solver, goal, bindings, depth):
    low, high, value = (bindings.walk(a) for a in goal.args)
    if not isinstance(low, Int) or not isinstance(high, Int):
        raise PrologError("between/3: bounds must be integers")
    if isinstance(value, Int):
        if low.value <= value.value <= high.value:
            yield bindings
        return
    for candidate in range(low.value, high.value + 1):
        mark = bindings.mark()
        if unify(value, Int(candidate), bindings) is not None:
            yield bindings
        bindings.undo_to(mark)


def _bi_length(solver, goal, bindings, depth):
    from ..terms import list_parts

    lst, length = (bindings.walk(a) for a in goal.args)
    if not isinstance(lst, Var):
        items, tail = list_parts(bindings.resolve(lst))
        if tail != NIL:
            raise PrologError("length/2: not a proper list")
        mark = bindings.mark()
        if unify(length, Int(len(items)), bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    if isinstance(length, Int):
        from ..terms import fresh_var

        built = make_list([fresh_var() for _ in range(length.value)])
        mark = bindings.mark()
        if unify(lst, built, bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    raise PrologError("length/2: insufficiently instantiated")


def _bi_clause(solver, goal, bindings, depth):
    head, body = goal.args
    head_walked = bindings.walk(head)
    if isinstance(head_walked, Var):
        raise PrologError("clause/2: head must be at least partly known")
    if not head_walked.is_callable():
        raise PrologError("clause/2: head must be callable")
    for stored in solver._retrieve(bindings.resolve(head_walked)):
        renamed = rename_apart(stored.to_term())
        stored_head, stored_goals = _split_clause(renamed)
        stored_body: Term
        if not stored_goals:
            stored_body = Atom("true")
        else:
            stored_body = stored_goals[-1]
            for goal_term in reversed(stored_goals[:-1]):
                stored_body = Struct(",", (goal_term, stored_body))
        mark = bindings.mark()
        if (
            unify(head, stored_head, bindings) is not None
            and unify(body, stored_body, bindings) is not None
        ):
            yield bindings
        bindings.undo_to(mark)


def _bi_assertz(solver, goal, bindings, depth):
    if solver._assertz is None:
        raise PrologError("assertz/1: no database attached")
    solver._assertz(_clause_argument(goal, bindings))
    yield bindings


def _bi_asserta(solver, goal, bindings, depth):
    if solver._asserta is None:
        raise PrologError("asserta/1: no database attached")
    solver._asserta(_clause_argument(goal, bindings))
    yield bindings


def _bi_retract(solver, goal, bindings, depth):
    if solver._retract is None:
        raise PrologError("retract/1: no database attached")
    removed = solver._retract(_clause_argument(goal, bindings))
    if isinstance(removed, bool):  # legacy equality-only retractors
        if removed:
            yield bindings
        return
    if removed is None:
        return
    # Bind the template against the clause actually removed.
    mark = bindings.mark()
    if unify(goal.args[0], rename_apart(removed.to_term()), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _clause_argument(goal: Term, bindings: Bindings) -> Clause:
    from ..terms import clause_from_term

    resolved = bindings.resolve(goal.args[0])
    return clause_from_term(resolved)


def _order_compare(op):
    def compare(solver, goal, bindings, depth):
        left = term_order_key(bindings.resolve(goal.args[0]))
        right = term_order_key(bindings.resolve(goal.args[1]))
        if op(left, right):
            yield bindings

    return compare


def _proper_list_items(term: Term, bindings: Bindings, context: str) -> list[Term]:
    from ..terms import list_parts

    items, tail = list_parts(bindings.resolve(term))
    if tail != NIL:
        raise PrologError(f"{context}: not a proper list")
    return items


def _bi_msort(solver, goal, bindings, depth):
    items = _proper_list_items(goal.args[0], bindings, "msort/2")
    ordered = sorted(items, key=term_order_key)
    mark = bindings.mark()
    if unify(goal.args[1], make_list(ordered), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_sort(solver, goal, bindings, depth):
    items = _proper_list_items(goal.args[0], bindings, "sort/2")
    ordered = sorted(items, key=term_order_key)
    deduped: list[Term] = []
    for item in ordered:
        if not deduped or deduped[-1] != item:
            deduped.append(item)
    mark = bindings.mark()
    if unify(goal.args[1], make_list(deduped), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_write(solver, goal, bindings, depth):
    solver.output.write(term_to_string(bindings.resolve(goal.args[0])))
    yield bindings


def _bi_writeln(solver, goal, bindings, depth):
    solver.output.write(term_to_string(bindings.resolve(goal.args[0])) + "\n")
    yield bindings


def _bi_nl(solver, goal, bindings, depth):
    solver.output.write("\n")
    yield bindings


def _bi_tab(solver, goal, bindings, depth):
    count = bindings.walk(goal.args[0])
    if not isinstance(count, Int) or count.value < 0:
        raise PrologError("tab/1: needs a non-negative integer")
    solver.output.write(" " * count.value)
    yield bindings


def _bi_atom_codes(solver, goal, bindings, depth):
    atom, codes = (bindings.walk(a) for a in goal.args)
    mark = bindings.mark()
    if isinstance(atom, Atom):
        built = make_list([Int(ord(c)) for c in atom.name])
        if unify(codes, built, bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    if isinstance(atom, (Int, Float)):
        text = term_to_string(atom)
        built = make_list([Int(ord(c)) for c in text])
        if unify(codes, built, bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    items = _proper_list_items(codes, bindings, "atom_codes/2")
    chars = []
    for item in items:
        if not isinstance(item, Int):
            raise PrologError("atom_codes/2: code list must hold integers")
        chars.append(chr(item.value))
    if unify(atom, Atom("".join(chars)), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_atom_length(solver, goal, bindings, depth):
    atom = bindings.walk(goal.args[0])
    if not isinstance(atom, Atom):
        raise PrologError("atom_length/2: first argument must be an atom")
    mark = bindings.mark()
    if unify(goal.args[1], Int(len(atom.name)), bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


def _bi_succ(solver, goal, bindings, depth):
    smaller, larger = (bindings.walk(a) for a in goal.args)
    mark = bindings.mark()
    if isinstance(smaller, Int):
        if smaller.value < 0:
            raise PrologError("succ/2: negative argument")
        if unify(larger, Int(smaller.value + 1), bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    if isinstance(larger, Int):
        if larger.value > 0 and unify(smaller, Int(larger.value - 1), bindings) is not None:
            yield bindings
        bindings.undo_to(mark)
        return
    raise PrologError("succ/2: insufficiently instantiated")


def _bi_compare(solver, goal, bindings, depth):
    order, left, right = goal.args
    left_key = term_order_key(bindings.resolve(left))
    right_key = term_order_key(bindings.resolve(right))
    if left_key < right_key:
        verdict = Atom("<")
    elif left_key > right_key:
        verdict = Atom(">")
    else:
        verdict = Atom("=")
    mark = bindings.mark()
    if unify(order, verdict, bindings) is not None:
        yield bindings
    bindings.undo_to(mark)


_BUILTINS = {
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unify,
    ("==", 2): _bi_equal,
    ("\\==", 2): _bi_not_equal,
    ("var", 1): _type_test(lambda t: isinstance(t, Var)),
    ("nonvar", 1): _type_test(lambda t: not isinstance(t, Var)),
    ("atom", 1): _type_test(lambda t: isinstance(t, Atom)),
    ("number", 1): _type_test(lambda t: isinstance(t, (Int, Float))),
    ("integer", 1): _type_test(lambda t: isinstance(t, Int)),
    ("float", 1): _type_test(lambda t: isinstance(t, Float)),
    ("atomic", 1): _type_test(lambda t: isinstance(t, (Atom, Int, Float))),
    ("compound", 1): _type_test(lambda t: isinstance(t, Struct)),
    ("ground", 1): _bi_ground,
    ("is", 2): _bi_is,
    ("=:=", 2): _arith_compare(lambda a, b: a == b),
    ("=\\=", 2): _arith_compare(lambda a, b: a != b),
    ("<", 2): _arith_compare(lambda a, b: a < b),
    (">", 2): _arith_compare(lambda a, b: a > b),
    ("=<", 2): _arith_compare(lambda a, b: a <= b),
    (">=", 2): _arith_compare(lambda a, b: a >= b),
    ("@<", 2): _order_compare(lambda a, b: a < b),
    ("@>", 2): _order_compare(lambda a, b: a > b),
    ("@=<", 2): _order_compare(lambda a, b: a <= b),
    ("@>=", 2): _order_compare(lambda a, b: a >= b),
    ("functor", 3): _bi_functor,
    ("arg", 3): _bi_arg,
    ("=..", 2): _bi_univ,
    ("findall", 3): _bi_findall,
    ("bagof", 3): _bi_bagof,
    ("setof", 3): _bi_setof,
    ("between", 3): _bi_between,
    ("length", 2): _bi_length,
    ("assert", 1): _bi_assertz,
    ("assertz", 1): _bi_assertz,
    ("asserta", 1): _bi_asserta,
    ("retract", 1): _bi_retract,
    ("msort", 2): _bi_msort,
    ("sort", 2): _bi_sort,
    ("compare", 3): _bi_compare,
    ("write", 1): _bi_write,
    ("print", 1): _bi_write,
    ("writeln", 1): _bi_writeln,
    ("nl", 0): _bi_nl,
    ("tab", 1): _bi_tab,
    ("atom_codes", 2): _bi_atom_codes,
    ("atom_length", 2): _bi_atom_length,
    ("succ", 2): _bi_succ,
    ("clause", 2): _bi_clause,
}


# ---------------------------------------------------------------------------
# Arithmetic evaluation and the standard order of terms.
# ---------------------------------------------------------------------------

_ARITH_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) or a % b else a // b,
    "//": lambda a, b: int(a // b),
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
    "**": lambda a, b: a**b,
    "^": lambda a, b: a**b,
}

_ARITH_UNARY = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "sign": lambda a: (a > 0) - (a < 0),
}


def _evaluate(expression: Term, bindings: Bindings) -> Term:
    """Evaluate an arithmetic expression to an Int or Float term."""
    expression = bindings.walk(expression)
    if isinstance(expression, (Int, Float)):
        return expression
    if isinstance(expression, Var):
        raise PrologError("arithmetic: unbound variable")
    if isinstance(expression, Struct):
        if expression.arity == 2 and expression.functor in _ARITH_BINARY:
            left = _numeric(_evaluate(expression.args[0], bindings))
            right = _numeric(_evaluate(expression.args[1], bindings))
            try:
                result = _ARITH_BINARY[expression.functor](left, right)
            except ZeroDivisionError:
                raise PrologError("arithmetic: division by zero") from None
            return _to_number(result)
        if expression.arity == 1 and expression.functor in _ARITH_UNARY:
            value = _numeric(_evaluate(expression.args[0], bindings))
            return _to_number(_ARITH_UNARY[expression.functor](value))
    raise PrologError(
        f"arithmetic: cannot evaluate {term_to_string(expression)}"
    )


def _numeric(term: Term) -> int | float:
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Float):
        return term.value
    raise PrologError(f"arithmetic: {term_to_string(term)} is not a number")


def _to_number(value: int | float) -> Term:
    if isinstance(value, bool):
        raise PrologError("arithmetic produced a boolean")
    if isinstance(value, int):
        return Int(value)
    return Float(value)


def term_order_key(term: Term):
    """A sort key realising the standard order: Var < Number < Atom < Compound."""
    if isinstance(term, Var):
        return (0, term.name)
    if isinstance(term, (Int, Float)):
        value = term.value
        return (1, value, 0 if isinstance(term, Float) else 1)
    if isinstance(term, Atom):
        return (2, term.name)
    assert isinstance(term, Struct)
    return (3, term.arity, term.functor, tuple(term_order_key(a) for a in term.args))
