"""A small Prolog-source standard library (list utilities).

Loaded on request into a machine's knowledge base under the ``library``
module (``PrologMachine(kb, load_library=True)``).  Everything here is
plain Prolog resolved through the normal retrieval path, so library
predicates exercise the same CLARE pipeline as user clauses.
"""

from __future__ import annotations

LIBRARY_MODULE = "library"

LIBRARY_SOURCE = """
% -- membership and concatenation ------------------------------------
member(X, [X | _]).
member(X, [_ | T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

append([], L, L).
append([H | T], L, [H | R]) :- append(T, L, R).

% -- reversal and positions ------------------------------------------
reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], Acc, Acc).
reverse_acc([H | T], Acc, R) :- reverse_acc(T, [H | Acc], R).

last([X], X).
last([_ | T], X) :- last(T, X).

nth0(N, L, X) :- nth_from(0, N, L, X).
nth1(N, L, X) :- nth_from(1, N, L, X).
nth_from(I, I, [X | _], X).
nth_from(I, N, [_ | T], X) :- J is I + 1, nth_from(J, N, T, X).

% -- arithmetic over lists --------------------------------------------
sum_list([], 0).
sum_list([H | T], S) :- sum_list(T, R), S is H + R.

max_list([X], X).
max_list([H | T], M) :- max_list(T, TM), M is max(H, TM).

min_list([X], X).
min_list([H | T], M) :- min_list(T, TM), M is min(H, TM).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L | T]) :- L =< H, L1 is L + 1, numlist(L1, H, T).

% -- selection and rearrangement --------------------------------------
select(X, [X | T], T).
select(X, [H | T], [H | R]) :- select(X, T, R).

permutation([], []).
permutation(L, [H | T]) :- select(H, L, R), permutation(R, T).

delete([], _, []).
delete([H | T], X, R) :- H == X, !, delete(T, X, R).
delete([H | T], X, [H | R]) :- delete(T, X, R).

exclude_greater([], _, []).
exclude_greater([H | T], Limit, R) :-
    H > Limit, !, exclude_greater(T, Limit, R).
exclude_greater([H | T], Limit, [H | R]) :- exclude_greater(T, Limit, R).

% -- the classic benchmark workhorse ----------------------------------
nrev([], []).
nrev([H | T], R) :- nrev(T, RT), append(RT, [H], R).
"""
