"""Multi-goal resolution over a sharded retrieval cluster: ``solve``.

This is the layer that turns the repo from a filter benchmark into a
queryable database.  A :class:`ClusterRetriever` adapts the sharded
front door (:class:`repro.cluster.ShardedRetrievalServer` — or a single
:class:`repro.crs.ClauseRetrievalServer`) into the pluggable
``Retriever`` callable both resolution engines consume, and a
:class:`SolveEngine` runs conjunctive queries through the compiled ZIP
machine (or the tree-walking interpreter) against it.

What the adapter adds over a bare ``retrieve`` call:

* **Routing-aware accounting** — with a first-argument sharding policy,
  a goal whose first argument is bound routes to exactly one shard; an
  unbound first argument broadcasts.  The retriever tracks both so a
  ``solve`` can report how often its candidate pulls stayed on one
  engine.
* **Choice-point-aware caching** — candidates are cached per canonical
  goal key and invalidated by the cluster's version counter, so
  re-entering a choice point (or retrying a goal after backtracking)
  re-pulls candidates only when an ``assert``/``retract`` actually
  changed the database mid-search.
* **Batched sibling prefetch** — when the compiled machine calls a
  predicate, the *ground* user-predicate goals sitting next on its goal
  stack are fetched in the same :meth:`retrieve_batch` round trip, so
  sibling goals of an activated clause body amortise FS1 index passes
  exactly like the PR 3/4 batch path.
* **Deadline propagation** — one deadline bounds every retrieval issued
  by the query, and the solve loop re-checks it between solutions, so
  the network layer's deadline/drain semantics extend through
  resolution.
"""

from __future__ import annotations

import inspect
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator

from ..crs import SearchMode
from ..crs.keys import canonical_goal_key
from ..crs.server import RetrievalTimeout
from ..storage import UnknownPredicateError
from ..terms import (
    Atom,
    Clause,
    Struct,
    Term,
    Var,
    freshen_anonymous,
    read_term,
    variables,
)
from .interp import ExistenceError, Solver
from .zipvm import ZipMachine

__all__ = ["ClusterRetriever", "RetrieverStats", "SolveEngine", "SolveStats"]


@dataclass
class RetrieverStats:
    """Where one retriever's candidate pulls went."""

    retrievals: int = 0
    cache_hits: int = 0
    prefetch_batches: int = 0
    prefetched_goals: int = 0
    single_shard: int = 0
    broadcasts: int = 0


class ClusterRetriever:
    """A cluster (or single CRS) behind the engines' retriever contract.

    ``backend`` needs ``retrieve(goal, mode=...)`` returning an object
    with a ``candidates`` list; ``retrieve_batch``, ``version`` and
    ``router`` are picked up when present (the sharded front door has
    all three).  Not thread-safe: one retriever per running query.
    """

    def __init__(
        self,
        backend,
        mode: SearchMode | None = None,
        cache_size: int = 512,
        cache_bytes: int = 4 << 20,
        prefetch_width: int = 8,
        unknown: str = "fail",
    ):
        if unknown not in ("fail", "error"):
            raise ValueError("unknown must be 'fail' or 'error'")
        self._backend = backend
        self.mode = mode
        self.cache_size = cache_size
        self.cache_bytes = cache_bytes
        self.prefetch_width = prefetch_width
        self.unknown = unknown
        self.stats = RetrieverStats()
        # key -> (candidates, estimated bytes); bounded by entry count
        # AND by estimated resident bytes, so a few huge candidate lists
        # can't pin the whole predicate set in memory.
        self._cache: "OrderedDict[tuple, tuple[list[Clause], int]]" = OrderedDict()
        self._cache_bytes = 0
        self._version = self._backend_version()
        self._deadline: float | None = None
        self._supports_timeout = _accepts_timeout(backend.retrieve)
        self._batch = getattr(backend, "retrieve_batch", None)
        self._batch_supports_timeout = (
            self._batch is not None and _accepts_timeout(self._batch)
        )
        self._router = getattr(backend, "router", None)

    # -- the Retriever contract ---------------------------------------------

    def __call__(self, goal: Term) -> list[Clause]:
        return self.prefetch(goal, ())

    def prefetch(self, goal: Term, siblings: tuple[Term, ...]) -> list[Clause]:
        """Candidates for ``goal``, pulling cache-cold ``siblings`` along.

        Siblings ride in the same ``retrieve_batch`` call and land in
        the cache for the engine's next goal dispatch; only the primary
        goal's candidates are returned.
        """
        self._sync_version()
        key = canonical_goal_key(goal)
        cached = self._cache_probe(key)
        if cached is not None:
            return list(cached)
        extras: list[Term] = []
        extra_keys: list[tuple] = []
        if self._batch is not None:
            seen = {key}
            for sibling in siblings:
                sibling_key = canonical_goal_key(sibling)
                if sibling_key in seen or sibling_key in self._cache:
                    continue
                seen.add(sibling_key)
                extras.append(sibling)
                extra_keys.append(sibling_key)
                if len(extras) >= self.prefetch_width:
                    break
        self.stats.retrievals += 1
        self._note_routing(goal)
        version_snapshot = self._backend_version()
        try:
            if extras:
                self.stats.prefetch_batches += 1
                self.stats.prefetched_goals += len(extras)
                results = self._retrieve_batch([goal, *extras])
                batches = [list(r.candidates) for r in results]
            else:
                result = self._retrieve_one(goal)
                batches = [list(result.candidates)]
        except UnknownPredicateError:
            if self.unknown == "error":
                name, arity = _goal_indicator(goal)
                raise ExistenceError(f"unknown predicate {name}/{arity}") from None
            batches = [[] for _ in range(1 + len(extras))]
        self._cache_insert(key, batches[0], version_snapshot)
        for sibling_key, candidates in zip(extra_keys, batches[1:]):
            self._cache_insert(sibling_key, candidates, version_snapshot)
        return list(batches[0])

    def set_deadline(self, deadline: float | None) -> None:
        """Absolute ``time.monotonic`` deadline for every later pull."""
        self._deadline = deadline

    # -- internals -----------------------------------------------------------

    def _retrieve_one(self, goal: Term):
        if self._supports_timeout:
            return self._backend.retrieve(
                goal, mode=self.mode, timeout=self._remaining()
            )
        self._check_deadline()
        return self._backend.retrieve(goal, mode=self.mode)

    def _retrieve_batch(self, goals: list[Term]):
        if self._batch_supports_timeout:
            return self._batch(goals, mode=self.mode, timeout=self._remaining())
        self._check_deadline()
        return self._batch(goals, mode=self.mode)

    def _remaining(self) -> float | None:
        if self._deadline is None:
            return None
        remaining = self._deadline - time.monotonic()
        if remaining <= 0:
            raise RetrievalTimeout("solve deadline expired before retrieval")
        return remaining

    def _check_deadline(self) -> None:
        self._remaining()

    def _backend_version(self) -> int:
        version = getattr(self._backend, "version", None)
        if version is not None:
            return version
        kb = getattr(self._backend, "kb", None)
        return getattr(kb, "version", 0)

    def _sync_version(self) -> None:
        version = self._backend_version()
        if version != self._version:
            self._cache.clear()
            self._cache_bytes = 0
            self._version = version

    def _cache_probe(self, key: tuple) -> list[Clause] | None:
        if self.cache_size <= 0:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        self._cache.move_to_end(key)
        self.stats.cache_hits += 1
        return entry[0]

    def _cache_insert(
        self, key: tuple, candidates: list[Clause], version_snapshot: int
    ) -> None:
        # A mutation during the pull makes this candidate list stale for
        # the *next* probe even though it was correct for this one.
        if self.cache_size <= 0 or self._backend_version() != version_snapshot:
            return
        cost = _candidates_cost(candidates)
        if cost > self.cache_bytes:
            return  # would evict everything else and still not fit
        previous = self._cache.pop(key, None)
        if previous is not None:
            self._cache_bytes -= previous[1]
        self._cache[key] = (candidates, cost)
        self._cache_bytes += cost
        while self._cache and (
            len(self._cache) > self.cache_size
            or self._cache_bytes > self.cache_bytes
        ):
            _, (_, evicted) = self._cache.popitem(last=False)
            self._cache_bytes -= evicted

    def _note_routing(self, goal: Term) -> None:
        if self._router is None:
            return
        try:
            targets = self._router.route_goal(goal)
        except UnknownPredicateError:
            return
        if len(targets) > 1:
            self.stats.broadcasts += 1
        else:
            self.stats.single_shard += 1


def _candidates_cost(candidates: list[Clause]) -> int:
    """Estimated resident bytes of one cached candidate list.

    A structural walk (constant per term node plus symbol-name lengths)
    rather than ``sys.getsizeof`` recursion: terms are shared, frozen
    dataclasses, so an estimate that is stable across interpreters is
    worth more than a byte-exact one.
    """
    total = 64  # the list itself
    for clause in candidates:
        total += 64
        stack = [clause.head, *clause.body]
        while stack:
            term = stack.pop()
            total += 48
            if isinstance(term, Struct):
                total += len(term.functor)
                stack.extend(term.args)
            elif isinstance(term, (Atom, Var)):
                total += len(term.name)
    return total


def _accepts_timeout(callable_) -> bool:
    try:
        return "timeout" in inspect.signature(callable_).parameters
    except (TypeError, ValueError):  # builtins, C callables
        return False


def _goal_indicator(goal: Term) -> tuple[str, int]:
    from ..terms import functor_indicator

    return functor_indicator(goal)


@dataclass
class SolveStats:
    """One query's resolution and retrieval accounting."""

    solutions: int = 0
    calls: int = 0
    backtracks: int = 0
    escapes: int = 0
    retrievals: int = 0
    cache_hits: int = 0
    prefetch_batches: int = 0
    prefetched_goals: int = 0
    single_shard: int = 0
    broadcasts: int = 0


class SolveEngine:
    """Conjunctive queries against a sharded retrieval backend.

    ``engine`` selects the default execution model: ``"zip"`` runs the
    compiled ZIP machine (with per-predicate interpreter escapes),
    ``"interp"`` the tree-walking interpreter.  Both produce identical
    answer sequences — the differential suite enforces it.

    Database mutation (``assert``/``retract`` goals) routes through the
    backend's front-door methods, so its version counter bumps and no
    cache layer — cluster LRU, retriever cache, decoded-clause LRU, disk
    extents — can serve stale candidates to later choice points.

    Not thread-safe: build one engine per concurrently running query
    (construction is cheap; the caches that matter live in the backend).
    """

    def __init__(
        self,
        backend,
        mode: SearchMode | None = None,
        engine: str = "zip",
        cache_size: int = 512,
        prefetch_width: int = 8,
        unknown: str = "fail",
        output=None,
    ):
        if engine not in ("zip", "interp"):
            raise ValueError("engine must be 'zip' or 'interp'")
        self.backend = backend
        self.engine = engine
        self.retriever = ClusterRetriever(
            backend,
            mode=mode,
            cache_size=cache_size,
            prefetch_width=prefetch_width,
            unknown=unknown,
        )
        self._output = output
        self._assertz = getattr(backend, "assertz", None)
        self._asserta = getattr(backend, "asserta", None)
        self._retract = getattr(
            backend, "retract_matching", getattr(backend, "retract", None)
        )
        self.stats = SolveStats()

    # -- queries -------------------------------------------------------------

    def solve(
        self,
        goal: Term,
        deadline_s: float | None = None,
        max_solutions: int = 0,
        engine: str | None = None,
    ) -> Iterator[dict[str, Term]]:
        """Solutions as {variable name: value} dicts, streamed lazily.

        ``deadline_s`` bounds the whole enumeration (retrievals inherit
        the remaining budget; :class:`RetrievalTimeout` is raised when
        it runs out); ``max_solutions`` > 0 stops after that many.
        """
        engine = engine or self.engine
        if engine not in ("zip", "interp"):
            raise ValueError("engine must be 'zip' or 'interp'")
        goal_vars = [v for v in variables(goal) if not v.is_anonymous()]
        goal = freshen_anonymous(goal)
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self.retriever.set_deadline(deadline)
        solutions = self._bindings_iter(goal, engine)
        produced = 0
        try:
            for bindings in solutions:
                if deadline is not None and time.monotonic() > deadline:
                    raise RetrievalTimeout("solve deadline expired")
                produced += 1
                self.stats.solutions += 1
                yield {v.name: bindings.resolve(v) for v in goal_vars}
                if max_solutions and produced >= max_solutions:
                    return
        finally:
            self.retriever.set_deadline(None)

    def solve_text(self, text: str, **kwargs) -> Iterator[dict[str, Term]]:
        return self.solve(read_term(text), **kwargs)

    def _bindings_iter(self, goal: Term, engine: str):
        if engine == "interp":
            solver = Solver(
                self.retriever,
                assertz=self._assert_hook(self._assertz),
                asserta=self._assert_hook(self._asserta),
                retract=self._retract,
                output=self._output,
            )
            return self._counting(solver.solve(goal), None)
        vm = ZipMachine(
            self.retriever,
            assertz=self._assert_hook(self._assertz),
            asserta=self._assert_hook(self._asserta),
            retract=self._retract,
            output=self._output,
        )
        return self._counting(vm.solve(goal), vm)

    @staticmethod
    def _assert_hook(method) -> Callable[[Clause], None] | None:
        if method is None:
            return None
        return lambda clause: method(clause)

    def _counting(self, solutions, vm: ZipMachine | None):
        retriever_stats = self.retriever.stats
        for bindings in solutions:
            self._snapshot_stats(vm, retriever_stats)
            yield bindings
        self._snapshot_stats(vm, retriever_stats)

    def _snapshot_stats(self, vm: ZipMachine | None, retriever: RetrieverStats):
        if vm is not None:
            self.stats.calls = vm.calls
            self.stats.backtracks = vm.backtracks
            self.stats.escapes = vm.escapes
        self.stats.retrievals = retriever.retrievals
        self.stats.cache_hits = retriever.cache_hits
        self.stats.prefetch_batches = retriever.prefetch_batches
        self.stats.prefetched_goals = retriever.prefetched_goals
        self.stats.single_shard = retriever.single_shard
        self.stats.broadcasts = retriever.broadcasts
