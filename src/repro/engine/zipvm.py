"""A ZIP-style compiled-clause abstract machine.

The PDBM software component "is based on a C version of Prolog-X ...
a Prolog compiler originally developed by Clocksin" — clauses are
*compiled*, not interpreted (paper section 2).  This module provides that
execution model: clauses compile once into instruction sequences, and an
explicit-stack abstract machine (goal stack, choice-point stack, trail)
runs them — Clocksin's ZIP machine in miniature.

Instruction set::

    GET     slot-pattern, argument-index   head-argument unification
    NECK                                   head done, body begins
    CALL    goal-pattern                   push a user-predicate goal
    BUILTIN goal-pattern                   run an inline (semi-det) builtin
    CUT                                    discard choice points of this call
    PROCEED                                clause solved

Patterns are clause terms with variables replaced by frame-slot
references; each activation allocates fresh variables for its slots, so
standardisation-apart is a frame allocation, not a term copy.

The machine supports the deterministic builtin core (unification, type
tests, arithmetic, comparison) plus cut, and *escapes* to the
tree-walking interpreter for everything else — per **predicate**, never
per clause.  When any clause of a procedure uses constructs the
compiler rejects (``;``, ``->``, ``\\+``, ``findall`` ...), the whole
call runs under the interpreter as one choice point, so clause order —
and therefore the answer *sequence* — is exactly what a pure
interpreter run produces.  (A per-clause fallback would interleave
compiled and interpreted activations of the same procedure and could
reorder solutions; the differential suite in
``tests/test_engine_differential.py`` holds the two engines to
identical sequences, not just sets.)  Non-inline builtins reached as
goals (``between/3``, ``findall/3``, assert/retract ...) escape the
same way, one goal at a time, which gives the compiled engine the full
builtin surface of :mod:`repro.engine.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..terms import (
    Atom,
    Clause,
    Float,
    Int,
    Struct,
    Term,
    Var,
    fresh_var,
    functor_indicator,
    is_ground,
    variables,
)
from ..unify import Bindings, unify
from .interp import PrologError, ResourceError, Solver, term_order_key

__all__ = ["CompileError", "CompiledProcedureClause", "ZipMachine", "compile_clause_code"]


class CompileError(PrologError):
    """The clause uses constructs the compiled engine does not support."""


# -- instructions -------------------------------------------------------------


@dataclass(frozen=True)
class SlotRef:
    """A clause-local variable: resolved to a fresh Var per activation."""

    slot: int

    def __repr__(self) -> str:
        return f"Y{self.slot}"


def _pretty(pattern) -> str:
    """Readable rendering of an instruction's slot pattern."""
    if isinstance(pattern, (SlotRef, _PatternStruct)):
        return repr(pattern)
    from ..terms import term_to_string

    return term_to_string(pattern)


@dataclass(frozen=True)
class Get:
    pattern: object  # Term with SlotRefs
    argument: int

    def __repr__(self) -> str:
        return f"GET A{self.argument}, {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Neck:
    def __repr__(self) -> str:
        return "NECK"


@dataclass(frozen=True)
class Call:
    pattern: object

    def __repr__(self) -> str:
        return f"CALL {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Builtin:
    pattern: object

    def __repr__(self) -> str:
        return f"BUILTIN {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Cut:
    def __repr__(self) -> str:
        return "CUT"


@dataclass(frozen=True)
class Proceed:
    def __repr__(self) -> str:
        return "PROCEED"


@dataclass(frozen=True)
class CompiledProcedureClause:
    """One clause's code: instructions plus its frame size."""

    indicator: tuple[str, int]
    instructions: tuple
    slots: int

    def listing(self) -> list[str]:
        return [repr(i) for i in self.instructions]


# -- compilation ------------------------------------------------------------------

#: Builtins the compiled engine executes inline (all semi-deterministic).
_INLINE_BUILTINS = {
    ("true", 0),
    ("fail", 0),
    ("false", 0),
    ("=", 2),
    ("\\=", 2),
    ("==", 2),
    ("\\==", 2),
    ("is", 2),
    ("<", 2),
    (">", 2),
    ("=<", 2),
    (">=", 2),
    ("=:=", 2),
    ("=\\=", 2),
    ("@<", 2),
    ("@>", 2),
    ("@=<", 2),
    ("@>=", 2),
    ("var", 1),
    ("nonvar", 1),
    ("atom", 1),
    ("number", 1),
    ("integer", 1),
    ("float", 1),
    ("atomic", 1),
    ("compound", 1),
}

_UNSUPPORTED = {
    (";", 2),
    ("->", 2),
    ("\\+", 1),
    ("not", 1),
    ("call", 1),
    ("findall", 3),
    ("bagof", 3),
    ("setof", 3),
    ("assert", 1),
    ("assertz", 1),
    ("asserta", 1),
    ("retract", 1),
}

def _escaped_goal_indicators() -> frozenset:
    """Goal indicators the machine hands to the interpreter.

    Derived from the interpreter's own dispatch tables so the two
    engines can never disagree about what a goal *is*: everything interp
    treats as a control construct or builtin, minus what the machine
    runs inline and the two control forms (conjunction, cut) it
    implements natively.
    """
    from .interp import _BUILTINS, _CONTROL

    native = set(_INLINE_BUILTINS) | {(",", 2), ("!", 0)}
    return frozenset((set(_CONTROL) | set(_BUILTINS)) - native)


_ESCAPED_GOALS = _escaped_goal_indicators()

#: Control constructs that are cut-*transparent* in the interpreter: a
#: ``!`` inside their branches cuts the surrounding clause (or query).
#: A query containing one of these as a conjunct is delegated whole to
#: the interpreter — a per-goal escape would run it under a fresh cut
#: barrier and could prune differently.
_CUT_TRANSPARENT = frozenset({(";", 2), ("->", 2)})

_COMPILE_CACHE: dict[Clause, CompiledProcedureClause] = {}
_COMPILABLE_CACHE: dict[Clause, bool] = {}


def clause_compilable(clause: Clause) -> bool:
    """True if the clause compiles (memoised, including the negative)."""
    cached = _COMPILABLE_CACHE.get(clause)
    if cached is None:
        try:
            compile_clause_code(clause)
            cached = True
        except CompileError:
            cached = False
        _COMPILABLE_CACHE[clause] = cached
    return cached


def compile_clause_code(clause: Clause) -> CompiledProcedureClause:
    """Compile one clause (memoised: clauses are immutable)."""
    cached = _COMPILE_CACHE.get(clause)
    if cached is not None:
        return cached
    slots: dict[Var, SlotRef] = {}

    def pattern_of(term: Term):
        if isinstance(term, Var):
            if term.is_anonymous():
                return SlotRef(_allocate(slots, Var(f"_anon{len(slots)}")))
            if term not in slots:
                slots[term] = SlotRef(len(slots))
            return slots[term]
        if isinstance(term, Struct):
            return _PatternStruct(
                term.functor, tuple(pattern_of(a) for a in term.args)
            )
        return term

    instructions: list = []
    head = clause.head
    if isinstance(head, Struct):
        for index, argument in enumerate(head.args):
            instructions.append(Get(pattern_of(argument), index))
    instructions.append(Neck())
    for goal in clause.body:
        indicator = functor_indicator(goal)
        if indicator == ("!", 0):
            instructions.append(Cut())
            continue
        if indicator in _UNSUPPORTED or indicator == (",", 2):
            raise CompileError(
                f"{indicator[0]}/{indicator[1]} is not compilable; "
                "use the interpreter"
            )
        if indicator in _INLINE_BUILTINS:
            instructions.append(Builtin(pattern_of(goal)))
        else:
            instructions.append(Call(pattern_of(goal)))
    instructions.append(Proceed())
    compiled = CompiledProcedureClause(
        indicator=clause.indicator,
        instructions=tuple(instructions),
        slots=len(slots),
    )
    _COMPILE_CACHE[clause] = compiled
    return compiled


def _allocate(slots: dict, key: Var) -> int:
    slots[key] = SlotRef(len(slots))
    return slots[key].slot


@dataclass(frozen=True)
class _PatternStruct:
    functor: str
    args: tuple

    def __repr__(self) -> str:
        inner = ",".join(_pretty(a) for a in self.args)
        return f"{self.functor}({inner})"


def _instantiate(pattern, frame: list[Var]) -> Term:
    """Build the runtime term of a pattern against an activation frame."""
    if isinstance(pattern, SlotRef):
        return frame[pattern.slot]
    if isinstance(pattern, _PatternStruct):
        return Struct(
            pattern.functor, tuple(_instantiate(a, frame) for a in pattern.args)
        )
    return pattern


# -- the machine -----------------------------------------------------------------


@dataclass
class _Goal:
    term: Term
    cut_barrier: int  # choice-point height at the owning call's entry


@dataclass
class _ChoicePoint:
    goal_stack: list
    goal: Term
    clauses: list[Clause]
    next_clause: int
    trail_mark: int


@dataclass
class _EscapePoint:
    """A choice point whose alternatives live in an interpreter generator.

    ``entry_mark`` is the trail height before the escaped goal ran at
    all; ``resume_mark`` is the height at its most recent solution.
    Backtracking into the point undoes to ``resume_mark`` (never to
    ``entry_mark`` while the generator is live — its suspended frames
    hold absolute marks above it) and advances the generator; exhaustion
    undoes to ``entry_mark`` and pops.
    """

    goal_stack: list
    solutions: Iterator[Bindings]
    entry_mark: int
    resume_mark: int


class ZipMachine:
    """Explicit-stack execution of compiled clauses.

    ``assertz``/``asserta``/``retract`` hooks (and ``output``) are
    forwarded to the embedded interpreter that serves escaped goals, so
    database mutation during compiled resolution routes through the same
    store as an interpreter run would.
    """

    def __init__(
        self,
        retriever: Callable[[Term], list[Clause]],
        max_steps: int = 5_000_000,
        assertz: Callable[[Clause], None] | None = None,
        asserta: Callable[[Clause], None] | None = None,
        retract: Callable[[Clause], object] | None = None,
        output=None,
    ):
        self._retrieve = retriever
        self.max_steps = max_steps
        self.calls = 0
        self.backtracks = 0
        #: goals handed to the interpreter (escapes), including whole
        #: predicate-level fallbacks.
        self.escapes = 0
        self._steps = 0
        self._interp = Solver(
            retriever,
            assertz=assertz,
            asserta=asserta,
            retract=retract,
            output=output,
        )

    def solve(self, query: Term) -> Iterator[Bindings]:
        """All solutions; yields the live bindings per solution."""
        bindings = Bindings()
        if self._query_needs_interpreter(query, bindings):
            # A cut-transparent control construct at the query's top
            # level: only the interpreter threads the query-level cut
            # signal through it correctly, so the whole query escapes.
            self.escapes += 1
            yield from self._interp.solve(query, bindings)
            return
        goal_stack: list[_Goal] | None = [_Goal(query, 0)]
        choice_points: list[_ChoicePoint | _EscapePoint] = []
        while goal_stack is not None:
            if self._execute(goal_stack, choice_points, bindings):
                yield bindings
            goal_stack = self._backtrack(choice_points, bindings)

    @staticmethod
    def _query_needs_interpreter(query: Term, bindings: Bindings) -> bool:
        from ..terms import body_goals

        walked = bindings.walk(query)
        if isinstance(walked, Var):
            return False  # let the machine raise its own error
        for conjunct in body_goals(walked):
            conjunct = bindings.walk(conjunct)
            if (
                isinstance(conjunct, Struct)
                and conjunct.indicator in _CUT_TRANSPARENT
            ):
                return True
        return False

    # -- inner execution -------------------------------------------------------

    def _execute(
        self,
        goal_stack: list[_Goal],
        choice_points: list[_ChoicePoint],
        bindings: Bindings,
    ) -> bool:
        """Run this branch to a solution (True) or total failure (False)."""
        while goal_stack:
            self._steps += 1
            if self._steps > self.max_steps:
                raise ResourceError(
                    f"compiled execution exceeded {self.max_steps} steps"
                )
            goal_entry = goal_stack.pop()
            goal = bindings.walk(goal_entry.term)
            if isinstance(goal, Var):
                raise PrologError("unbound goal in compiled code")
            indicator = functor_indicator(goal)
            if indicator == (",", 2):
                # Conjunction goals (e.g. a compound query): unfold inline.
                assert isinstance(goal, Struct)
                goal_stack.append(_Goal(goal.args[1], goal_entry.cut_barrier))
                goal_stack.append(_Goal(goal.args[0], goal_entry.cut_barrier))
                continue
            if indicator == ("!", 0):
                del choice_points[goal_entry.cut_barrier :]
                continue
            if indicator in _INLINE_BUILTINS:
                if self._builtin(goal, indicator, bindings):
                    continue
            elif indicator in _ESCAPED_GOALS:
                # Control construct / non-inline builtin: interpreter
                # escape (cut-opaque forms only; transparent ones divert
                # the whole query in solve()).
                if self._start_escape(goal, goal_stack, choice_points, bindings):
                    continue
            else:
                # User predicate: try its clauses.
                clauses = self._fetch_candidates(goal, goal_stack, bindings)
                self.calls += 1
                if any(not clause_compilable(c) for c in clauses):
                    # Per-predicate fallback: one uncompilable clause
                    # sends the *whole call* to the interpreter, so the
                    # procedure's clause order (and thus the solution
                    # sequence) is preserved exactly.
                    if self._start_escape(
                        goal, goal_stack, choice_points, bindings
                    ):
                        continue
                elif self._try_clauses(
                    goal, clauses, 0, goal_stack, choice_points, bindings
                ):
                    continue
            # The current goal failed: backtrack within this execution.
            replacement = self._backtrack(choice_points, bindings)
            if replacement is None:
                return False
            goal_stack[:] = replacement
        return True

    #: how far down the goal stack sibling-goal prefetch looks.
    _PREFETCH_WINDOW = 8

    def _fetch_candidates(
        self, goal: Term, goal_stack: list[_Goal], bindings: Bindings
    ) -> list[Clause]:
        """Pull candidates for ``goal``, prefetching sibling goals.

        Retrievers exposing a ``prefetch(goal, siblings)`` method (the
        cluster-backed :class:`repro.engine.solve.ClusterRetriever`) get
        the *ground* user-predicate goals next on the goal stack —
        typically the remaining body goals of the clause just activated
        — so one batched retrieval warms the cache for the choice points
        about to be created.  Only ground siblings qualify: their
        resolved form cannot change when the current goal binds
        variables, so the prefetched candidate sets stay exact.
        """
        from ..terms import body_goals

        resolved = bindings.resolve(goal)
        prefetch = getattr(self._retrieve, "prefetch", None)
        if prefetch is None:
            return self._retrieve(resolved)
        siblings: list[Term] = []
        for entry in reversed(goal_stack[-self._PREFETCH_WINDOW :]):
            term = bindings.resolve(entry.term)
            if not isinstance(term, (Atom, Struct)):
                continue
            # A stack entry may itself be an unexpanded conjunction
            # (queries push them whole): flatten so its conjuncts count
            # as siblings too.
            for conjunct in body_goals(term):
                if not isinstance(conjunct, (Atom, Struct)):
                    continue
                indicator = functor_indicator(conjunct)
                if (
                    indicator in _INLINE_BUILTINS
                    or indicator in _ESCAPED_GOALS
                    or indicator == ("!", 0)
                ):
                    continue
                if is_ground(conjunct):
                    siblings.append(conjunct)
            if len(siblings) >= self._PREFETCH_WINDOW:
                break
        return prefetch(resolved, tuple(siblings))

    def _start_escape(
        self,
        goal: Term,
        goal_stack: list[_Goal],
        choice_points: list,
        bindings: Bindings,
    ) -> bool:
        """Run ``goal`` under the interpreter as one choice point.

        The interpreter generator shares this machine's ``bindings`` (and
        therefore its trail), so solutions it produces are visible to the
        compiled continuation and undone by the normal backtracking
        discipline.  Returns True when the goal produced a first
        solution; the generator is parked as an :class:`_EscapePoint`
        for the remaining ones.
        """
        self.escapes += 1
        continuation = [_Goal(g.term, g.cut_barrier) for g in goal_stack]
        entry_mark = bindings.mark()
        solutions = self._interp.solve(goal, bindings)
        try:
            next(solutions)
        except StopIteration:
            bindings.undo_to(entry_mark)
            return False
        choice_points.append(
            _EscapePoint(
                goal_stack=continuation,
                solutions=solutions,
                entry_mark=entry_mark,
                resume_mark=bindings.mark(),
            )
        )
        return True

    def _backtrack(
        self, choice_points: list, bindings: Bindings
    ) -> list[_Goal] | None:
        """Restore the most recent alternative; None when exhausted."""
        while choice_points:
            self.backtracks += 1
            point = choice_points[-1]
            if isinstance(point, _EscapePoint):
                bindings.undo_to(point.resume_mark)
                try:
                    next(point.solutions)
                except StopIteration:
                    bindings.undo_to(point.entry_mark)
                    choice_points.pop()
                    continue
                point.resume_mark = bindings.mark()
                return [
                    _Goal(g.term, g.cut_barrier) for g in point.goal_stack
                ]
            bindings.undo_to(point.trail_mark)
            if point.next_clause >= len(point.clauses):
                choice_points.pop()
                continue
            goal_stack = [_Goal(g.term, g.cut_barrier) for g in point.goal_stack]
            if self._try_clauses(
                point.goal,
                point.clauses,
                point.next_clause,
                goal_stack,
                choice_points,
                bindings,
                existing_point=point,
            ):
                return goal_stack
            choice_points.pop()
        return None

    def _try_clauses(
        self,
        goal: Term,
        clauses: list[Clause],
        start: int,
        goal_stack: list[_Goal],
        choice_points: list[_ChoicePoint],
        bindings: Bindings,
        existing_point: _ChoicePoint | None = None,
    ) -> bool:
        """Activate the first matching clause from ``start`` onward."""
        continuation = [_Goal(g.term, g.cut_barrier) for g in goal_stack]
        # A cut in the activated clause must discard this call's remaining
        # alternatives: when retrying through an existing choice point the
        # point itself sits at the top of the stack and is inside the
        # barrier; a fresh point is appended at the current height.
        barrier = len(choice_points)
        if existing_point is not None:
            barrier = len(choice_points) - 1
        for position in range(start, len(clauses)):
            clause = clauses[position]
            code = compile_clause_code(clause)
            trail_mark = bindings.mark()
            frame = [fresh_var("_Z") for _ in range(code.slots)]
            if self._activate(
                code, goal, frame, goal_stack, bindings, barrier
            ):
                if position + 1 < len(clauses):
                    if existing_point is not None:
                        existing_point.next_clause = position + 1
                        existing_point.trail_mark = trail_mark
                    else:
                        choice_points.append(
                            _ChoicePoint(
                                goal_stack=continuation,
                                goal=goal,
                                clauses=clauses,
                                next_clause=position + 1,
                                trail_mark=trail_mark,
                            )
                        )
                elif existing_point is not None:
                    existing_point.next_clause = len(clauses)
                return True
            bindings.undo_to(trail_mark)
        return False

    def _activate(
        self,
        code: CompiledProcedureClause,
        goal: Term,
        frame: list[Var],
        goal_stack: list[_Goal],
        bindings: Bindings,
        cut_barrier: int,
    ) -> bool:
        """Run head GETs; on success push body goals."""
        goal_args: tuple[Term, ...] = ()
        if isinstance(goal, Struct):
            goal_args = goal.args
        body: list[Term] = []
        for instruction in code.instructions:
            if isinstance(instruction, Get):
                head_term = _instantiate(instruction.pattern, frame)
                if unify(goal_args[instruction.argument], head_term, bindings) is None:
                    return False
            elif isinstance(instruction, Neck):
                continue
            elif isinstance(instruction, (Call, Builtin)):
                body.append(_instantiate(instruction.pattern, frame))
            elif isinstance(instruction, Cut):
                body.append(Atom("!"))
            elif isinstance(instruction, Proceed):
                break
        for goal_term in reversed(body):
            goal_stack.append(_Goal(goal_term, cut_barrier))
        return True

    # -- inline builtins -----------------------------------------------------------

    def _builtin(
        self, goal: Term, indicator: tuple[str, int], bindings: Bindings
    ) -> bool:
        from .interp import _evaluate, _numeric

        name, _ = indicator
        if name == "true":
            return True
        if name in ("fail", "false"):
            return False
        args = goal.args if isinstance(goal, Struct) else ()
        if name == "=":
            return unify(args[0], args[1], bindings) is not None
        if name == "\\=":
            mark = bindings.mark()
            result = unify(args[0], args[1], bindings) is not None
            bindings.undo_to(mark)
            return not result
        if name == "==":
            return bindings.resolve(args[0]) == bindings.resolve(args[1])
        if name == "\\==":
            return bindings.resolve(args[0]) != bindings.resolve(args[1])
        if name == "is":
            value = _evaluate(args[1], bindings)
            return unify(args[0], value, bindings) is not None
        if name in ("<", ">", "=<", ">=", "=:=", "=\\="):
            left = _numeric(_evaluate(args[0], bindings))
            right = _numeric(_evaluate(args[1], bindings))
            return {
                "<": left < right,
                ">": left > right,
                "=<": left <= right,
                ">=": left >= right,
                "=:=": left == right,
                "=\\=": left != right,
            }[name]
        if name in ("@<", "@>", "@=<", "@>="):
            left = term_order_key(bindings.resolve(args[0]))
            right = term_order_key(bindings.resolve(args[1]))
            return {
                "@<": left < right,
                "@>": left > right,
                "@=<": left <= right,
                "@>=": left >= right,
            }[name]
        walked = bindings.walk(args[0])
        if name == "var":
            return isinstance(walked, Var)
        if name == "nonvar":
            return not isinstance(walked, Var)
        if name == "atom":
            return isinstance(walked, Atom)
        if name == "number":
            return isinstance(walked, (Int, Float))
        if name == "integer":
            return isinstance(walked, Int)
        if name == "float":
            return isinstance(walked, Float)
        if name == "atomic":
            return isinstance(walked, (Atom, Int, Float))
        if name == "compound":
            return isinstance(walked, Struct)
        raise PrologError(f"inline builtin {name} not handled")
