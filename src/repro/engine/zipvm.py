"""A ZIP-style compiled-clause abstract machine.

The PDBM software component "is based on a C version of Prolog-X ...
a Prolog compiler originally developed by Clocksin" — clauses are
*compiled*, not interpreted (paper section 2).  This module provides that
execution model: clauses compile once into instruction sequences, and an
explicit-stack abstract machine (goal stack, choice-point stack, trail)
runs them — Clocksin's ZIP machine in miniature.

Instruction set::

    GET     slot-pattern, argument-index   head-argument unification
    NECK                                   head done, body begins
    CALL    goal-pattern                   push a user-predicate goal
    BUILTIN goal-pattern                   run an inline (semi-det) builtin
    CUT                                    discard choice points of this call
    PROCEED                                clause solved

Patterns are clause terms with variables replaced by frame-slot
references; each activation allocates fresh variables for its slots, so
standardisation-apart is a frame allocation, not a term copy.

The machine supports the deterministic builtin core (unification, type
tests, arithmetic, comparison) plus cut.  Clauses using control
constructs it does not compile (``;``, ``->``, ``\\+``, ``findall`` ...)
raise :class:`CompileError`; the integrated machine falls back to the
tree-walking interpreter for those — and a property test holds the two
engines to identical answer sets on the common fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..terms import (
    Atom,
    Clause,
    Float,
    Int,
    Struct,
    Term,
    Var,
    fresh_var,
    functor_indicator,
    variables,
)
from ..unify import Bindings, unify
from .interp import PrologError, term_order_key

__all__ = ["CompileError", "CompiledProcedureClause", "ZipMachine", "compile_clause_code"]


class CompileError(PrologError):
    """The clause uses constructs the compiled engine does not support."""


# -- instructions -------------------------------------------------------------


@dataclass(frozen=True)
class SlotRef:
    """A clause-local variable: resolved to a fresh Var per activation."""

    slot: int

    def __repr__(self) -> str:
        return f"Y{self.slot}"


def _pretty(pattern) -> str:
    """Readable rendering of an instruction's slot pattern."""
    if isinstance(pattern, (SlotRef, _PatternStruct)):
        return repr(pattern)
    from ..terms import term_to_string

    return term_to_string(pattern)


@dataclass(frozen=True)
class Get:
    pattern: object  # Term with SlotRefs
    argument: int

    def __repr__(self) -> str:
        return f"GET A{self.argument}, {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Neck:
    def __repr__(self) -> str:
        return "NECK"


@dataclass(frozen=True)
class Call:
    pattern: object

    def __repr__(self) -> str:
        return f"CALL {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Builtin:
    pattern: object

    def __repr__(self) -> str:
        return f"BUILTIN {_pretty(self.pattern)}"


@dataclass(frozen=True)
class Cut:
    def __repr__(self) -> str:
        return "CUT"


@dataclass(frozen=True)
class Proceed:
    def __repr__(self) -> str:
        return "PROCEED"


@dataclass(frozen=True)
class CompiledProcedureClause:
    """One clause's code: instructions plus its frame size."""

    indicator: tuple[str, int]
    instructions: tuple
    slots: int

    def listing(self) -> list[str]:
        return [repr(i) for i in self.instructions]


# -- compilation ------------------------------------------------------------------

#: Builtins the compiled engine executes inline (all semi-deterministic).
_INLINE_BUILTINS = {
    ("true", 0),
    ("fail", 0),
    ("false", 0),
    ("=", 2),
    ("\\=", 2),
    ("==", 2),
    ("\\==", 2),
    ("is", 2),
    ("<", 2),
    (">", 2),
    ("=<", 2),
    (">=", 2),
    ("=:=", 2),
    ("=\\=", 2),
    ("@<", 2),
    ("@>", 2),
    ("@=<", 2),
    ("@>=", 2),
    ("var", 1),
    ("nonvar", 1),
    ("atom", 1),
    ("number", 1),
    ("integer", 1),
    ("float", 1),
    ("atomic", 1),
    ("compound", 1),
}

_UNSUPPORTED = {
    (";", 2),
    ("->", 2),
    ("\\+", 1),
    ("not", 1),
    ("call", 1),
    ("findall", 3),
    ("bagof", 3),
    ("setof", 3),
    ("assert", 1),
    ("assertz", 1),
    ("asserta", 1),
    ("retract", 1),
}

_COMPILE_CACHE: dict[Clause, CompiledProcedureClause] = {}


def compile_clause_code(clause: Clause) -> CompiledProcedureClause:
    """Compile one clause (memoised: clauses are immutable)."""
    cached = _COMPILE_CACHE.get(clause)
    if cached is not None:
        return cached
    slots: dict[Var, SlotRef] = {}

    def pattern_of(term: Term):
        if isinstance(term, Var):
            if term.is_anonymous():
                return SlotRef(_allocate(slots, Var(f"_anon{len(slots)}")))
            if term not in slots:
                slots[term] = SlotRef(len(slots))
            return slots[term]
        if isinstance(term, Struct):
            return _PatternStruct(
                term.functor, tuple(pattern_of(a) for a in term.args)
            )
        return term

    instructions: list = []
    head = clause.head
    if isinstance(head, Struct):
        for index, argument in enumerate(head.args):
            instructions.append(Get(pattern_of(argument), index))
    instructions.append(Neck())
    for goal in clause.body:
        indicator = functor_indicator(goal)
        if indicator == ("!", 0):
            instructions.append(Cut())
            continue
        if indicator in _UNSUPPORTED or indicator == (",", 2):
            raise CompileError(
                f"{indicator[0]}/{indicator[1]} is not compilable; "
                "use the interpreter"
            )
        if indicator in _INLINE_BUILTINS:
            instructions.append(Builtin(pattern_of(goal)))
        else:
            instructions.append(Call(pattern_of(goal)))
    instructions.append(Proceed())
    compiled = CompiledProcedureClause(
        indicator=clause.indicator,
        instructions=tuple(instructions),
        slots=len(slots),
    )
    _COMPILE_CACHE[clause] = compiled
    return compiled


def _allocate(slots: dict, key: Var) -> int:
    slots[key] = SlotRef(len(slots))
    return slots[key].slot


@dataclass(frozen=True)
class _PatternStruct:
    functor: str
    args: tuple

    def __repr__(self) -> str:
        inner = ",".join(_pretty(a) for a in self.args)
        return f"{self.functor}({inner})"


def _instantiate(pattern, frame: list[Var]) -> Term:
    """Build the runtime term of a pattern against an activation frame."""
    if isinstance(pattern, SlotRef):
        return frame[pattern.slot]
    if isinstance(pattern, _PatternStruct):
        return Struct(
            pattern.functor, tuple(_instantiate(a, frame) for a in pattern.args)
        )
    return pattern


# -- the machine -----------------------------------------------------------------


@dataclass
class _Goal:
    term: Term
    cut_barrier: int  # choice-point height at the owning call's entry


@dataclass
class _ChoicePoint:
    goal_stack: list
    goal: Term
    clauses: list[Clause]
    next_clause: int
    trail_mark: int


class ZipMachine:
    """Explicit-stack execution of compiled clauses."""

    def __init__(
        self,
        retriever: Callable[[Term], list[Clause]],
        max_steps: int = 5_000_000,
    ):
        self._retrieve = retriever
        self.max_steps = max_steps
        self.calls = 0
        self.backtracks = 0
        self._steps = 0

    def solve(self, query: Term) -> Iterator[Bindings]:
        """All solutions; yields the live bindings per solution."""
        bindings = Bindings()
        goal_stack: list[_Goal] | None = [_Goal(query, 0)]
        choice_points: list[_ChoicePoint] = []
        while goal_stack is not None:
            if self._execute(goal_stack, choice_points, bindings):
                yield bindings
            goal_stack = self._backtrack(choice_points, bindings)

    # -- inner execution -------------------------------------------------------

    def _execute(
        self,
        goal_stack: list[_Goal],
        choice_points: list[_ChoicePoint],
        bindings: Bindings,
    ) -> bool:
        """Run this branch to a solution (True) or total failure (False)."""
        while goal_stack:
            self._steps += 1
            if self._steps > self.max_steps:
                raise PrologError(
                    f"compiled execution exceeded {self.max_steps} steps"
                )
            goal_entry = goal_stack.pop()
            goal = bindings.walk(goal_entry.term)
            if isinstance(goal, Var):
                raise PrologError("unbound goal in compiled code")
            indicator = functor_indicator(goal)
            if indicator == (",", 2):
                # Conjunction goals (e.g. a compound query): unfold inline.
                assert isinstance(goal, Struct)
                goal_stack.append(_Goal(goal.args[1], goal_entry.cut_barrier))
                goal_stack.append(_Goal(goal.args[0], goal_entry.cut_barrier))
                continue
            if indicator == ("!", 0):
                del choice_points[goal_entry.cut_barrier :]
                continue
            if indicator in _INLINE_BUILTINS:
                if self._builtin(goal, indicator, bindings):
                    continue
            else:
                # User predicate: try its clauses.
                clauses = self._retrieve(bindings.resolve(goal))
                self.calls += 1
                if self._try_clauses(
                    goal, clauses, 0, goal_stack, choice_points, bindings
                ):
                    continue
            # The current goal failed: backtrack within this execution.
            replacement = self._backtrack(choice_points, bindings)
            if replacement is None:
                return False
            goal_stack[:] = replacement
        return True

    def _backtrack(
        self, choice_points: list[_ChoicePoint], bindings: Bindings
    ) -> list[_Goal] | None:
        """Restore the most recent alternative; None when exhausted."""
        while choice_points:
            self.backtracks += 1
            point = choice_points[-1]
            bindings.undo_to(point.trail_mark)
            if point.next_clause >= len(point.clauses):
                choice_points.pop()
                continue
            goal_stack = [_Goal(g.term, g.cut_barrier) for g in point.goal_stack]
            if self._try_clauses(
                point.goal,
                point.clauses,
                point.next_clause,
                goal_stack,
                choice_points,
                bindings,
                existing_point=point,
            ):
                return goal_stack
            choice_points.pop()
        return None

    def _try_clauses(
        self,
        goal: Term,
        clauses: list[Clause],
        start: int,
        goal_stack: list[_Goal],
        choice_points: list[_ChoicePoint],
        bindings: Bindings,
        existing_point: _ChoicePoint | None = None,
    ) -> bool:
        """Activate the first matching clause from ``start`` onward."""
        continuation = [_Goal(g.term, g.cut_barrier) for g in goal_stack]
        # A cut in the activated clause must discard this call's remaining
        # alternatives: when retrying through an existing choice point the
        # point itself sits at the top of the stack and is inside the
        # barrier; a fresh point is appended at the current height.
        barrier = len(choice_points)
        if existing_point is not None:
            barrier = len(choice_points) - 1
        for position in range(start, len(clauses)):
            clause = clauses[position]
            code = compile_clause_code(clause)
            trail_mark = bindings.mark()
            frame = [fresh_var("_Z") for _ in range(code.slots)]
            if self._activate(
                code, goal, frame, goal_stack, bindings, barrier
            ):
                if position + 1 < len(clauses):
                    if existing_point is not None:
                        existing_point.next_clause = position + 1
                        existing_point.trail_mark = trail_mark
                    else:
                        choice_points.append(
                            _ChoicePoint(
                                goal_stack=continuation,
                                goal=goal,
                                clauses=clauses,
                                next_clause=position + 1,
                                trail_mark=trail_mark,
                            )
                        )
                elif existing_point is not None:
                    existing_point.next_clause = len(clauses)
                return True
            bindings.undo_to(trail_mark)
        return False

    def _activate(
        self,
        code: CompiledProcedureClause,
        goal: Term,
        frame: list[Var],
        goal_stack: list[_Goal],
        bindings: Bindings,
        cut_barrier: int,
    ) -> bool:
        """Run head GETs; on success push body goals."""
        goal_args: tuple[Term, ...] = ()
        if isinstance(goal, Struct):
            goal_args = goal.args
        body: list[Term] = []
        for instruction in code.instructions:
            if isinstance(instruction, Get):
                head_term = _instantiate(instruction.pattern, frame)
                if unify(goal_args[instruction.argument], head_term, bindings) is None:
                    return False
            elif isinstance(instruction, Neck):
                continue
            elif isinstance(instruction, (Call, Builtin)):
                body.append(_instantiate(instruction.pattern, frame))
            elif isinstance(instruction, Cut):
                body.append(Atom("!"))
            elif isinstance(instruction, Proceed):
                break
        for goal_term in reversed(body):
            goal_stack.append(_Goal(goal_term, cut_barrier))
        return True

    # -- inline builtins -----------------------------------------------------------

    def _builtin(
        self, goal: Term, indicator: tuple[str, int], bindings: Bindings
    ) -> bool:
        from .interp import _evaluate, _numeric

        name, _ = indicator
        if name == "true":
            return True
        if name in ("fail", "false"):
            return False
        args = goal.args if isinstance(goal, Struct) else ()
        if name == "=":
            return unify(args[0], args[1], bindings) is not None
        if name == "\\=":
            mark = bindings.mark()
            result = unify(args[0], args[1], bindings) is not None
            bindings.undo_to(mark)
            return not result
        if name == "==":
            return bindings.resolve(args[0]) == bindings.resolve(args[1])
        if name == "\\==":
            return bindings.resolve(args[0]) != bindings.resolve(args[1])
        if name == "is":
            value = _evaluate(args[1], bindings)
            return unify(args[0], value, bindings) is not None
        if name in ("<", ">", "=<", ">=", "=:=", "=\\="):
            left = _numeric(_evaluate(args[0], bindings))
            right = _numeric(_evaluate(args[1], bindings))
            return {
                "<": left < right,
                ">": left > right,
                "=<": left <= right,
                ">=": left >= right,
                "=:=": left == right,
                "=\\=": left != right,
            }[name]
        if name in ("@<", "@>", "@=<", "@>="):
            left = term_order_key(bindings.resolve(args[0]))
            right = term_order_key(bindings.resolve(args[1]))
            return {
                "@<": left < right,
                "@>": left > right,
                "@=<": left <= right,
                "@>=": left >= right,
            }[name]
        walked = bindings.walk(args[0])
        if name == "var":
            return isinstance(walked, Var)
        if name == "nonvar":
            return not isinstance(walked, Var)
        if name == "atom":
            return isinstance(walked, Atom)
        if name == "number":
            return isinstance(walked, (Int, Float))
        if name == "integer":
            return isinstance(walked, Int)
        if name == "float":
            return isinstance(walked, Float)
        if name == "atomic":
            return isinstance(walked, (Atom, Int, Float))
        if name == "compound":
            return isinstance(walked, Struct)
        raise PrologError(f"inline builtin {name} not handled")
