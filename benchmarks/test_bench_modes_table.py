"""[TM] Regenerate the FS2 operational-mode table (section 3).

The control-register bit encodings (b0/b1 selecting the four operational
modes, b2 selecting FS1/FS2, b7 as match-found status) are verified and
printed; the benchmark times a full host-protocol mode cycle.
"""

from repro.fs2 import (
    ControlRegister,
    FilterSelect,
    OperationalMode,
)
from tables import record_table


def test_bench_mode_table(benchmark):
    def cycle_modes():
        register = ControlRegister()
        register.select_filter(FilterSelect.FS2)
        observed = []
        for mode in (
            OperationalMode.MICROPROGRAMMING,
            OperationalMode.SET_QUERY,
            OperationalMode.SEARCH,
            OperationalMode.READ_RESULT,
        ):
            register.set_mode(mode)
            observed.append((mode, register.value & 1, (register.value >> 1) & 1))
        return observed

    observed = benchmark(cycle_modes)
    expected = {
        OperationalMode.READ_RESULT: (0, 0),
        OperationalMode.SEARCH: (0, 1),
        OperationalMode.MICROPROGRAMMING: (1, 0),
        OperationalMode.SET_QUERY: (1, 1),
    }
    for mode, b0, b1 in observed:
        assert expected[mode] == (b0, b1)
    record_table(
        "TM",
        "FS2 operational modes (control register b0, b1)",
        ("operational mode", "b0", "b1"),
        [
            ("Read Result", 0, 0),
            ("Search", 0, 1),
            ("Microprogramming", 1, 0),
            ("Set Query", 1, 1),
        ],
    )


def test_bench_filter_select(benchmark):
    def toggle():
        register = ControlRegister()
        states = []
        for which in (FilterSelect.FS1, FilterSelect.FS2, FilterSelect.FS1):
            register.select_filter(which)
            states.append((which, register.filter_select, (register.value >> 2) & 1))
        return states

    states = benchmark(toggle)
    for requested, observed, b2 in states:
        assert requested == observed
        assert b2 == (1 if requested == FilterSelect.FS2 else 0)
    record_table(
        "TMb",
        "Filter selection (control register b2) and status (b7)",
        ("bit", "meaning"),
        [
            ("b2 = 0", "FS1 selected (SCW+MB index search)"),
            ("b2 = 1", "FS2 selected (partial test unification)"),
            ("b7 = 1", "a match was found during the last search"),
            ("window", "0xffff7e00-0xffff7fff shared by FS1 and FS2"),
        ],
    )
