"""[E13] Cluster availability and tail latency under replica churn.

The elasticity claim: with two replicas per shard, killing (and later
restarting) one replica at a time costs availability measured in single
failed operations, not outage windows — reads fail over to the healthy
sibling, writes keep acknowledging, and nothing acknowledged is lost.
One chaos run under a kill/restart churn schedule and one fault-free
baseline produce the comparison; the absolute numbers land in
``BENCH_chaos.json`` at the repo root (uploaded by the CI smoke job),
and the correctness gates (zero wrong answers, zero lost writes) are
asserted outright — they are the point of the experiment.
"""

import json
import pathlib

from tables import record_table
from tests.chaos import ChaosDriver, FaultEvent, chaos_program

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_chaos.json"


def churn_schedule(steps: int) -> list[FaultEvent]:
    """Kill one replica of each shard in turn, restarting it before the
    next kill — at most one replica per group is ever down."""
    events = []
    slot = steps // 6 or 1
    for index, (shard, replica) in enumerate(
        [(0, 0), (1, 0), (0, 1), (1, 1)]
    ):
        kill_at = slot * (index + 1)
        events.append(
            FaultEvent(step=kill_at, action="kill", shard=shard,
                       replica=replica)
        )
        events.append(
            FaultEvent(step=kill_at + slot // 2, action="restart",
                       shard=shard, replica=replica)
        )
    return events


def run(schedule, steps, workdir, seed=0):
    return ChaosDriver(
        chaos_program(),
        schedule,
        seed=seed,
        steps=steps,
        workdir=workdir,
    ).run()


def test_bench_availability_under_replica_churn(quick, tmp_path):
    steps = 60 if quick else 150

    baseline = run([], steps, tmp_path / "baseline")
    churned = run(churn_schedule(steps), steps, tmp_path / "churn")

    payload = {
        "steps": steps,
        "baseline": {
            "ops": baseline.ops,
            "availability": round(baseline.availability, 4),
            "p50_ms": round(baseline.latency_s(0.50) * 1e3, 3),
            "p99_ms": round(baseline.latency_s(0.99) * 1e3, 3),
        },
        "churn": {
            "ops": churned.ops,
            "availability": round(churned.availability, 4),
            "errors": churned.errors,
            "p50_ms": round(churned.latency_s(0.50) * 1e3, 3),
            "p99_ms": round(churned.latency_s(0.99) * 1e3, 3),
            "faults_fired": churned.faults_fired,
            "wrong_answers": len(churned.wrong_answers),
            "lost_writes": len(churned.lost_writes),
        },
        "quick": quick,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E13",
        "Availability and tail latency under one-replica-killed churn",
        ("run", "ops", "availability", "p50 ms", "p99 ms"),
        [
            ("no faults", baseline.ops,
             f"{baseline.availability:.2%}",
             round(baseline.latency_s(0.50) * 1e3, 2),
             round(baseline.latency_s(0.99) * 1e3, 2)),
            ("kill/restart churn", churned.ops,
             f"{churned.availability:.2%}",
             round(churned.latency_s(0.50) * 1e3, 2),
             round(churned.latency_s(0.99) * 1e3, 2)),
        ],
        notes=(
            f"2 shards x 2 replicas, faults={churned.faults_fired}; "
            f"errors={churned.errors}, "
            f"wrong={len(churned.wrong_answers)}, "
            f"lost={len(churned.lost_writes)}; "
            f"results in {RESULT_PATH.name}"
        ),
    )

    # Correctness gates: churn may cost availability, never answers.
    assert churned.wrong_answers == []
    assert churned.lost_writes == []
    assert churned.sweep_mismatches == []
    assert baseline.errors == 0
    # The availability claim itself.
    assert churned.faults_fired.get("kill", 0) >= 2
    assert churned.availability >= 0.99, churned.summary()
