"""[E16] Durability cost: mixed read/write loadgen over the WAL engine.

The WAL subsystem's cost claim: group-committed fsync durability prices
every *write* (the ack waits for the log flush) but leaves the *read*
path untouched — reads never take the WAL lock, so read p50/p99 should
hold roughly steady as the write fraction rises from 0% to 50%, while
write latency carries the fsync.  The absolute numbers land in
``BENCH_wal.json`` at the repo root (uploaded by the CI smoke job next
to ``BENCH_net.json``); assertions are deliberately loose — CI boxes
measure host wall clock over a real filesystem.
"""

import json
import pathlib

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.net import BackgroundService, RetrievalService
from repro.storage import DurabilityOptions
from repro.terms import read_term
from repro.workloads import run_loadgen
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_wal.json"

WRITE_FRACTIONS = (0.0, 0.1, 0.5)


def build_engine(tmp_path, facts: int) -> ShardedRetrievalServer:
    engine = ShardedRetrievalServer(
        2,
        ShardingPolicy.PREDICATE,
        durability=DurabilityOptions(
            directory=tmp_path / "store", flush="fsync"
        ),
    )
    engine.consult_text(
        " ".join(f"edge(n{i}, n{(i * 7) % facts})." for i in range(facts))
    )
    return engine


def test_bench_wal_mixed_workload(tmp_path, quick):
    facts = 300 if quick else 2_000
    qps = 150.0 if quick else 300.0
    duration_s = 0.5 if quick else 2.0

    goals = [
        read_term("edge(n1, X)"),
        read_term("edge(n17, X)"),
        read_term("edge(X, n0)"),
    ]
    mixes = []
    for index, fraction in enumerate(WRITE_FRACTIONS):
        engine = build_engine(tmp_path / f"mix{index}", facts)
        baseline = engine.clause_count()
        service = RetrievalService(
            engine, max_in_flight=8, executor_workers=8, queue_limit=64
        )
        with BackgroundService(service) as background:
            host, port = background.start()
            result = run_loadgen(
                host, port, goals,
                qps=qps, duration_s=duration_s,
                write_fraction=fraction, seed=16,
            )
        # The durability contract rides along with the benchmark: every
        # acked write is in the KB now and after recovery.
        assert result.errors == 0
        assert result.writes_ok == result.writes_offered
        assert engine.clause_count() == baseline + result.writes_ok
        engine.close()
        recovered = ShardedRetrievalServer(
            2,
            ShardingPolicy.PREDICATE,
            durability=DurabilityOptions(
                directory=tmp_path / f"mix{index}" / "store"
            ),
        )
        assert recovered.clause_count() == baseline + result.writes_ok
        recovered.close()
        mixes.append((fraction, result))

    payload = {
        "facts": facts,
        "flush": "fsync",
        "offered_qps": qps,
        "duration_s": duration_s,
        "quick": quick,
        "mixes": [
            {
                "write_fraction": fraction,
                "offered": result.offered,
                "reads_ok": result.ok,
                "writes_ok": result.writes_ok,
                "busy": result.busy,
                "errors": result.errors,
                "read_p50_ms": round(result.latency_s(0.50) * 1e3, 4),
                "read_p99_ms": round(result.latency_s(0.99) * 1e3, 4),
                "write_p50_ms": round(result.write_latency_s(0.50) * 1e3, 4),
                "write_p99_ms": round(result.write_latency_s(0.99) * 1e3, 4),
                "write_qps": round(result.write_qps, 1),
            }
            for fraction, result in mixes
        ],
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E16",
        "Durability cost: WAL fsync engine under mixed load (host wall clock)",
        ("write %", "reads ok", "writes ok", "read p50 ms", "read p99 ms",
         "write p50 ms", "write p99 ms"),
        [
            (
                f"{fraction * 100:.0f}%",
                result.ok,
                result.writes_ok,
                round(result.latency_s(0.50) * 1e3, 3),
                round(result.latency_s(0.99) * 1e3, 3),
                round(result.write_latency_s(0.50) * 1e3, 3),
                round(result.write_latency_s(0.99) * 1e3, 3),
            )
            for fraction, result in mixes
        ],
        notes=(
            f"open-loop {qps:g} qps for {duration_s:g}s per mix, "
            f"group-committed fsync; results in {RESULT_PATH.name}"
        ),
    )

    read_only = mixes[0][1]
    heavy = mixes[-1][1]
    # Reads must survive a write-heavy mix without collapsing: an order
    # of magnitude is far beyond any plausible WAL-contention effect.
    assert heavy.latency_s(0.50) < max(
        10 * read_only.latency_s(0.50), 0.05
    )
    for _, result in mixes:
        assert result.ok + result.writes_ok + result.busy == result.offered
