"""[T1 / F6-12] Regenerate Table 1: execution times of the FS2 operations.

The paper's Table 1 is derived from device propagation delays along the
datapath routes of Figures 6-12.  This bench recomputes every row from
the route model, asserts exact agreement, and times the computation (the
model is consulted on every simulated TUE operation, so its speed matters
to the simulator's throughput).
"""

from repro.fs2.timing import (
    OPERATION_TIMINGS,
    PAPER_TABLE1_NS,
    execution_time_ns,
    table1,
    worst_case_op,
)
from repro.unify import HardwareOp
from tables import record_table


def test_bench_table1(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 7
    for figure, op_name, time_ns in rows:
        assert PAPER_TABLE1_NS[HardwareOp[op_name]] == time_ns
    record_table(
        "T1",
        "Table 1: Execution Times of the FS2 Hardware Functions",
        ("figure", "operation", "model ns", "paper ns", "match"),
        [
            (figure, op_name, time_ns, PAPER_TABLE1_NS[HardwareOp[op_name]],
             "exact" if time_ns == PAPER_TABLE1_NS[HardwareOp[op_name]] else "DIFF")
            for figure, op_name, time_ns in rows
        ],
    )


def test_bench_route_breakdown(benchmark):
    def breakdown():
        rows = []
        for op, timing in OPERATION_TIMINGS.items():
            for cycle_number, cycle in enumerate(timing.cycles, start=1):
                db = cycle.db_route.delay_ns() if cycle.db_route else 0
                query = cycle.query_route.delay_ns() if cycle.query_route else 0
                rows.append(
                    (
                        op.name,
                        cycle_number,
                        db,
                        query,
                        cycle.governing,
                        cycle.delay_ns(),
                    )
                )
        return rows

    rows = benchmark(breakdown)
    record_table(
        "T1b",
        "Figures 6-12: per-cycle route delays (ns)",
        ("operation", "cycle", "db route", "query route", "governing", "counted"),
        rows,
    )
    # Spot checks against the figure captions.
    by_key = {(r[0], r[1]): r for r in rows}
    assert by_key[("MATCH", 1)][2:4] == (40, 75)
    assert by_key[("QUERY_FETCH", 1)][5] == 120
    assert by_key[("QUERY_CROSS_BOUND_FETCH", 3)][5] == 45


def test_bench_worst_case_lookup(benchmark):
    op = benchmark(worst_case_op)
    assert op == HardwareOp.QUERY_CROSS_BOUND_FETCH
    assert execution_time_ns(op) == 235
