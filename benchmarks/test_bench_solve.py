"""[E12] `solve` throughput: recursive path queries, three delivery paths.

Solutions per second enumerating the full transitive closure
``path(n0, X)`` of an edge chain, measured on:

* the tree-walking interpreter over a single KnowledgeBase,
* the CRS-backed ``SolveEngine`` (ZIP machine pulling candidates
  through a first-arg-routed shard cluster), and
* the ``solve`` verb over loopback TCP with per-answer streaming.

Absolute numbers land in ``BENCH_solve.json`` at the repo root (the CI
bench-smoke job uploads it as an artifact); the assertions only pin
correctness (full closure enumerated, identical counts) and liveness —
wall-clock claims would be noise on shared CI boxes.
"""

import json
import pathlib
import time

from repro.cluster import ShardedRetrievalServer, ShardingPolicy
from repro.engine import PrologMachine, SolveEngine
from repro.net import BackgroundService, RetrievalClient, RetrievalService
from repro.storage import KnowledgeBase
from repro.terms import read_term
from repro.workloads import chain_program
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_solve.json"


def timed_drain(stream) -> tuple[int, float]:
    begin = time.perf_counter()
    count = sum(1 for _ in stream)
    return count, time.perf_counter() - begin


def test_bench_solve_recursive_path(quick):
    length = 20 if quick else 50
    program = chain_program(length)
    goal_text = f"path(n0, X)"
    expected = length  # n0 reaches every other node exactly once

    kb = KnowledgeBase()
    kb.consult_text(program)
    machine = PrologMachine(kb, unknown_predicates="fail")
    interp_count, interp_s = timed_drain(machine.solve(read_term(goal_text)))

    cluster = ShardedRetrievalServer(2, policy=ShardingPolicy.FIRST_ARG)
    cluster.consult_text(program)
    engine = SolveEngine(cluster)
    solve_count, solve_s = timed_drain(engine.solve(read_term(goal_text)))
    stats = engine.stats

    service = RetrievalService(cluster, max_in_flight=2, queue_limit=8)
    with BackgroundService(service) as background:
        host, port = background.service.address
        with RetrievalClient(host, port) as client:
            net_count, net_s = timed_drain(client.solve(read_term(goal_text)))

    rows = [
        ("interp / single KB", interp_count, round(interp_s * 1e3, 2),
         round(interp_count / interp_s, 1)),
        ("zip / sharded CRS", solve_count, round(solve_s * 1e3, 2),
         round(solve_count / solve_s, 1)),
        ("zip / net solve", net_count, round(net_s * 1e3, 2),
         round(net_count / net_s, 1)),
    ]
    payload = {
        "chain_length": length,
        "goal": goal_text,
        "paths": {
            "interp_single_kb": {
                "solutions": interp_count,
                "wall_s": round(interp_s, 6),
                "solutions_per_sec": round(interp_count / interp_s, 2),
            },
            "solve_engine_cluster": {
                "solutions": solve_count,
                "wall_s": round(solve_s, 6),
                "solutions_per_sec": round(solve_count / solve_s, 2),
                "retrievals": stats.retrievals,
                "cache_hits": stats.cache_hits,
                "single_shard": stats.single_shard,
                "broadcasts": stats.broadcasts,
            },
            "net_solve_stream": {
                "solutions": net_count,
                "wall_s": round(net_s, 6),
                "solutions_per_sec": round(net_count / net_s, 2),
            },
        },
        "quick": quick,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_table(
        "E12",
        "`solve` throughput on the recursive path workload",
        ("path", "solutions", "wall ms", "solutions/s"),
        rows,
        notes=(
            f"chain of {length} edges, full closure from n0; "
            f"engine pulls: {stats.retrievals} retrievals, "
            f"{stats.cache_hits} cache hits, "
            f"{stats.single_shard} single-shard, "
            f"{stats.broadcasts} broadcasts; "
            f"results in {RESULT_PATH.name}"
        ),
    )

    assert interp_count == expected
    assert solve_count == expected
    assert net_count == expected
    # First-arg routing must have kept bound-source pulls off broadcast.
    assert stats.single_shard > 0
