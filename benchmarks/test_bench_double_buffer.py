"""[A1] Ablation: the Double Buffer's transfer/match overlap.

The Double Buffer lets clause n+1 stream from disk while clause n is being
matched, so per-clause time is max(transfer, match) instead of their sum
(section 3.2).  This bench quantifies the win across operation mixes and
also measures the raw simulator's clause throughput.
"""

from repro.disk import FUJITSU_M2351A, MICROPOLIS_1325
from repro.fs2 import SecondStageFilter, simulate_streaming_search
from repro.fs2.timing import execution_time_ns
from repro.pif import SymbolTable, compile_clause
from repro.terms import read_term
from repro.unify import HardwareOp
from repro.workloads import FactKBSpec, generate_facts
from tables import record_table


def test_bench_overlap_model(benchmark):
    record_bytes = 40  # a typical small compiled fact
    transfer_ns = record_bytes / FUJITSU_M2351A.transfer_rate_bytes_per_sec * 1e9

    def model():
        rows = []
        for ops_per_clause, label in ((3, "3 MATCH ops"), (8, "8 mixed ops"), (20, "20 mixed ops")):
            match_ns = ops_per_clause * (
                0.7 * execution_time_ns(HardwareOp.MATCH)
                + 0.3 * execution_time_ns(HardwareOp.QUERY_FETCH)
            )
            single = transfer_ns + match_ns  # no overlap: sequential
            double = max(transfer_ns, match_ns)  # overlap
            rows.append(
                (
                    label,
                    round(transfer_ns),
                    round(match_ns),
                    round(single),
                    round(double),
                    round(single / double, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(model, rounds=1, iterations=1)
    for _, transfer, match, single, double, speedup in rows:
        assert double == max(transfer, match)
        assert 1.0 <= speedup <= 2.0
    record_table(
        "A1",
        "Double-buffer ablation: per-clause ns with/without overlap",
        ("match work", "transfer ns", "match ns", "single buf", "double buf", "speedup"),
        rows,
        notes="overlap approaches 2x when transfer and match are balanced",
    )


def test_bench_streaming_cosimulation(benchmark):
    """Real per-clause op times folded against real transfer times."""
    symbols = SymbolTable()
    clauses = generate_facts(
        FactKBSpec(
            functor="rec", arity=3, count=150, structure_fraction=0.5,
            variable_fraction=0.1, domain_sizes=(15,) * 3, seed=6,
        )
    )
    records = [compile_clause(c, symbols).to_bytes() for c in clauses]
    query = read_term("rec(S, S, X)")

    def cosim():
        rows = []
        for drive in (FUJITSU_M2351A, MICROPOLIS_1325):
            fs2 = SecondStageFilter(symbols)
            fs2.load_microprogram()
            fs2.set_query(query)
            timeline = simulate_streaming_search(
                fs2, records, ("rec", 3), drive=drive
            )
            rows.append(
                (
                    drive.name,
                    round(timeline.total_transfer_ns / 1e3),
                    round(timeline.total_match_ns / 1e3),
                    round(timeline.single_buffered_ns / 1e3),
                    round(timeline.double_buffered_ns / 1e3),
                    round(timeline.overlap_speedup, 3),
                    timeline.match_bound_clauses,
                )
            )
        return rows

    rows = benchmark.pedantic(cosim, rounds=1, iterations=1)
    for _, transfer_us, match_us, single_us, double_us, speedup, bound in rows:
        assert double_us <= single_us
        assert bound == 0, "the filter must never throttle the disk"
        assert transfer_us > match_us
    record_table(
        "A1b",
        "Streaming co-simulation: 150 clauses, shared-variable query",
        (
            "drive",
            "transfer us",
            "match us",
            "single buf us",
            "double buf us",
            "speedup",
            "match-bound slots",
        ),
        rows,
        notes="0 match-bound slots == section 4's claim holds clause by clause",
    )


def test_bench_simulator_throughput(benchmark):
    """Raw Python-simulator speed: clauses matched per second."""
    symbols = SymbolTable()
    clauses = generate_facts(
        FactKBSpec(functor="rec", arity=3, count=200, domain_sizes=(20,) * 3, seed=2)
    )
    records = [compile_clause(c, symbols).to_bytes() for c in clauses]
    fs2 = SecondStageFilter(symbols)
    fs2.load_microprogram()
    query = read_term("rec(Q1, Q2, Q3)")

    def search_all():
        fs2.set_query(query)
        # Split into Result-Memory-sized calls (64 satisfiers max).
        total = 0
        for start in range(0, len(records), 64):
            stats = fs2.search(records[start : start + 64])
            total += stats.satisfiers
            fs2.set_query(query)
        return total

    satisfiers = benchmark(search_all)
    assert satisfiers == len(records)  # open query: everything matches
