"""[E10] Compiled vs microcoded FS2 match wall clock (host-side speedup).

The tentpole claim for the plan-compiled fast path: translating the
Set-Query state into a per-(goal, indicator) match plan once, then
matching each streamed record with a direct byte-level walk, beats the
cycle-stepped microcode sequencer by an order of magnitude — while
reproducing the modelled hardware statistics *exactly* (satisfier set,
``micro_cycles`` from the derived cycle-cost table, TUE ``op_counts``
and ``op_time_ns``).  The simulated hardware model is untouched; this
benchmark measures the host's clock.

Results land in ``BENCH_fs2.json`` at the repo root (the CI smoke job
uploads it as an artifact).  Under ``--quick`` the workload shrinks and
the speedup floor relaxes so the smoke run stays fast on small runners.
"""

import json
import pathlib
import time
from collections import Counter

from repro.fs2 import SecondStageFilter
from repro.pif import SymbolTable, compile_clause
from repro.terms import Clause, clause_from_term, read_term
from tables import record_table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_fs2.json"

CHUNK = 64  # Result Memory capacity: rearm between 64-record chunks
GOAL = "p(f(A, B), [x | T], N)"


def build_workload(count: int) -> list[Clause]:
    """One predicate, three head shapes: struct+list+int argument mix.

    Two of the three shapes survive the partial unification against
    ``p(f(A, B), [x | T], N)`` — enough satisfiers to exercise capture,
    enough misses to exercise the early exits.
    """
    clauses = []
    for i in range(count):
        if i % 3 == 0:
            text = f"p(f(a{i % 50}, {i}), [x, y{i % 7}], {i})."
        elif i % 3 == 1:
            text = f"p(g(b{i % 40}), [a, b | c{i % 5}], {i})."
        else:
            text = f"p(f(a{i % 50}, k), [x, z], {i})."
        clauses.append(clause_from_term(read_term(text)))
    return clauses


def run_mode(mode: str, clauses) -> tuple[float, dict]:
    """Stream every record through one filter; return (seconds, stats)."""
    symbols = SymbolTable()
    records = [compile_clause(c, symbols).to_bytes() for c in clauses]
    fs2 = SecondStageFilter(symbols, mode=mode)
    fs2.load_microprogram()
    fs2.set_query(read_term(GOAL))
    start = time.perf_counter()
    totals = {"satisfiers": 0, "micro_cycles": 0, "op_time_ns": 0}
    op_counts: Counter = Counter()
    for base in range(0, len(records), CHUNK):
        stats = fs2.search(records[base : base + CHUNK])
        totals["satisfiers"] += stats.satisfiers
        totals["micro_cycles"] += stats.micro_cycles
        totals["op_time_ns"] += stats.op_time_ns
        op_counts.update(stats.op_counts)
        fs2.rearm()
    elapsed = time.perf_counter() - start
    totals["op_counts"] = dict(op_counts)
    return elapsed, totals


def best_of(runs: int, fn):
    """Best-of-N (seconds, stats): robust to scheduler noise on CI."""
    best = None
    stats = None
    for _ in range(runs):
        elapsed, totals = fn()
        if best is None or elapsed < best:
            best = elapsed
        stats = totals
    return best, stats


def test_bench_compiled_vs_microcoded(quick):
    count = 1_500 if quick else 6_000
    runs = 2 if quick else 3
    floor = 4.0 if quick else 10.0

    clauses = build_workload(count)
    micro_s, micro_stats = best_of(runs, lambda: run_mode("microcoded", clauses))
    fast_s, fast_stats = best_of(runs, lambda: run_mode("compiled", clauses))

    # The fast path must reproduce the modelled hardware stats exactly.
    assert fast_stats == micro_stats

    speedup = micro_s / fast_s
    op_total = sum(micro_stats["op_counts"].values())
    payload = {
        "records": count,
        "goal": GOAL,
        "satisfiers": micro_stats["satisfiers"],
        "micro_cycles": micro_stats["micro_cycles"],
        "tue_ops": op_total,
        "microcoded_s": micro_s,
        "compiled_s": fast_s,
        "speedup_compiled": round(speedup, 2),
        "stats_identical": True,
        "quick": quick,
        "floor": floor,
    }
    payload_json = dict(payload)
    payload_json["op_time_ns"] = micro_stats["op_time_ns"]
    RESULT_PATH.write_text(json.dumps(payload_json, indent=2) + "\n")

    record_table(
        "E10",
        "Compiled FS2 match vs microcoded sequencer (host wall clock)",
        ("engine", "records", "satisfiers", "seconds", "speedup"),
        [
            (
                "microcoded",
                count,
                micro_stats["satisfiers"],
                round(micro_s, 6),
                1.0,
            ),
            (
                "compiled",
                count,
                fast_stats["satisfiers"],
                round(fast_s, 6),
                round(speedup, 1),
            ),
        ],
        notes=(
            "identical modelled stats (cycles, TUE ops, op time) verified; "
            f"results in {RESULT_PATH.name}"
        ),
    )

    assert speedup >= floor, (
        f"compiled FS2 match only {speedup:.1f}x faster than microcoded "
        f"(floor {floor}x) over {count} records"
    )
