"""[E15] Vector FS1 engine and shared-memory result transport wall clock.

PR 9's two host-side performance claims, measured:

* **FS1**: the word-array ``vector`` engine (numpy when importable)
  beats the big-int column engine on a large predicate — the AND/OR
  reduction runs as C loops over contiguous ``uint64`` words instead of
  arbitrary-precision integer ops, and a batched 2-D broadcast pass
  amortises further.  Candidate sets are asserted identical first; the
  simulated 1989 timing model is untouched.
* **Transport**: shipping broadcast-heavy results back from shard
  workers as ``(address, record bytes)`` slab payloads beats pickling
  the candidate term graphs through the pipe.

Results merge into ``BENCH_fs1.json`` and ``BENCH_e2e.json`` under an
``"e15_*"`` key (read-modify-write, so E9's and E14's payloads
survive).  Honesty gates: the vector floor only applies when numpy is
importable and the run is not ``--quick``; the transport run is pinned
to ``FS1_ONLY`` so the timed region is transport-bound rather than
unification-bound, and ``host_cores``/``numpy`` ride in the payload so
a reader knows what machine produced the numbers.
"""

import dataclasses
import json
import os
import pathlib
import statistics
import time

from repro.cluster import ShardingPolicy
from repro.crs import SearchMode
from repro.parallel import ProcessShardedRetrievalServer
from repro.scw import CodewordScheme, SecondaryIndexFile, have_numpy
from repro.terms import read_term
from repro.workloads import FactKBSpec, generate_facts, ground_query_for
from tables import record_table

FS1_RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_fs1.json"
E2E_RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_e2e.json"

SCHEME = CodewordScheme(width=96, bits_per_key=2)


def merge_payload(path: pathlib.Path, key: str, payload: dict) -> None:
    """Read-modify-write ``path`` so sibling experiments' data survives."""
    try:
        existing = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        existing = {}
    existing[key] = payload
    path.write_text(json.dumps(existing, indent=2) + "\n")


def best_of(runs: int, fn) -> float:
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def build_index(entries: int):
    clauses = generate_facts(
        FactKBSpec(
            functor="big",
            arity=3,
            count=entries,
            structure_fraction=0.2,
            domain_sizes=(500, entries // 4, 40),
            seed=97,
        )
    )
    index = SecondaryIndexFile(SCHEME, ("big", 3))
    for position, clause in enumerate(clauses):
        index.add(clause.head, position * 48)
    return index, clauses


def test_bench_vector_vs_bigint(quick):
    entries = 2_000 if quick else 12_000
    query_count = 8 if quick else 16
    runs = 2 if quick else 5
    # The full scan loop is ~1 ms; repeat it inside the timed region so
    # best-of-N compares ~10 ms regions instead of scheduler noise.
    inner = 2 if quick else 10
    floor = 2.0

    index, clauses = build_index(entries)
    queries = [
        ground_query_for(clauses, seed=seed, bound_arguments=1 + seed % 3)
        for seed in range(query_count)
    ]
    codewords = [SCHEME.query_codeword(q) for q in queries]
    bigint = index.bitsliced  # both views built outside the timed region
    vector = index.vector

    expected = [bigint.scan(cw) for cw in codewords]
    assert [vector.scan(cw) for cw in codewords] == expected
    assert vector.scan_batch(codewords) == bigint.scan_batch(codewords)
    survivors = statistics.mean(len(r) for r in expected)

    def scan_loop(index):
        def run():
            for _ in range(inner):
                for cw in codewords:
                    index.scan(cw)

        return run

    def batch_loop():
        for _ in range(inner):
            vector.scan_batch(codewords)

    bigint_s = best_of(runs, scan_loop(bigint)) / inner
    vector_s = best_of(runs, scan_loop(vector)) / inner
    batched_s = best_of(runs, batch_loop) / inner

    speedup = bigint_s / vector_s
    batch_speedup = bigint_s / batched_s
    payload = {
        "entries": entries,
        "queries": query_count,
        "mean_survivors": round(survivors, 1),
        "backend": vector.backend,
        "numpy": have_numpy(),
        "bigint_s": bigint_s,
        "vector_s": vector_s,
        "vector_batched_s": batched_s,
        "speedup_vector": round(speedup, 2),
        "speedup_vector_batched": round(batch_speedup, 2),
        "quick": quick,
        "floor": floor,
    }
    merge_payload(FS1_RESULT_PATH, "e15_vector", payload)

    record_table(
        "E15a",
        "Vector (uint64 word) FS1 scan vs big-int columns (host wall clock)",
        ("engine", "entries", "queries", "seconds", "speedup"),
        [
            ("big-int columns", entries, query_count, round(bigint_s, 6), 1.0),
            (
                f"vector ({vector.backend})",
                entries,
                query_count,
                round(vector_s, 6),
                round(speedup, 2),
            ),
            (
                "vector batched",
                entries,
                query_count,
                round(batched_s, 6),
                round(batch_speedup, 2),
            ),
        ],
        notes=(
            f"identical candidate sets verified; numpy={have_numpy()}; "
            f"results in {FS1_RESULT_PATH.name}"
        ),
    )

    if not quick and have_numpy():
        assert speedup >= floor, (
            f"vector scan only {speedup:.2f}x faster than big-int "
            f"(floor {floor}x) over {entries} entries"
        )


def fingerprint(result):
    return (
        [str(c) for c in result.candidates],
        dataclasses.astuple(result.stats),
    )


def test_bench_shm_vs_pipe_transport(quick):
    """Broadcast-heavy batches, same worker fleet, transport swapped."""
    facts = 600 if quick else 4_000
    reps = 3 if quick else 10
    runs = 2 if quick else 3
    shards = 2 if quick else 4
    floor = 1.5

    program = " ".join(
        f"edge(n{i}, n{(i * 7) % facts})." for i in range(facts)
    )
    # Open queries broadcast over round-robin shards and return large
    # candidate sets — the transport-bound regime.
    goals = [
        read_term("edge(X, Y)"),
        read_term("edge(X, n0)"),
        read_term("edge(X, n7)"),
    ]

    def build(transport):
        from repro.obs import Instrumentation

        server = ProcessShardedRetrievalServer(
            shards,
            ShardingPolicy.ROUND_ROBIN,
            result_transport=transport,
            obs=Instrumentation(),
        )
        server.consult_text(program)
        server.start()
        return server

    shm = build("shm")
    pipe = build("pipe")
    # FS1_ONLY keeps per-candidate engine work minimal, so the timed
    # region is dominated by result transport — the thing under test.
    mode = SearchMode.FS1_ONLY
    try:
        # Identity first; this also warms both parents' decode caches so
        # the timed region measures steady-state transport cost.
        assert [fingerprint(r) for r in shm.retrieve_batch(goals, mode)] == [
            fingerprint(r) for r in pipe.retrieve_batch(goals, mode)
        ]

        def drive(server):
            def run():
                for _ in range(reps):
                    server.retrieve_batch(goals, mode)

            return run

        shm_s = best_of(runs, drive(shm))
        pipe_s = best_of(runs, drive(pipe))
        slab_results = shm.obs.registry.total("parallel.shm.results")
        fallbacks = shm.obs.registry.total("parallel.shm.fallbacks")
    finally:
        shm.close()
        pipe.close()

    host_cores = os.cpu_count() or 1
    speedup = pipe_s / shm_s
    payload = {
        "host_cores": host_cores,
        "numpy": have_numpy(),
        "facts": facts,
        "shards": shards,
        "batch_reps": reps,
        "goals": len(goals),
        "shm_s": shm_s,
        "pipe_s": pipe_s,
        "speedup_shm": round(speedup, 2),
        "slab_results": slab_results,
        "slab_fallbacks": fallbacks,
        "quick": quick,
        "floor": floor,
    }
    merge_payload(E2E_RESULT_PATH, "e15_transport", payload)

    record_table(
        "E15b",
        "Worker result transport: shm slab ring vs pickled pipe",
        ("transport", "facts", "shards", "seconds", "speedup"),
        [
            ("pickled pipe", facts, shards, round(pipe_s, 6), 1.0),
            ("shm slabs", facts, shards, round(shm_s, 6), round(speedup, 2)),
        ],
        notes=(
            f"host has {host_cores} core(s); {reps} broadcast batches of "
            f"{len(goals)} goals per rep; {slab_results} slab payloads, "
            f"{fallbacks} pipe fallbacks; results in {E2E_RESULT_PATH.name}"
        ),
    )

    assert slab_results > 0  # the shm path was actually exercised
    if not quick:
        assert speedup >= floor, (
            f"shm transport only {speedup:.2f}x faster than the pipe "
            f"(floor {floor}x) over {facts}-fact broadcasts"
        )
